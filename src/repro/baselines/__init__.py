"""Comparison inlining policies (§V).

- :class:`~repro.baselines.greedy.GreedyInliner` — the open-source-Graal
  / Steiner-style inliner: depth-first, single-method-at-a-time, fixed
  size thresholds, no exploration phase, no clustering;
- :class:`~repro.baselines.c2like.C2Inliner` — a HotSpot-C2-shaped
  policy: trivial methods inlined during parsing, hot methods inlined in
  a later greedy phase, smaller budgets, bimorphic typeswitches;
- :func:`~repro.baselines.variants.fixed_threshold_inliner`,
  :func:`~repro.baselines.variants.one_by_one_inliner`,
  :func:`~repro.baselines.variants.shallow_trials_inliner` — ablations
  of the paper's algorithm used in Figures 6–9 (each is the full
  incremental inliner with exactly one heuristic replaced).
"""

from repro.baselines.greedy import GreedyInliner
from repro.baselines.c2like import C2Inliner
from repro.baselines.variants import (
    clustering_inliner,
    fixed_threshold_inliner,
    one_by_one_inliner,
    shallow_trials_inliner,
    tuned_inliner,
)

__all__ = [
    "GreedyInliner",
    "C2Inliner",
    "clustering_inliner",
    "fixed_threshold_inliner",
    "one_by_one_inliner",
    "shallow_trials_inliner",
    "tuned_inliner",
]
