"""Multi-tenant serving demo and smoke harness.

Hosts N tenant workloads in one :class:`~repro.serve.service.VMService`
over the shared background-compilation pipeline and prints a service
report (per-tenant throughput, fairness, queue stats).

``--smoke`` is the CI stress entry: it runs the mixed-traffic fleet in
async mode (real worker threads), reruns the identical fleet in forced
sync mode, and fails (exit 1) unless every tenant's outcome list and
printed output are bit-identical across modes — the service-level
differential check for the background pipeline.

Examples::

    python -m repro.tools.serve --tenants 6 --iterations 8
    python -m repro.tools.serve --smoke --flight-out serve-flight.jsonl
    REPRO_COMPILE=sync python -m repro.tools.serve --tenants 4
"""

import argparse
import json
import sys

from repro.obs import Observability
from repro.serve import ServiceConfig, TenantSpec, VMService
from repro.tools.common import INLINERS

#: benchmarks cycled through by the mixed-traffic fleet — small/medium
#: programs spanning the suites so tenants stress different code shapes.
MIXED_BENCHMARKS = (
    "avrora", "scalap", "fop", "kiama", "batik",
    "actors", "luindex", "specs", "h2", "scalatest",
)

#: inliner policies cycled across tenants.
MIXED_INLINERS = ("incremental", "greedy", "c2", "none")


def mixed_specs(tenants, iterations, base_seed=0x5EED):
    """A deterministic mixed-traffic fleet of *tenants* specs."""
    specs = []
    for index in range(tenants):
        benchmark = MIXED_BENCHMARKS[index % len(MIXED_BENCHMARKS)]
        inliner = MIXED_INLINERS[index % len(MIXED_INLINERS)]
        specs.append(TenantSpec(
            name="t%02d-%s" % (index, benchmark),
            benchmark=benchmark,
            iterations=iterations,
            inliner=INLINERS[inliner],
            merge="isolated" if index % 5 == 4 else "shared",
            seed=base_seed + index,
        ))
    return specs


def run_fleet(specs, mode, obs, args, concurrent=True):
    """Run one service over *specs*; returns (report, per-tenant state).

    The per-tenant state maps name -> (outcomes, output) — the
    bit-identical surface compared across compile modes.
    """
    config = ServiceConfig(
        max_tenants=max(len(specs), 1),
        compile_workers=args.workers,
        queue_capacity=args.queue_capacity,
        cache_budget=args.cache_budget,
        tenant_quota=args.tenant_quota,
        eviction_policy=args.policy,
        compile_mode=mode,
        hot_threshold=args.hot_threshold,
    )
    with VMService(config, obs=obs) as service:
        for spec in specs:
            service.admit(spec)
        report = service.run(concurrent=concurrent)
        state = {
            tenant.name: (list(tenant.outcomes), tenant.output)
            for tenant in service.tenants.values()
        }
    return report, state


def _diff_fleets(async_state, sync_state):
    """Human-readable divergences between two fleet runs."""
    problems = []
    for name in sorted(async_state):
        async_outcomes, async_output = async_state[name]
        sync_outcomes, sync_output = sync_state[name]
        if async_outcomes != sync_outcomes:
            problems.append(
                "%s: outcomes diverge (async %r... vs sync %r...)"
                % (name, async_outcomes[:3], sync_outcomes[:3])
            )
        if async_output != sync_output:
            problems.append(
                "%s: printed output diverges (%d vs %d lines)"
                % (name, len(async_output), len(sync_output))
            )
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--tenants", type=int, default=6,
        help="fleet size for the mixed-traffic workload (default 6)",
    )
    parser.add_argument(
        "--iterations", type=int, default=8,
        help="iterations per tenant (default 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="background compile worker threads (default 2)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64,
        help="compile queue bound (default 64)",
    )
    parser.add_argument(
        "--cache-budget", type=int, default=None,
        help="global code-cache byte budget (default unbounded)",
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=None,
        help="per-tenant code-cache byte quota (default unbounded)",
    )
    parser.add_argument(
        "--policy", choices=("lru", "hotness"), default="lru",
        help="cache eviction policy (default lru)",
    )
    parser.add_argument(
        "--hot-threshold", type=int, default=20,
        help="compile threshold for tenant engines (default 20)",
    )
    parser.add_argument(
        "--mode", choices=("sync", "async"), default="async",
        help="compile mode for the plain run (default async; "
        "REPRO_COMPILE=sync still pins)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="differential smoke: async fleet vs identical sync fleet; "
        "exit 1 on any per-tenant outcome/output divergence",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the service report as JSON",
    )
    parser.add_argument(
        "--flight-out", default=None, metavar="PATH",
        help="dump the flight-recorder ring to PATH (JSONL)",
    )
    args = parser.parse_args(argv)

    obs = Observability()
    specs = mixed_specs(args.tenants, args.iterations)

    if args.smoke:
        report, async_state = run_fleet(
            specs, "async", obs, args, concurrent=True
        )
        _, sync_state = run_fleet(
            mixed_specs(args.tenants, args.iterations), "sync", obs, args,
            concurrent=False,
        )
        problems = _diff_fleets(async_state, sync_state)
        if args.flight_out:
            obs.flight.save(args.flight_out)
        print(
            "serve smoke: %d tenants x %d iterations, mode=%s, "
            "throughput=%.1f it/s, fairness=%.3f, queue=%s"
            % (
                args.tenants, args.iterations, report.mode,
                report.throughput, report.fairness,
                report.queue_stats,
            )
        )
        if problems:
            for problem in problems:
                print("DIVERGENCE %s" % problem, file=sys.stderr)
            return 1
        print("serve smoke: async == sync for every tenant")
        return 0

    report, _ = run_fleet(specs, args.mode, obs, args, concurrent=True)
    if args.flight_out:
        obs.flight.save(args.flight_out)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(
            "serve: mode=%s tenants=%d iterations=%d "
            "throughput=%.1f it/s fairness=%.3f"
            % (
                report.mode, len(report.tenants),
                report.total_iterations, report.throughput,
                report.fairness,
            )
        )
        for tenant in report.tenants:
            print(
                "  %-16s %-9s %3d it  %7.1f it/s  compiles=%d "
                "async=%d deopts=%d (%s)"
                % (
                    tenant["name"], tenant["state"],
                    tenant["iterations"], tenant["throughput"],
                    tenant["compilations"], tenant["async_installs"],
                    tenant["deopts"], tenant["merge"],
                )
            )
        queue = report.queue_stats
        if queue.get("mode") == "async":
            print(
                "  queue: submitted=%d completed=%d failed=%d "
                "cancelled=%d rejected=%d"
                % (
                    queue["submitted"], queue["completed"],
                    queue["failed"], queue["cancelled"],
                    queue["rejected"],
                )
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
