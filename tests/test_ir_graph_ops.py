"""Graph surgery tests: copy and the inline substitution itself."""

from repro.ir import build_graph, check_graph
from repro.ir import nodes as n
from tests.execution import compare_tiers, execute_graph
from tests.helpers import shapes_program, single_method_program


class TestCopy:
    def test_copy_preserves_structure_and_identity(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "run"), program)
        clone, node_map = graph.copy()
        check_graph(clone, program)
        assert clone.node_count() == graph.node_count()
        assert len(clone.blocks) == len(graph.blocks)
        # Fully fresh nodes: no object shared.
        originals = {id(x) for x in graph.all_nodes()}
        for node in clone.all_nodes():
            assert id(node) not in originals

    def test_copy_executes_identically(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "run"), program)
        clone, _ = graph.copy()
        expected, _ = execute_graph(graph, program)
        actual, _ = execute_graph(clone, program)
        assert expected == actual

    def test_copy_remaps_phis(self):
        def build(b):
            other = b.new_label()
            join = b.new_label()
            b.load(0).if_true(other)
            b.const(1).store(1).goto(join)
            b.place(other).const(2).store(1)
            b.place(join).load(1).retv()

        program = single_method_program(build)
        graph = build_graph(program.lookup_method("T", "f"), program)
        clone, node_map = graph.copy()
        check_graph(clone, program)
        phis = [p for block in clone.blocks for p in block.phis]
        assert len(phis) == 1
        for value in phis[0].inputs:
            assert value.block in clone.blocks or value in clone.params


class TestInlineCall:
    def test_inline_preserves_semantics(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "run"), program)
        expected, _ = execute_graph(graph, program)
        target = [i for i in graph.invokes() if i.method_name == "total"][0]
        callee = build_graph(program.lookup_method("Main", "total"), program)
        graph.inline_call(target, callee)
        check_graph(graph, program)
        actual, _ = execute_graph(graph, program)
        assert actual == expected
        # One total callsite remains (the other path), plus area calls.
        remaining = [i for i in graph.invokes() if i.method_name == "total"]
        assert len(remaining) == 1

    def test_inline_void_callee(self):
        from repro.bytecode import MethodBuilder
        from tests.helpers import fresh_program

        program = fresh_program()
        holder = program.define_class("H", is_abstract=True)
        b = MethodBuilder("emit", ["int"], "void", is_static=True)
        b.load(0).invokestatic("Builtins", "print").ret()
        holder.add_method(b.build())
        b = MethodBuilder("f", ["int"], "int", is_static=True)
        b.load(0).invokestatic("H", "emit").load(0).retv()
        holder.add_method(b.build())
        graph = build_graph(program.lookup_method("H", "f"), program)
        (invoke,) = [i for i in graph.invokes() if i.method_name == "emit"]
        callee = build_graph(program.lookup_method("H", "emit"), program)
        graph.inline_call(invoke, callee)
        check_graph(graph, program)
        compare_tiers(program, "H", "f", [5], graph=graph)

    def test_inline_multi_return_callee_merges_with_phi(self):
        from repro.bytecode import MethodBuilder
        from tests.helpers import fresh_program

        program = fresh_program()
        holder = program.define_class("H", is_abstract=True)
        b = MethodBuilder("pick", ["int"], "int", is_static=True)
        neg = b.new_label()
        b.load(0).const(0).lt().if_true(neg)
        b.const(1).retv()
        b.place(neg).const(-1).retv()
        holder.add_method(b.build())
        b = MethodBuilder("f", ["int"], "int", is_static=True)
        b.load(0).invokestatic("H", "pick").const(100).mul().retv()
        holder.add_method(b.build())
        graph = build_graph(program.lookup_method("H", "f"), program)
        (invoke,) = graph.invokes()
        callee = build_graph(program.lookup_method("H", "pick"), program)
        result = graph.inline_call(invoke, callee)
        check_graph(graph, program)
        assert isinstance(result, n.PhiNode)
        compare_tiers(program, "H", "f", [5], graph=graph)
        graph2 = build_graph(program.lookup_method("H", "f"), program)
        (invoke2,) = graph2.invokes()
        callee2 = build_graph(program.lookup_method("H", "pick"), program)
        graph2.inline_call(invoke2, callee2)
        compare_tiers(program, "H", "f", [-5], graph=graph2)

    def test_argument_wiring(self):
        program = shapes_program()
        graph = build_graph(program.lookup_method("Main", "total"), program)
        area_callee = build_graph(program.lookup_method("Square", "area"), program)
        # Inline area directly at the interface callsite (as the inliner
        # would after devirtualization): rebind first.
        (invoke,) = graph.invokes()
        invoke.devirtualize(program.lookup_method("Square", "area"))
        graph.inline_call(invoke, area_callee)
        check_graph(graph, program)
        loads = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.LoadFieldNode)
        ]
        # Field loads now read from the original receiver parameter.
        assert loads and all(l.inputs[0] is graph.params[0] for l in loads)
