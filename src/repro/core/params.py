"""Every tuned constant of the algorithm, with the paper's values.

The paper (§IV) reports: p1 = 10⁻³, p2 = 10⁻⁴, b1 = 0.5, b2 = 10 for the
exploration penalty ψ; r1 ≈ 3000, r2 ≈ 500 for the expansion threshold;
t1 = 0.005, t2 = 120 for the adaptive inlining threshold; at most 3
typeswitch targets, each with ≥ 10% probability; a 50000-node root-size
bailout; and a recursion penalty that kicks in beyond depth 2.

These constants are calibrated to Graal-sized IR graphs. Our miniature
benchmarks produce graphs roughly an order of magnitude smaller, so the
harness uses :meth:`InlinerParams.scaled` to shrink the *size-typed*
constants (r1, r2, t2, max_root_size) by a common factor while keeping
every ratio-typed constant exactly as published. The sweeps in the
evaluation sweep the same relative ranges the paper sweeps.
"""


class InlinerParams:
    """Tunable constants for :class:`~repro.core.inliner.IncrementalInliner`."""

    def __init__(
        self,
        p1=1e-3,
        p2=1e-4,
        b1=0.5,
        b2=10.0,
        r1=3000.0,
        r2=500.0,
        t1=0.005,
        t2=120.0,
        max_typeswitch_targets=3,
        min_target_probability=0.10,
        max_root_size=50_000,
        recursion_free_depth=2,
        max_rounds=12,
        max_expansions_per_round=64,
        trial_canon_rounds=2,
        typeswitch_node_cost=4,
    ):
        self.p1 = p1
        self.p2 = p2
        self.b1 = b1
        self.b2 = b2
        self.r1 = r1
        self.r2 = r2
        self.t1 = t1
        self.t2 = t2
        self.max_typeswitch_targets = max_typeswitch_targets
        self.min_target_probability = min_target_probability
        self.max_root_size = max_root_size
        self.recursion_free_depth = recursion_free_depth
        self.max_rounds = max_rounds
        self.max_expansions_per_round = max_expansions_per_round
        self.trial_canon_rounds = trial_canon_rounds
        self.typeswitch_node_cost = typeswitch_node_cost

    @classmethod
    def scaled(cls, size_factor=0.1, **overrides):
        """Paper constants with size-typed values scaled by *size_factor*.

        ψ's p1/p2 multiply sizes, so they scale *inversely*; pure ratios
        (b1, t1) and counts (b2) are unchanged.
        """
        params = cls(
            r1=3000.0 * size_factor,
            r2=500.0 * size_factor,
            t2=120.0 * size_factor,
            max_root_size=int(50_000 * size_factor),
            p1=1e-3 / size_factor,
            p2=1e-4 / size_factor,
        )
        for name, value in overrides.items():
            if not hasattr(params, name):
                raise TypeError("unknown inliner parameter %r" % name)
            setattr(params, name, value)
        return params

    def copy(self, **overrides):
        params = InlinerParams.__new__(InlinerParams)
        params.__dict__.update(self.__dict__)
        for name, value in overrides.items():
            if not hasattr(params, name):
                raise TypeError("unknown inliner parameter %r" % name)
            setattr(params, name, value)
        return params
