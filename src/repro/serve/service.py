"""The multi-tenant VM service: N workloads, one process.

A :class:`VMService` hosts admitted tenants over shared serving
infrastructure:

- one :class:`~repro.serve.scheduler.BackgroundCompiler` (in async
  mode) draining a bounded compile queue for *all* tenant engines,
- one :class:`~repro.jit.codecache.SharedCodeCache` with per-tenant
  quotas and LRU/hotness eviction under a global byte budget,
- one :class:`~repro.serve.profiles.SharedProfileAggregator` pooling
  profiles of shared library methods across tenants.

``run()`` executes every admitted tenant's workload on its own thread
and returns a :class:`ServiceReport` with per-tenant outcomes,
throughput, and a Jain fairness index — the measurement surface the
perf harness's mixed-traffic workload builds on.

Eviction mid-flight (``evict()``) stops the tenant's workload at the
next iteration edge, cancels its queued compilations (cancellation is
re-checked before install, so late compiles never land), and reclaims
its code-cache bytes.
"""

import threading
import time

from repro.jit.codecache import SharedCodeCache
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.obs import NULL_OBS
from repro.serve.admission import AdmissionController, ServiceConfig
from repro.serve.profiles import SharedProfileAggregator
from repro.serve.scheduler import BackgroundCompiler
from repro.serve.tenant import Tenant


class ServiceReport:
    """Aggregate outcome of one service run."""

    def __init__(self, tenants, wall_seconds, mode, queue_stats):
        self.tenants = tenants  # list of per-tenant dicts
        self.wall_seconds = wall_seconds
        self.mode = mode
        self.queue_stats = queue_stats
        self.total_iterations = sum(t["iterations"] for t in tenants)

    @property
    def throughput(self):
        """Service-wide iterations per second of wall time."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_iterations / self.wall_seconds

    @property
    def fairness(self):
        """Jain's fairness index over per-tenant throughput.

        1.0 = perfectly fair; 1/n = one tenant got everything. Only
        tenants that ran count (evicted tenants are excluded — an
        eviction is a policy decision, not unfairness).
        """
        rates = [
            t["throughput"]
            for t in self.tenants
            if t["state"] in ("done", "running") and t["throughput"] > 0
        ]
        if not rates:
            return 1.0
        total = sum(rates)
        squares = sum(rate * rate for rate in rates)
        if squares == 0:
            return 1.0
        return (total * total) / (len(rates) * squares)

    def as_dict(self):
        return {
            "mode": self.mode,
            "wall_seconds": round(self.wall_seconds, 6),
            "total_iterations": self.total_iterations,
            "throughput": round(self.throughput, 3),
            "fairness": round(self.fairness, 4),
            "queue": self.queue_stats,
            "tenants": self.tenants,
        }


class VMService:
    """N tenant workloads over a shared background-compilation pipeline."""

    def __init__(self, config=None, obs=None):
        self.config = config if config is not None else ServiceConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.admission = AdmissionController(self.config)
        self.aggregator = SharedProfileAggregator(
            share=self.config.share_profiles
        )
        self.cache = SharedCodeCache(
            budget=self.config.cache_budget,
            shards=self.config.cache_shards,
            policy=self.config.eviction_policy,
            tenant_quota=self.config.tenant_quota,
            hotness_fn=self._hotness_of,
            obs=self.obs,
        )
        #: "sync" | "async", resolved once (REPRO_COMPILE=sync pins).
        self.mode = JitConfig(
            compile_mode=self.config.compile_mode
        ).compile_mode_resolved()
        self.scheduler = (
            BackgroundCompiler(
                workers=self.config.compile_workers,
                queue_capacity=self.config.queue_capacity,
                obs=self.obs,
            )
            if self.mode == "async"
            else None
        )
        self.tenants = {}  # name -> Tenant
        self._stores = {}  # tenant_id -> TenantProfileStore
        self._next_id = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------

    def admit(self, spec):
        """Admit one :class:`~repro.serve.admission.TenantSpec`.

        Returns the :class:`~repro.serve.tenant.Tenant`; raises
        :class:`~repro.serve.admission.AdmissionDenied` when refused.
        """
        with self._lock:
            self.admission.check(self.tenants, spec)
            tenant_id = self._next_id
            self._next_id += 1
        program = spec.load_program()
        store = self.aggregator.store_for_tenant(
            merge=spec.merge,
            context_sensitive=bool(
                spec.jit.get("context_sensitive_profiles", False)
            ),
            obs=self.obs,
        )
        jit_kwargs = dict(spec.jit)
        jit_kwargs.setdefault("hot_threshold", self.config.hot_threshold)
        jit_kwargs.setdefault("backend", self.config.backend)
        jit_kwargs["compile_mode"] = self.mode
        engine = Engine(
            program,
            JitConfig(**jit_kwargs),
            spec.make_inliner(),
            seed=spec.seed,
            obs=self.obs,
            code_cache=self.cache.view(tenant_id, quota=spec.quota),
            profiles=store,
            compile_service=self.scheduler,
        )
        tenant = Tenant(spec, engine, tenant_id)
        with self._lock:
            self.tenants[spec.name] = tenant
            self._stores[tenant_id] = store
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("serve.tenants.admitted").inc()
            obs.metrics.gauge("serve.tenants").set(len(self.tenants))
            obs.events.emit(
                "serve.admit",
                tenant=spec.name,
                tenant_id=tenant_id,
                benchmark=spec.benchmark,
                merge=spec.merge,
                mode=self.mode,
            )
        if obs.flight.enabled:
            obs.flight.record(
                "serve.admit", tenant=spec.name, tenant_id=tenant_id
            )
        return tenant

    def evict(self, name):
        """Evict tenant *name*: stop its workload at the next iteration
        edge, cancel its queued compilations, reclaim its cache bytes.
        Returns the bytes reclaimed."""
        tenant = self.tenants[name]
        tenant.mark_evicted()
        for request in tenant.engine.pending_compiles():
            request.cancel()
        reclaimed = self.cache.drop_tenant(tenant.tenant_id)
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("serve.tenants.evicted").inc()
            obs.events.emit(
                "serve.evict",
                tenant=name,
                reclaimed_bytes=reclaimed,
            )
        if obs.flight.enabled:
            obs.flight.record(
                "serve.evict", tenant=name, reclaimed_bytes=reclaimed
            )
        return reclaimed

    def _hotness_of(self, tenant_id, method):
        """Hotness signal for the cache's eviction policy."""
        store = self._stores.get(tenant_id)
        if store is None:
            return 0
        return store.hotness(method)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, concurrent=True):
        """Run every admitted tenant's workload; returns a
        :class:`ServiceReport`.

        ``concurrent=True`` gives each tenant its own thread (the
        serving shape); ``concurrent=False`` runs tenants round-robin
        on the calling thread — fully deterministic, used by
        differential tests.
        """
        runnable = [
            tenant
            for tenant in self.tenants.values()
            if tenant.state == "admitted"
        ]
        started = time.perf_counter()
        if concurrent and len(runnable) > 1:
            threads = [
                threading.Thread(
                    target=tenant.run_workload,
                    name="repro-tenant-%s" % tenant.name,
                    daemon=True,
                )
                for tenant in runnable
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for tenant in runnable:
                tenant.run_workload()
        # Let in-flight compilations settle so the report's install
        # counts are stable (and worker threads go idle).
        for tenant in runnable:
            tenant.engine.drain_compiles(timeout=10.0)
        wall = time.perf_counter() - started
        report = ServiceReport(
            [tenant.as_dict() for tenant in self.tenants.values()],
            wall,
            self.mode,
            self.queue_stats(),
        )
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("serve.iterations").inc(
                report.total_iterations
            )
            obs.events.emit("serve.run", **{
                "mode": self.mode,
                "tenants": len(self.tenants),
                "total_iterations": report.total_iterations,
                "throughput": round(report.throughput, 3),
                "fairness": round(report.fairness, 4),
            })
        return report

    def queue_stats(self):
        scheduler = self.scheduler
        if scheduler is None:
            return {"mode": "sync"}
        return {
            "mode": "async",
            "submitted": scheduler.submitted,
            "completed": scheduler.completed,
            "failed": scheduler.failed,
            "cancelled": scheduler.cancelled,
            "rejected": scheduler.rejected,
            "depth": scheduler.depth,
        }

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def shutdown(self):
        for tenant in self.tenants.values():
            tenant.engine.shutdown()
        if self.scheduler is not None:
            self.scheduler.close()
            self.scheduler = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
