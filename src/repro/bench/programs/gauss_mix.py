"""gauss-mix — Gaussian mixture model EM (Spark MLLib).

Spark's GMM spends its time in per-point density evaluations written
against generic vector abstractions. We model the E-step in fixed
point: responsibility computation per (point, component) through a
``Component`` abstraction whose math helpers are tiny — the benchmark
where the paper sees its single largest swing (≈59% from deep trials,
≈1.9× over C2), because the abstraction collapses completely once the
call tree is specialized.
"""

DESCRIPTION = "fixed-point GMM E-step through vector abstractions"
ITERATIONS = 14

SOURCE = """
class Vec2 {
  var x: int;
  var y: int;
  def init(x: int, y: int): void { this.x = x; this.y = y; }
  @inline def sub(o: Vec2): Vec2 { return new Vec2(this.x - o.x, this.y - o.y); }
  @inline def norm2(): int { return (this.x * this.x + this.y * this.y) >> 8; }
}

class Component {
  var mean: Vec2;
  var invVar: int;    // 8.8 fixed point inverse variance
  var weight: int;    // 8.8 fixed point
  def init(mean: Vec2, invVar: int, weight: int): void {
    this.mean = mean; this.invVar = invVar; this.weight = weight;
  }
  def logDensity(p: Vec2): int {
    var d: Vec2 = p.sub(this.mean);
    var m: int = (d.norm2() * this.invVar) >> 8;
    return this.weight - m;
  }
}

class Mixture {
  var components: ArraySeq;
  def init(): void { this.components = new ArraySeq(4); }
  def assign(p: Vec2): int {
    var best: int = 0;
    var bestScore: int = 0 - 1000000000;
    var i: int = 0;
    while (i < this.components.length()) {
      var c: Component = this.components.get(i) as Component;
      var s: int = c.logDensity(p);
      if (s > bestScore) { bestScore = s; best = i; }
      i = i + 1;
    }
    return best;
  }
}

object Main {
  static var points: ArraySeq;
  static var mixture: Mixture;

  def setup(): void {
    var points: ArraySeq = new ArraySeq(64);
    var x: int = 17;
    var i: int = 0;
    while (i < 150) {
      x = (x * 25 + 13) % 2048;
      points.add(new Vec2(x, (x * 7) % 2048));
      i = i + 1;
    }
    Main.points = points;
    var m: Mixture = new Mixture();
    m.components.add(new Component(new Vec2(256, 256), 300, 80));
    m.components.add(new Component(new Vec2(1024, 512), 200, 100));
    m.components.add(new Component(new Vec2(1536, 1536), 260, 90));
    Main.mixture = m;
  }

  def run(): int {
    if (Main.mixture == null) { Main.setup(); }
    var hist: int[] = new int[3];
    var pass: int = 0;
    while (pass < 2) {
      Main.points.foreach(fun (p: Vec2): void {
        var k: int = Main.mixture.assign(p);
        hist[k] = hist[k] + 1;
      });
      pass = pass + 1;
    }
    return hist[0] * 10000 + hist[1] * 100 + hist[2];
  }
}
"""
