"""The optimizer that inlining trials piggyback on.

The paper's deep inlining trials are defined operationally: propagate
callsite argument types into the callee IR, run "canonicalization" —
Graal's grab-bag of local simplifications (constant folding, strength
reduction, branch pruning, global value numbering, type-check folding)
— and count what fired (§IV, "Deep inlining trials"). This package is
that optimizer:

- :mod:`canonicalize <repro.opts.canonicalize>` — worklist-driven local
  rewrites including branch pruning and devirtualization;
- :mod:`gvn <repro.opts.gvn>` — dominator-scoped value numbering;
- :mod:`dce <repro.opts.dce>` — unreachable code elimination, dead node
  elimination and block merging;
- :mod:`rwelim <repro.opts.rwelim>` — read/write elimination (§IV,
  "Other optimizations");
- :mod:`peeling <repro.opts.peeling>` — first-iteration loop peeling
  keyed on phi stamps (§IV, "Other optimizations");
- :mod:`pipeline <repro.opts.pipeline>` — the full pipeline with the
  optimization *budget* that reproduces the paper's non-linearity
  argument (§II, point 3).
"""

from repro.opts.canonicalize import canonicalize, CanonStats
from repro.opts.gvn import global_value_numbering
from repro.opts.dce import (
    remove_unreachable_blocks,
    remove_dead_nodes,
    merge_blocks,
)
from repro.opts.rwelim import read_write_elimination
from repro.opts.peeling import peel_loops
from repro.opts.pipeline import OptimizationPipeline, OptimizerConfig

__all__ = [
    "canonicalize",
    "CanonStats",
    "global_value_numbering",
    "remove_unreachable_blocks",
    "remove_dead_nodes",
    "merge_blocks",
    "read_write_elimination",
    "peel_loops",
    "OptimizationPipeline",
    "OptimizerConfig",
]
