"""Optimized IR → live Python closures: the top execution tier.

The machine backend (:mod:`repro.backend.machine`) is a cycle-accounted
register interpreter — deterministic, host-independent, and the
differential oracle for everything faster. This module is the
"everything faster": it lowers the same optimized graph to Python
source, compiles it with :func:`compile`/``exec`` and returns a closure
the engine calls instead of the machine executor. The generated code
must be *bit-identical* to the machine model in every observable:
values, trap kinds, printed output, per-iteration cycles, and the
frames materialized on deoptimization.

Codegen shape
-------------

One function per graph. Each SSA value becomes a Python local
``v<node id>`` (constants are inlined as literals and never assigned);
control flow is a ``while True:`` state machine over block ids whose
``if/elif`` dispatch chain is ordered by profiled block frequency, so
hot loop bodies re-dispatch in one or two integer comparisons. Phis
become native tuple assignments on the incoming edges (Python's
parallel assignment gives the parallel-copy semantics the machine
backend needs a scratch register for). Compare and instance-of nodes
whose single use is the same block's branch or guard are fused into the
``if`` condition instead of materializing a 0/1 local.

Parity rules (mirroring :class:`~repro.backend.machine.MachineExecutor`
instruction by instruction):

- int64: add/sub/mul/neg/shl inline the two's-complement wrap formula
  using the constants of :mod:`repro.runtime.int64`; div/rem call
  :func:`~repro.runtime.int64.int_div` / ``int_rem`` and wrap.
- cycles: ``_cy`` starts at ``METHOD_ENTRY``, each block adds the same
  block cost lowering puts in its ``COST`` pseudo-instruction, and the
  accumulator flushes to the engine sink exactly where the machine
  flushes — before non-native dispatches, before a deopt raise, and at
  returns; never on a trap.
- traps: the same trap classes with the same kinds, raised after the
  same checks in the same order.
- deopt: guard/deopt sites build :class:`~repro.deopt.FrameTemplate`
  tables whose "registers" are positions in a runtime value tuple, so
  :func:`~repro.deopt.materialize_frames` and the engine's
  ``DeoptSignal`` handling are reused unchanged.

Bailouts
--------

Anything the generator cannot prove it translates faithfully raises
:class:`PyCodegenBailout`; the compiler then installs machine-only code
(slower, never wrong). Reasons: ``unsupported-node`` (an IR node
outside the supported vocabulary), ``graph-too-large`` (node count over
:data:`MAX_NODES`), ``frame-state-mismatch`` (malformed deopt state),
``compile-failed`` (the generated source failed to ``compile()``).
"""

from repro.backend.costmodel import CostModel
from repro.deopt import DeoptSignal, FrameTemplate, materialize_frames
from repro.errors import (
    BoundsTrap,
    CastTrap,
    NullPointerTrap,
    VMError,
)
from repro.ir import nodes as n
from repro.ir import stamps as st
from repro.runtime import int64
from repro.runtime.int64 import int_div, int_rem, wrap64
from repro.runtime.intrinsics import intrinsic_function
from repro.runtime.values import ArrayRef, ObjRef

#: Wrap-formula constants, taken from the single int64 definition so the
#: inlined arithmetic cannot drift from :func:`~repro.runtime.int64.wrap64`
#: (pinned by ``tests/test_pycodegen.py`` over the edge cases).
_SIGN = int64._SIGN
_MASK = int64._WRAP - 1

#: Node-count ceiling; beyond it the generated source stops paying for
#: itself and ``compile()`` time becomes noticeable, so bail out.
MAX_NODES = 50000


class PyCodegenBailout(Exception):
    """The graph cannot be translated faithfully; use machine code.

    ``reason`` is a short stable slug (counted per-reason by the
    compiler's ``backend.py.bailouts.<reason>`` metric), ``detail`` the
    human-readable specifics.
    """

    def __init__(self, reason, detail=""):
        super().__init__(detail or reason)
        self.reason = reason
        self.detail = detail or reason


_CMP_OPS = {
    "EQ": "==",
    "NE": "!=",
    "LT": "<",
    "LE": "<=",
    "GT": ">",
    "GE": ">=",
    "REF_EQ": "is",
    "REF_NE": "is not",
}

#: Operator inversion for fused negated conditions (guards fail on 0).
_CMP_NEGATED = {
    "EQ": "!=",
    "NE": "==",
    "LT": ">=",
    "LE": ">",
    "GT": "<=",
    "GE": "<",
    "REF_EQ": "is not",
    "REF_NE": "is",
}


def generate(graph, cost_model=None):
    """Generate the Python tier for *graph*.

    Returns ``(factory, source)`` where ``factory(vm, dispatch, sink)``
    binds one engine's VM state and returns the ``run(args)`` closure.
    Raises :class:`PyCodegenBailout` when the graph cannot be
    translated faithfully.
    """
    return _PyCodegen(graph, cost_model or CostModel()).run()


class _PyCodegen:
    def __init__(self, graph, cost_model):
        self.graph = graph
        self.cost = cost_model
        self.lines = []
        self.deopt_table = []
        self.reasons = []
        self.globals = {}
        self._next_global = 0

    # -- source assembly ----------------------------------------------------

    def _line(self, depth, text):
        self.lines.append("    " * depth + text)

    def _bind(self, prefix, value):
        name = "_%s%d" % (prefix, self._next_global)
        self._next_global += 1
        self.globals[name] = value
        return name

    def _val(self, node):
        t = type(node)
        if t is n.ConstIntNode:
            return repr(node.value)
        if t is n.ConstNullNode:
            return "None"
        return "v%d" % node.id

    # -- main ---------------------------------------------------------------

    def run(self):
        graph = self.graph
        if graph.node_count() > MAX_NODES:
            raise PyCodegenBailout(
                "graph-too-large",
                "%d nodes > %d" % (graph.node_count(), MAX_NODES),
            )
        order = graph.reverse_postorder()
        entry = order[0]
        lines = self.lines
        lines.append("def _deopt(index, values):")
        lines.append("    frames = _mf(_TABLE[index], values)")
        lines.append("    raise _DS(_METHOD, _REASONS[index],")
        lines.append("        (frames[0].method.qualified_name,"
                     " frames[0].bci), frames)")
        lines.append("def _factory(vm, dispatch, sink):")
        for binding in (
            "_vm = vm",
            "_call = dispatch",
            "_sink = sink",
            "_alloc = vm.allocate",
            "_allocarr = vm.allocate_array",
            "_getstatic = vm.get_static",
            "_putstatic = vm.put_static",
            "_issub = vm.program.is_subtype",
            "_resolve = vm.program.resolve_method",
        ):
            lines.append("    " + binding)
        lines.append("    def _run(args):")
        for index, param in enumerate(graph.params):
            self._line(2, "v%d = args[%d]" % (param.id, index))
        self._line(2, "_cy = %d" % self.cost.METHOD_ENTRY)

        # The entry block runs exactly once when it has no predecessors
        # (the common case); emit it inline before the dispatch loop so
        # straight-line methods never touch the state machine at all.
        inline_entry = not entry.preds
        labeled = [b for b in order if not (inline_entry and b is entry)]
        if inline_entry:
            self._emit_block(entry, 2)
        else:
            self._line(2, "_b = %d" % entry.id)
        if labeled:
            # Hot blocks dispatch first: the chain is ordered by the
            # profiled block frequency, ties broken by layout order.
            ranked = sorted(
                enumerate(labeled),
                key=lambda item: (-getattr(item[1], "frequency", 1.0),
                                  item[0]),
            )
            self._line(2, "while True:")
            for rank, (_, block) in enumerate(ranked):
                keyword = "if" if rank == 0 else "elif"
                self._line(3, "%s _b == %d:" % (keyword, block.id))
                self._emit_block(block, 4)
            self._line(3, "else:")
            self._line(4, "raise _VE('bad block id %d' % _b)")
        lines.append("    return _run")

        self.globals.update(
            _mf=materialize_frames,
            _DS=DeoptSignal,
            _METHOD=graph.method,
            _TABLE=tuple(self.deopt_table),
            _REASONS=tuple(self.reasons),
            _NPT=NullPointerTrap,
            _BT=BoundsTrap,
            _CT=CastTrap,
            _VE=VMError,
            _OR=ObjRef,
            _AR=ArrayRef,
            _idiv=int_div,
            _irem=int_rem,
            _wrap=wrap64,
        )
        source = "\n".join(lines) + "\n"
        name = getattr(graph, "name", None) or graph.method.qualified_name
        try:
            code = compile(source, "<pycodegen:%s>" % name, "exec")
        except (SyntaxError, ValueError, RecursionError, MemoryError) as error:
            raise PyCodegenBailout("compile-failed", repr(error))
        exec(code, self.globals)
        return self.globals["_factory"], source

    # -- blocks -------------------------------------------------------------

    def _emit_block(self, block, depth):
        # Identical block price to the COST pseudo-instruction lowering
        # emits — this is what keeps the cycle model bit-identical.
        cost = sum(self.cost.node_cost(node) for node in block.instrs)
        if block.terminator is not None:
            cost += self.cost.node_cost(block.terminator)
        if cost:
            self._line(depth, "_cy += %d" % cost)
        fused = self._fused_conditions(block)
        for node in block.instrs:
            if node in fused:
                continue
            self._emit_node(node, depth, fused)
        self._emit_terminator(block, depth, fused)

    def _fused_conditions(self, block):
        """Compare/instance-of nodes foldable into their single branch
        or guard user in the same block (pure, so evaluation order is
        free to move to the use)."""
        fused = set()
        users = [x for x in block.instrs if type(x) is n.GuardNode]
        if type(block.terminator) is n.IfNode:
            users.append(block.terminator)
        for user in users:
            cond = user.inputs[0]
            if type(cond) not in (n.CompareNode, n.InstanceOfNode):
                continue
            if cond.block is not block or len(cond.uses) != 1:
                continue
            if type(user) is n.GuardNode and any(
                value is cond for value in user.state_values
            ):
                # The condition doubles as captured frame state; it
                # needs its materialized 0/1 local after all.
                continue
            fused.add(cond)
        return fused

    def _cond_expr(self, cond, fused, negate):
        """The branch/guard condition as an expression (0 = false)."""
        if cond in fused:
            t = type(cond)
            if t is n.CompareNode:
                ops = _CMP_NEGATED if negate else _CMP_OPS
                return "%s %s %s" % (
                    self._val(cond.inputs[0]),
                    ops[cond.op],
                    self._val(cond.inputs[1]),
                )
            expr = self._instanceof_expr(cond)
            return ("not (%s)" % expr) if negate else expr
        value = self._val(cond)
        return ("not %s" % value) if negate else value

    def _instanceof_expr(self, node):
        value = self._val(node.inputs[0])
        if node.exact:
            return "isinstance(%s, _OR) and %s.class_name == %r" % (
                value, value, node.type_name,
            )
        return (
            "%s is not None and _issub(%s.class_name "
            "if isinstance(%s, _OR) else %s.type_name, %r)"
            % (value, value, value, value, node.type_name)
        )

    # -- nodes --------------------------------------------------------------

    def _emit_node(self, node, depth, fused):
        t = type(node)
        line = self._line
        if t in (n.ConstIntNode, n.ConstNullNode, n.ParamNode, n.PhiNode):
            return  # inlined literals / preassigned / edge-assigned
        dst = "v%d" % node.id
        if t is n.BinOpNode:
            a = self._val(node.inputs[0])
            b = self._val(node.inputs[1])
            op = node.op
            if op in ("ADD", "SUB", "MUL"):
                sign = {"ADD": "+", "SUB": "-", "MUL": "*"}[op]
                line(depth, "%s = (%s %s %s + %d & %d) - %d"
                     % (dst, a, sign, b, _SIGN, _MASK, _SIGN))
            elif op == "DIV":
                line(depth, "%s = _wrap(_idiv(%s, %s))" % (dst, a, b))
            elif op == "REM":
                line(depth, "%s = _wrap(_irem(%s, %s))" % (dst, a, b))
            elif op in ("AND", "OR", "XOR"):
                sign = {"AND": "&", "OR": "|", "XOR": "^"}[op]
                line(depth, "%s = %s %s %s" % (dst, a, sign, b))
            elif op == "SHL":
                line(depth, "%s = ((%s << (%s & 63)) + %d & %d) - %d"
                     % (dst, a, b, _SIGN, _MASK, _SIGN))
            elif op == "SHR":
                line(depth, "%s = %s >> (%s & 63)" % (dst, a, b))
            else:
                raise PyCodegenBailout(
                    "unsupported-node", "BinOp %s" % op
                )
        elif t is n.NegNode:
            line(depth, "%s = (-(%s) + %d & %d) - %d"
                 % (dst, self._val(node.inputs[0]), _SIGN, _MASK, _SIGN))
        elif t is n.CompareNode:
            line(depth, "%s = 1 if %s %s %s else 0" % (
                dst,
                self._val(node.inputs[0]),
                _CMP_OPS[node.op],
                self._val(node.inputs[1]),
            ))
        elif t is n.PiNode:
            line(depth, "%s = %s" % (dst, self._val(node.inputs[0])))
        elif t is n.NewNode:
            line(depth, "%s = _alloc(%r)" % (dst, node.class_name))
        elif t is n.NewArrayNode:
            length = self._val(node.inputs[0])
            line(depth, "if %s < 0:" % length)
            line(depth + 1,
                 "raise _BT('negative array length %%d' %% %s)" % length)
            line(depth, "%s = _allocarr(%r, %s)"
                 % (dst, node.elem_type, length))
        elif t is n.ArrayLoadNode:
            array = self._val(node.inputs[0])
            index = self._val(node.inputs[1])
            line(depth, "if %s is None:" % array)
            line(depth + 1, "raise _NPT('ALOAD')")
            line(depth, "_t = %s.data" % array)
            line(depth, "if 0 <= %s < len(_t):" % index)
            line(depth + 1, "%s = _t[%s]" % (dst, index))
            line(depth, "else:")
            line(depth + 1,
                 "raise _BT('%%d / %%d' %% (%s, len(_t)))" % index)
        elif t is n.ArrayStoreNode:
            array = self._val(node.inputs[0])
            index = self._val(node.inputs[1])
            value = self._val(node.inputs[2])
            line(depth, "if %s is None:" % array)
            line(depth + 1, "raise _NPT('ASTORE')")
            line(depth, "_t = %s.data" % array)
            line(depth, "if 0 <= %s < len(_t):" % index)
            line(depth + 1, "_t[%s] = %s" % (index, value))
            line(depth, "else:")
            line(depth + 1,
                 "raise _BT('%%d / %%d' %% (%s, len(_t)))" % index)
        elif t is n.ArrayLengthNode:
            array = self._val(node.inputs[0])
            line(depth, "if %s is None:" % array)
            line(depth + 1, "raise _NPT('ARRAYLEN')")
            line(depth, "%s = len(%s.data)" % (dst, array))
        elif t is n.LoadFieldNode:
            obj = self._val(node.inputs[0])
            line(depth, "if %s is None:" % obj)
            line(depth + 1,
                 "raise _NPT(%r)" % ("GETFIELD %s" % node.field_name))
            line(depth, "%s = %s.fields[%r]" % (dst, obj, node.field_name))
        elif t is n.StoreFieldNode:
            obj = self._val(node.inputs[0])
            line(depth, "if %s is None:" % obj)
            line(depth + 1,
                 "raise _NPT(%r)" % ("PUTFIELD %s" % node.field_name))
            line(depth, "%s.fields[%r] = %s"
                 % (obj, node.field_name, self._val(node.inputs[1])))
        elif t is n.LoadStaticNode:
            line(depth, "%s = _getstatic(%r, %r)"
                 % (dst, node.class_name, node.field_name))
        elif t is n.StoreStaticNode:
            line(depth, "_putstatic(%r, %r, %s)"
                 % (node.class_name, node.field_name,
                    self._val(node.inputs[0])))
        elif t is n.InstanceOfNode:
            line(depth, "%s = 1 if %s else 0"
                 % (dst, self._instanceof_expr(node)))
        elif t is n.CheckCastNode:
            value = self._val(node.inputs[0])
            line(depth, "_t = %s" % value)
            line(depth, "if _t is not None:")
            line(depth + 1,
                 "_u = _t.class_name if isinstance(_t, _OR)"
                 " else _t.type_name")
            line(depth + 1, "if not _issub(_u, %r):" % node.type_name)
            line(depth + 2,
                 "raise _CT('%%s -> %%s' %% (_u, %r))" % node.type_name)
            line(depth, "%s = _t" % dst)
        elif t is n.InvokeNode:
            self._emit_invoke(node, depth)
        elif t is n.GuardNode:
            index, values = self._deopt_entry(
                node.frames, node.state_values, node.reason
            )
            line(depth, "if %s:"
                 % self._cond_expr(node.inputs[0], fused, negate=True))
            line(depth + 1, "_sink(_cy)")
            line(depth + 1, "_deopt(%d, %s)" % (index, values))
        else:
            raise PyCodegenBailout(
                "unsupported-node", type(node).__name__
            )

    def _emit_invoke(self, node, depth):
        line = self._line
        dst = (
            "v%d = " % node.id
            if node.stamp.kind != st.Stamp.VOID
            else ""
        )
        args = [self._val(a) for a in node.inputs[: node.n_args]]
        if node.kind in ("static", "special", "direct"):
            target = node.target
            if target is None:
                raise PyCodegenBailout(
                    "unsupported-node", "direct call without target"
                )
            if target.is_native:
                # Intrinsics run in-line, like the machine backend: no
                # dispatch, no cycle flush.
                name = self._bind("n", intrinsic_function(target.name))
                line(depth, "%s%s(_vm%s)" % (
                    dst, name, "".join(", " + a for a in args)
                ))
            else:
                name = self._bind("m", target)
                line(depth, "_sink(_cy)")
                line(depth, "_cy = 0")
                line(depth, "%s_call(%s, [%s])"
                     % (dst, name, ", ".join(args)))
        else:
            receiver = args[0]
            line(depth, "if %s is None:" % receiver)
            line(depth + 1,
                 "raise _NPT(%r)" % ("call %s" % node.method_name))
            line(depth, "if isinstance(%s, _AR):" % receiver)
            line(depth + 1, "raise _VE('virtual call on array receiver')")
            # Resolution precedes the flush, exactly like M_VCALL.
            line(depth, "_t = _resolve(%s.class_name, %r)"
                 % (receiver, node.method_name))
            line(depth, "_sink(_cy)")
            line(depth, "_cy = 0")
            line(depth, "%s_call(_t, [%s])" % (dst, ", ".join(args)))

    def _deopt_entry(self, frames, state_values, reason):
        """Build a deopt-table entry over tuple positions.

        Mirrors the machine lowering's ``_deopt_entry``, except the
        FrameTemplate "registers" index the value tuple the generated
        guard passes at runtime — :func:`materialize_frames` works on
        either, so the deopt protocol is shared verbatim.
        """
        values = []

        def position(value):
            # None = local undefined along this path; -1 materializes
            # NULL (the machine lowering's sentinel, reused).
            if value is None:
                return -1
            values.append(self._val(value))
            return len(values) - 1

        templates = []
        cursor = 0
        for frame in frames:
            local_map = []
            for slot in frame.local_slots:
                local_map.append((slot, position(state_values[cursor])))
                cursor += 1
            stack = []
            for _ in range(frame.n_stack):
                stack.append(position(state_values[cursor]))
                cursor += 1
            templates.append(
                FrameTemplate(
                    frame.method,
                    frame.bci,
                    local_map,
                    stack,
                    frame.argc,
                    frame.pushes_result,
                )
            )
        if cursor != len(state_values):
            raise PyCodegenBailout(
                "frame-state-mismatch",
                "%d values for %d slots" % (len(state_values), cursor),
            )
        self.deopt_table.append(tuple(templates))
        self.reasons.append(reason)
        tail = "," if len(values) == 1 else ""
        return len(self.deopt_table) - 1, "(%s%s)" % (
            ", ".join(values), tail
        )

    # -- terminators --------------------------------------------------------

    def _emit_terminator(self, block, depth, fused):
        term = block.terminator
        line = self._line
        t = type(term)
        if t is n.ReturnNode:
            value = term.value()
            line(depth, "_sink(_cy)")
            line(depth, "return %s"
                 % (self._val(value) if value is not None else "None"))
        elif t is n.GotoNode:
            self._emit_edge(block, term.target, depth)
            line(depth, "_b = %d" % term.target.id)
        elif t is n.IfNode:
            line(depth, "if %s:"
                 % self._cond_expr(term.inputs[0], fused, negate=False))
            self._emit_edge(block, term.true_block, depth + 1)
            line(depth + 1, "_b = %d" % term.true_block.id)
            line(depth, "else:")
            self._emit_edge(block, term.false_block, depth + 1)
            line(depth + 1, "_b = %d" % term.false_block.id)
        elif t is n.DeoptNode:
            index, values = self._deopt_entry(
                term.frames, term.state_values, term.reason
            )
            line(depth, "_sink(_cy)")
            line(depth, "_deopt(%d, %s)" % (index, values))
        elif term is None:
            raise PyCodegenBailout(
                "unsupported-node", "block B%d has no terminator" % block.id
            )
        else:
            raise PyCodegenBailout("unsupported-node", type(term).__name__)

    def _emit_edge(self, pred, succ, depth):
        """Phi inputs for the edge *pred*→*succ* as one native parallel
        assignment (tuple unpacking evaluates every source first, which
        is exactly the parallel-copy semantics)."""
        if not succ.phis:
            return
        index = succ.pred_index(pred)
        dsts, srcs = [], []
        for phi in succ.phis:
            source = phi.inputs[index]
            if source is None or source is phi:
                continue
            dsts.append("v%d" % phi.id)
            srcs.append(self._val(source))
        if not dsts:
            return
        self._line(depth, "%s = %s" % (", ".join(dsts), ", ".join(srcs)))
