"""jython — a Python interpreter on the JVM.

jython's hot path is the ceval-style dispatch loop over boxed dynamic
values. We model an inner stack-machine interpreter whose values are
boxed ``PyVal`` objects with virtual arithmetic and truthiness — every
guest operation is a dispatch plus an allocation, the classic dynamic-
language tax. The paper reports ≈21% improvement over C2 here.
"""

DESCRIPTION = "inner interpreter over boxed dynamic values"
ITERATIONS = 12

SOURCE = """
trait PyVal {
  def addv(other: PyVal): PyVal;
  def mulv(other: PyVal): PyVal;
  def lessThan(other: PyVal): bool;
  def asInt(): int;
}

class PyInt implements PyVal {
  var value: int;
  def init(v: int): void { this.value = v; }
  def addv(other: PyVal): PyVal { return new PyInt(this.value + other.asInt()); }
  def mulv(other: PyVal): PyVal { return new PyInt(this.value * other.asInt()); }
  def lessThan(other: PyVal): bool { return this.value < other.asInt(); }
  def asInt(): int { return this.value; }
}

class PyBool implements PyVal {
  var flag: bool;
  def init(f: bool): void { this.flag = f; }
  def addv(other: PyVal): PyVal { return new PyInt(this.asInt() + other.asInt()); }
  def mulv(other: PyVal): PyVal { return new PyInt(this.asInt() * other.asInt()); }
  def lessThan(other: PyVal): bool { return this.asInt() < other.asInt(); }
  def asInt(): int { if (this.flag) { return 1; } return 0; }
}

// Opcodes: 0 push-const, 1 load, 2 store, 3 add, 4 mul, 5 less,
// 6 jump-if-false, 7 jump, 8 halt.
class Frame {
  var stack: PyVal[];
  var sp: int;
  var locals: PyVal[];
  def init(): void {
    this.stack = new PyVal[16];
    this.sp = 0;
    this.locals = new PyVal[8];
  }
  def push(v: PyVal): void { this.stack[this.sp] = v; this.sp = this.sp + 1; }
  def pop(): PyVal { this.sp = this.sp - 1; return this.stack[this.sp]; }
}

object Main {
  static var code: int[];
  static var args: int[];

  def setup(): void {
    // sum = 0; i = 0; while i < N: sum = sum + i*i; i = i + 1
    var c: int[] = new int[64];
    var k: int = 0;
    // locals: 0=sum 1=i 2=N
    c[0] = 0;  c[1] = 0;    // push 0
    c[2] = 2;  c[3] = 0;    // store sum
    c[4] = 0;  c[5] = 0;    // push 0
    c[6] = 2;  c[7] = 1;    // store i
    // loop head at 8
    c[8] = 1;  c[9] = 1;    // load i
    c[10] = 1; c[11] = 2;   // load N
    c[12] = 5; c[13] = 0;   // less
    c[14] = 6; c[15] = 36;  // jump-if-false -> 36
    c[16] = 1; c[17] = 0;   // load sum
    c[18] = 1; c[19] = 1;   // load i
    c[20] = 1; c[21] = 1;   // load i
    c[22] = 4; c[23] = 0;   // mul
    c[24] = 3; c[25] = 0;   // add
    c[26] = 2; c[27] = 0;   // store sum
    c[28] = 1; c[29] = 1;   // load i
    c[30] = 0; c[31] = 1;   // push 1
    c[32] = 3; c[33] = 0;   // add
    c[34] = 2; c[35] = 1;   // store i  (fallthrough jumps back)
    c[36] = 8; c[37] = 0;   // halt (patched: 36 is loop exit)
    // insert back jump: rewrite 36.. as jump 8, halt at 38
    c[36] = 7; c[37] = 8;
    c[38] = 8; c[39] = 0;
    // fix jump-if-false target to 38
    c[15] = 38;
    Main.code = c;
  }

  def exec(n: int): int {
    var f: Frame = new Frame();
    f.locals[2] = new PyInt(n);
    var pc: int = 0;
    var running: bool = true;
    while (running) {
      var op: int = Main.code[pc];
      var arg: int = Main.code[pc + 1];
      pc = pc + 2;
      if (op == 0) { f.push(new PyInt(arg)); }
      else { if (op == 1) { f.push(f.locals[arg]); }
      else { if (op == 2) { f.locals[arg] = f.pop(); }
      else { if (op == 3) { var b: PyVal = f.pop(); f.push(f.pop().addv(b)); }
      else { if (op == 4) { var b2: PyVal = f.pop(); f.push(f.pop().mulv(b2)); }
      else { if (op == 5) { var b3: PyVal = f.pop(); f.push(new PyBool(f.pop().lessThan(b3))); }
      else { if (op == 6) { var c: PyVal = f.pop(); if (!(c.asInt() != 0)) { pc = arg; } }
      else { if (op == 7) { pc = arg; }
      else { running = false; } } } } } } } }
    }
    return f.locals[0].asInt();
  }

  def run(): int {
    if (Main.code == null) { Main.setup(); }
    var total: int = 0;
    var round: int = 0;
    while (round < 2) {
      total = total + Main.exec(40 + round);
      round = round + 1;
    }
    return total;
  }
}
"""
