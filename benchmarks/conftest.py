"""Shared infrastructure for the figure/table regenerators.

Each ``test_fig*.py`` / ``test_table*.py`` module regenerates one
artifact from the paper's evaluation (§V): it runs the relevant
benchmark × configuration matrix on the simulated JIT, prints the same
rows/series the paper reports, and asserts the paper's *qualitative*
shape (who wins, roughly by how much) — absolute cycle counts live in a
synthetic cost model and are not expected to match the paper's
wall-clock numbers.

By default the matrix runs over a representative seven-benchmark subset
(one per workload family) so ``pytest benchmarks/ --benchmark-only``
stays laptop-friendly; set ``REPRO_BENCH_FULL=1`` for all 28 benchmarks
(this is what EXPERIMENTS.md records).
"""

import math
import os

import pytest

from repro.bench.harness import QUICK_BENCHMARKS

#: Benchmarks used by default in each figure regenerator.
DEFAULT_SET = QUICK_BENCHMARKS

#: Number of VM instances per data point (the paper uses 5).
INSTANCES = 2


def figure_benchmarks():
    if os.environ.get("REPRO_BENCH_FULL"):
        return None  # harness default: all 28
    return list(DEFAULT_SET)


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedups(results, baseline, config):
    """Per-benchmark baseline/config time ratios."""
    out = {}
    for name, row in results.items():
        base = row[baseline].mean_cycles
        other = row[config].mean_cycles
        out[name] = base / max(1.0, other)
    return out


@pytest.fixture
def steady_engine_factory():
    """Builds a warmed-up engine for host-time benchmarking of one
    simulated steady-state iteration."""

    def make(benchmark_name="factorie", config_name="incremental", warmup=8):
        from repro.bench.configs import CONFIG_FACTORIES
        from repro.bench.suite import get_benchmark
        from repro.jit import Engine

        spec = get_benchmark(benchmark_name)
        engine = Engine(
            spec.load(),
            spec.jit_config_factory(),
            inliner=CONFIG_FACTORIES[config_name](),
        )
        for _ in range(warmup):
            engine.run_iteration("Main", "run")
        return engine

    return make
