"""Replay every checked-in reproducer through the differential oracle.

``tests/corpus/`` is the fuzzer's regression suite: each ``.asm`` file
is a (usually shrunk) program that once exposed — or pins down — a
semantics disagreement between the interpreter and some JIT
configuration.  Ordinary files must replay **clean** (the bug they
captured stays fixed); files named ``xfail_*.asm`` document known,
still-open divergences and must keep diverging — when one stops, the
bug got fixed and the file should lose its prefix.
"""

import os

import pytest

from repro.fuzz.oracle import check_program
from repro.fuzz.serialize import corpus_files, load_corpus_file

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

FILES = corpus_files(CORPUS_DIR)


def _ids(paths):
    return [os.path.basename(p) for p in paths]


def test_corpus_is_seeded():
    # The corpus ships with at least the REM wrap-boundary reproducer.
    names = {os.path.basename(p) for p in FILES}
    assert "rem_min_int.asm" in names


@pytest.mark.parametrize("path", FILES, ids=_ids(FILES))
def test_replay(path):
    program, entry = load_corpus_file(path)
    divergence = check_program(program, entry)
    if os.path.basename(path).startswith("xfail_"):
        assert divergence is not None, (
            "%s replayed clean: the divergence it documents appears "
            "fixed — rename it to drop the xfail_ prefix" % path
        )
    else:
        assert divergence is None, (
            "%s regressed: %s" % (path, divergence.describe())
        )
