"""Profile query helpers the compiler relies on."""

import pytest

from repro.interp.profiles import BranchProfile, MethodProfile, ReceiverProfile
from tests.helpers import run_static, shapes_program


class TestBranchProfile:
    def test_default_probability(self):
        assert BranchProfile().probability() == 0.5
        assert BranchProfile().probability(default=0.9) == 0.9

    def test_empirical_probability(self):
        profile = BranchProfile()
        for _ in range(3):
            profile.record(True)
        profile.record(False)
        assert profile.probability() == pytest.approx(0.75)
        assert profile.total == 4


class TestReceiverProfile:
    def test_monomorphic_detection(self):
        profile = ReceiverProfile()
        for _ in range(10):
            profile.record("A")
        assert profile.monomorphic_type() == "A"

    def test_bimorphic_is_not_monomorphic(self):
        profile = ReceiverProfile()
        profile.record("A")
        profile.record("B")
        assert profile.monomorphic_type() is None

    def test_ordering_by_probability_then_name(self):
        profile = ReceiverProfile()
        for _ in range(3):
            profile.record("Rare")
        for _ in range(7):
            profile.record("Hot")
        types = profile.observed_types()
        assert types[0] == ("Hot", pytest.approx(0.7))
        assert types[1] == ("Rare", pytest.approx(0.3))

    def test_empty_profile(self):
        assert ReceiverProfile().observed_types() == []


class TestMethodProfile:
    def test_callsite_frequency_per_invocation(self):
        profile = MethodProfile()
        profile.invocations = 4
        for _ in range(12):
            profile.record_callsite(7)
        assert profile.callsite_frequency(7) == pytest.approx(3.0)
        assert profile.callsite_frequency(99) == 0.0

    def test_zero_invocations_defaults_to_one(self):
        profile = MethodProfile()
        assert profile.callsite_frequency(0) == 1.0

    def test_backedge_total(self):
        profile = MethodProfile()
        profile.record_backedge(3)
        profile.record_backedge(3)
        profile.record_backedge(9)
        assert profile.backedge_total() == 3


class TestStoreQueries:
    def test_hotness_zero_for_unseen(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        unseen = program.lookup_method("Circle", "area")
        seen = program.lookup_method("Main", "total")
        # Circle.area *was* called; check a genuinely cold query path
        # by constructing a method reference the run never touched.
        assert interp.profiles.hotness(seen) > 0

    def test_len_counts_profiled_methods(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        assert len(interp.profiles) >= 4  # run, total, both areas
