"""Named inliner configurations for the evaluation figures.

Every entry is a zero-argument factory returning a fresh inlining
policy — fresh per VM instance, since policies are stateless apart from
their parameters but cheap to recreate.

The ``SIZE_FACTOR`` rescales the paper's Graal-calibrated size
constants to our miniature graphs (see ``repro.core.params``); the
fixed-threshold sweep values are the paper's T_e/T_i values in paper
units and are scaled by the same factor inside the factory.
"""

from repro.baselines import (
    C2Inliner,
    GreedyInliner,
    clustering_inliner,
    fixed_threshold_inliner,
    one_by_one_inliner,
    shallow_trials_inliner,
    tuned_inliner,
)

#: Common scale between paper-sized Graal graphs and ours.
SIZE_FACTOR = 0.1

#: T_e sweep of Figure 6 (paper units).
TE_SWEEP = [500, 1000, 3000, 5000, 7000]

#: T_i sweep of Figure 7 (paper units).
TI_SWEEP = [1000, 3000, 6000]

#: (t1, t2) sweep of Figure 8 (paper units for t2).
T1T2_SWEEP = [(0.0001, 1440), (0.005, 120), (0.02, 60)]


def make_config(name):
    """Resolve a configuration name to a policy factory."""
    return CONFIG_FACTORIES[name]


def _fixed_te(te):
    return lambda: fixed_threshold_inliner(te=te, size_factor=SIZE_FACTOR)


def _fixed_ti(ti):
    return lambda: fixed_threshold_inliner(ti=ti, size_factor=SIZE_FACTOR)


def _one_by_one(t1, t2):
    return lambda: one_by_one_inliner(t1=t1, t2=t2, size_factor=SIZE_FACTOR)


def _cluster(t1, t2):
    return lambda: clustering_inliner(t1=t1, t2=t2, size_factor=SIZE_FACTOR)


CONFIG_FACTORIES = {
    "no-inline": lambda: None,
    "incremental": lambda: tuned_inliner(SIZE_FACTOR),
    "greedy": GreedyInliner,
    "c2": C2Inliner,
    "shallow-trials": lambda: shallow_trials_inliner(SIZE_FACTOR),
}

for _te in TE_SWEEP:
    CONFIG_FACTORIES["te-%d" % _te] = _fixed_te(_te)
for _ti in TI_SWEEP:
    CONFIG_FACTORIES["ti-%d" % _ti] = _fixed_ti(_ti)
for _t1, _t2 in T1T2_SWEEP:
    CONFIG_FACTORIES["1by1-%g-%d" % (_t1, _t2)] = _one_by_one(_t1, _t2)
    CONFIG_FACTORIES["cluster-%g-%d" % (_t1, _t2)] = _cluster(_t1, _t2)
