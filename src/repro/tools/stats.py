"""``PrintCompilation``-style compilation statistics for the tiered VM.

Runs a minij program with full observability (or replays a previously
recorded JSONL event log) and renders a per-method compilation report:
compile order, hotness at trigger, node/code sizes, phase wall times,
pass-effectiveness node deltas, inlining outcome rollups and the
hottest methods.

Examples::

    python -m repro.tools.stats program.minij
    python -m repro.tools.stats program.minij --inliner greedy --iterations 20
    python -m repro.tools.stats program.minij --events events.jsonl \\
        --metrics metrics.json
    python -m repro.tools.stats events.jsonl          # replay a recorded log
"""

import argparse
import json

from repro.jit import Engine, JitConfig
from repro.obs import EventLog, Observability, build_report, render_report
from repro.tools.common import (
    add_inliner_argument,
    compile_file,
    make_inliner,
    method_argument,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.stats", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "target", help="minij source file, or a .jsonl event log to replay"
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="treat TARGET as a JSONL event log (implied by a .jsonl suffix)",
    )
    parser.add_argument(
        "--entry", type=method_argument, default=("Main", "run"),
        help="entry point as Class.method (default Main.run)",
    )
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument("--hot-threshold", type=int, default=25)
    parser.add_argument(
        "--events", metavar="PATH",
        help="also stream the event log to PATH as JSONL",
    )
    parser.add_argument(
        "--metrics", metavar="PATH",
        help="also write the metrics snapshot (plus per-iteration "
             "breakdowns) to PATH as JSON",
    )
    parser.add_argument(
        "--flight", metavar="PATH",
        help="also dump the flight-recorder ring (bounded recent "
             "provenance) to PATH as JSONL; replayable by "
             "repro.tools.explain",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="rows in the top-N sections (default 10)",
    )
    parser.add_argument(
        "--no-metrics-section", action="store_true",
        help="omit the raw metrics dump from the report",
    )
    add_inliner_argument(parser)
    args = parser.parse_args(argv)

    if args.replay or args.target.endswith(".jsonl"):
        records = EventLog.read_jsonl(args.target)
        hottest = None
        snapshot = None
        timers = None
    else:
        records, hottest, snapshot, timers = _run_live(args)

    report = build_report(records)
    print(
        render_report(
            report,
            top=args.top,
            hottest=hottest,
            metrics_snapshot=None if args.no_metrics_section else snapshot,
        )
    )
    if timers:
        print(render_timers(timers))
    return 0


def render_timers(timers):
    """A wall-clock phase attribution table from a
    :meth:`~repro.obs.PhaseTimers.snapshot` dict (live runs only —
    replayed event logs carry no host timings)."""
    total = timers.get("engine.iteration", {}).get("seconds", 0.0)
    lines = ["", "Wall-clock phases (host time, not model cycles):"]
    lines.append(
        "  %-24s %10s %8s %9s" % ("phase", "seconds", "count", "of total")
    )
    for name in sorted(timers):
        seconds = timers[name]["seconds"]
        count = timers[name]["count"]
        share = (
            "%8.1f%%" % (100.0 * seconds / total)
            if total > 0
            else "%9s" % "-"
        )
        lines.append(
            "  %-24s %10.4f %8d %s" % (name, seconds, count, share)
        )
    return "\n".join(lines)


def _run_live(args):
    """Run the program under full observability; returns the event
    records (normalized through JSON, exactly as a replay would see
    them), the profile store's hottest methods, the metrics snapshot
    and the phase-timer snapshot."""
    program = compile_file(args.target)
    sink = open(args.events, "w") if args.events else None
    try:
        obs = Observability(events=EventLog(sink=sink))
        engine = Engine(
            program,
            JitConfig(hot_threshold=args.hot_threshold),
            inliner=make_inliner(args.inliner),
            obs=obs,
        )
        class_name, method_name = args.entry
        iteration_dicts = []
        for _ in range(args.iterations):
            result = engine.run_iteration(class_name, method_name)
            iteration_dicts.append(result.as_dict())
    finally:
        if sink is not None:
            sink.close()
    if args.flight:
        obs.flight.save(args.flight)
    if args.metrics:
        with open(args.metrics, "w") as handle:
            json.dump(
                {
                    "program": args.target,
                    "entry": "%s.%s" % (class_name, method_name),
                    "inliner": args.inliner,
                    "iterations": iteration_dicts,
                    "metrics": obs.metrics.snapshot(),
                },
                handle,
                indent=2,
                default=str,
            )
            handle.write("\n")
    # Normalize through JSON so live and replay reports are identical.
    records = [
        json.loads(json.dumps(record, default=str))
        for record in obs.events.records
    ]
    return (
        records,
        engine.profiles.hottest(args.top),
        obs.metrics.snapshot(),
        obs.timers.snapshot(),
    )


if __name__ == "__main__":
    raise SystemExit(main())
