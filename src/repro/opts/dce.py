"""Dead code elimination: unreachable blocks, dead nodes, block merging.

Branch pruning in the canonicalizer only rewrites terminators; the
passes here do the follow-up structural cleanup. Node deletion is what
produces the paper's *D-tagged* call-tree nodes ("there was a callsite,
but it was deleted by an optimization", §III-A): when a pruned branch
made an invoke unreachable, the corresponding call-tree child is marked
deleted by the expansion bookkeeping.
"""

from repro.ir import nodes as n


def remove_unreachable_blocks(graph):
    """Drop blocks unreachable from the entry; returns removed count."""
    reachable = set(graph.reverse_postorder())
    dead = [block for block in graph.blocks if block not in reachable]
    if not dead:
        return 0
    # First sever edges from dead blocks into live ones (fixing phis).
    for block in dead:
        for succ in list(block.successors()):
            if succ in reachable:
                while block in succ.preds:
                    succ.remove_pred_edge(block)
    # Then drop the dead nodes' def-use links.
    for block in dead:
        for node in list(block.all_nodes()):
            node.clear_inputs()
        for node in list(block.all_nodes()):
            for user in list(node.uses):
                # Live users of dead defs can only be phis whose
                # corresponding edge was just removed, or other dead
                # nodes; sever whatever is left.
                user.replace_input(node, None)
            node.uses.clear()
            node.block = None
        block.phis = []
        block.instrs = []
        block.terminator = None
    graph.blocks = [b for b in graph.blocks if b in reachable]
    return len(dead)


def remove_dead_nodes(graph):
    """Remove pure nodes (and safe allocations) with no uses."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in graph.blocks:
            for node in list(block.instrs):
                if node.uses:
                    continue
                if not _removable(node):
                    continue
                node.clear_inputs()
                block.instrs.remove(node)
                node.block = None
                removed += 1
                changed = True
            for phi in list(block.phis):
                if not phi.uses or phi.uses == {phi}:
                    phi.clear_inputs()
                    block.phis.remove(phi)
                    phi.block = None
                    removed += 1
                    changed = True
    return removed


def _removable(node):
    if node.is_pure:
        return True
    if isinstance(node, n.NewNode):
        return True  # allocation of an unused object is unobservable
    if isinstance(node, n.NewArrayNode):
        length = node.inputs[0].stamp.const
        return length is not None and length >= 0
    return False


def merge_blocks(graph):
    """Merge straight-line block pairs (A→goto→B with B's only pred A)."""
    merged = 0
    changed = True
    while changed:
        changed = False
        for block in list(graph.blocks):
            term = block.terminator
            if not isinstance(term, n.GotoNode):
                continue
            succ = term.target
            if succ is block or len(succ.preds) != 1 or succ.preds[0] is not block:
                continue
            if succ is graph.entry:
                continue
            # Splice: phis in succ have exactly one input.
            for phi in list(succ.phis):
                value = phi.inputs[0]
                graph.replace_uses(phi, value)
                phi.clear_inputs()
                phi.block = None
            succ.phis = []
            term.clear_inputs()
            block.instrs.extend(succ.instrs)
            for node in succ.instrs:
                node.block = block
            block.set_terminator(succ.terminator)
            for nxt in succ.terminator.successors() if succ.terminator else ():
                for index, pred in enumerate(nxt.preds):
                    if pred is succ:
                        nxt.preds[index] = block
            succ.instrs = []
            succ.terminator = None
            succ.preds = []
            graph.blocks.remove(succ)
            merged += 1
            changed = True
    return merged
