# entry: Main.main
# pinned: shift counts are masked to six bits in every executor,
# including counts >= 64 and negative counts flowing from a static.
abstract class Main {
  static field s0: int
  static method main() -> int {
    CONST 64
    PUTSTATIC Main s0
    CONST 1
    GETSTATIC Main s0
    SHL
    CONST 1
    CONST 65
    SHL
    ADD
    CONST -9223372036854775808
    GETSTATIC Main s0
    CONST 1
    ADD
    SHR
    ADD
    RETV
  }
}
