"""Deep inlining trial tests: specialization, N_s counting, child
discovery, polymorphic profiles and node normalization."""

import pytest

from repro.core.calltree import CallNode, NodeKind, make_root
from repro.core.params import InlinerParams
from repro.core.trials import (
    apply_argument_stamps,
    count_concrete_args,
    declared_param_stamps,
    discover_children,
    expand_node,
    normalize_node,
    propagate_deep_trials,
)
from repro.ir import annotate_frequencies, build_graph
from repro.ir import stamps as stm
from repro.jit.compiler import CompileContext
from repro.opts.pipeline import OptimizationPipeline
from tests.helpers import run_static, shapes_program


def _context(program, profiles=None):
    return CompileContext(
        program, profiles, OptimizationPipeline(program), None
    )


def _rooted(program, profiles=None, method=("Main", "run")):
    graph = build_graph(
        program.lookup_method(*method), program, profiles
    )
    annotate_frequencies(graph)
    root = make_root(graph)
    context = _context(program, profiles)
    discover_children(root, context, InlinerParams())
    return root, context


class TestDiscovery:
    def test_child_kinds_without_profiles(self):
        program = shapes_program()
        root, _ = _rooted(program)
        kinds = {}
        for child in root.children:
            kinds.setdefault(child.kind, 0)
            kinds[child.kind] += 1
        # Two static calls to total; cold interface call becomes G
        # (no profile) — but total is called through static invokes.
        assert kinds.get(NodeKind.CUTOFF, 0) == 2

    def test_profiled_interface_becomes_polymorphic(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        root, _ = _rooted(program, interp.profiles, method=("Main", "total"))
        (poly,) = root.children
        assert poly.kind == NodeKind.POLYMORPHIC
        types = {c.receiver_type for c in poly.children}
        assert types == {"Square", "Circle"}
        probabilities = sorted(c.probability for c in poly.children)
        assert probabilities[1] == pytest.approx(0.75)

    def test_low_probability_targets_dropped(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        params = InlinerParams(min_target_probability=0.9)
        graph = build_graph(
            program.lookup_method("Main", "total"), program, interp.profiles
        )
        annotate_frequencies(graph)
        root = make_root(graph)
        discover_children(root, _context(program, interp.profiles), params)
        (child,) = root.children
        assert child.kind == NodeKind.GENERIC  # no target reaches 90%

    def test_native_callee_is_generic(self):
        from repro.bytecode import MethodBuilder

        program = shapes_program()
        b = MethodBuilder("logs", ["int"], "void", is_static=True)
        b.load(0).invokestatic("Builtins", "print").ret()
        program.klass("Main").add_method(b.build())
        root, _ = _rooted(program, method=("Main", "logs"))
        (child,) = root.children
        assert child.kind == NodeKind.GENERIC


class TestSpecialization:
    def test_declared_param_stamps(self):
        program = shapes_program()
        stamps = declared_param_stamps(program.lookup_method("Main", "total"))
        assert stamps[0].type_name == "Shape"
        assert stamps[1] == stm.int_stamp()
        area = declared_param_stamps(program.lookup_method("Square", "area"))
        assert area[0].type_name == "Square" and area[0].non_null

    def test_concrete_arg_counting(self):
        program = shapes_program()
        root, context = _rooted(program)
        totals = [c for c in root.children if c.method.name == "total"]
        # Receiver args are exact allocations; the int arg is a constant:
        # both arguments are strictly more concrete than declared.
        for node in totals:
            assert count_concrete_args(node, program) == 2

    def test_apply_argument_stamps_improves_params(self):
        program = shapes_program()
        root, context = _rooted(program)
        node = [c for c in root.children if c.method.name == "total"][0]
        node.graph = context.build_callee_graph(node.method)
        assert apply_argument_stamps(node, program)
        assert node.graph.params[0].stamp.exact
        assert node.graph.params[1].stamp.is_constant

    def test_expand_node_runs_trial_and_discovers(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        root, context = _rooted(program, interp.profiles)
        node = [c for c in root.children if c.method.name == "total"][0]
        expand_node(node, context, InlinerParams())
        assert node.kind == NodeKind.EXPANDED
        assert node.graph is not None
        # Specializing with an exact Square receiver devirtualizes and
        # exposes the area callsite as a direct cutoff child.
        assert node.children
        (child,) = node.children
        assert child.kind == NodeKind.CUTOFF
        assert child.method.qualified_name == "Square.area"

    def test_shallow_mode_skips_deep_specialization(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        root, context = _rooted(program, interp.profiles)
        node = [c for c in root.children if c.method.name == "total"][0]
        expand_node(node, context, InlinerParams(), deep=False)
        # Root children still specialize even in shallow mode (the
        # baseline specializes "callsites only in the root method").
        assert node.kind == NodeKind.EXPANDED
        grand = node.children[0]
        if grand.kind == NodeKind.CUTOFF:
            expand_node(grand, context, InlinerParams(), deep=False)
            # Deeper nodes do NOT get argument stamps in shallow mode.
            assert all(
                not p.stamp.exact for p in grand.graph.params
            )


class TestPropagation:
    def test_retrial_counts_budgeted(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        root, context = _rooted(program, interp.profiles)
        for child in list(root.children):
            if child.kind == NodeKind.CUTOFF:
                expand_node(child, context, InlinerParams())
        retrials = propagate_deep_trials(root, context, InlinerParams())
        assert retrials >= 0  # bounded and does not crash


class TestNormalization:
    def test_devirtualized_poly_collapses_to_cutoff(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        root, context = _rooted(program, interp.profiles, method=("Main", "total"))
        (poly,) = root.children
        assert poly.kind == NodeKind.POLYMORPHIC
        # Simulate a later canonicalization devirtualizing the callsite.
        poly.invoke.devirtualize(program.lookup_method("Square", "area"))
        normalize_node(poly, context, InlinerParams())
        assert poly.kind == NodeKind.CUTOFF
        assert poly.method.qualified_name == "Square.area"
        assert poly.children == []

    def test_adopts_matching_expanded_child(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        root, context = _rooted(program, interp.profiles, method=("Main", "total"))
        (poly,) = root.children
        square_child = [
            c for c in poly.children if c.receiver_type == "Square"
        ][0]
        expand_node(square_child, context, InlinerParams())
        poly.invoke.devirtualize(program.lookup_method("Square", "area"))
        normalize_node(poly, context, InlinerParams())
        assert poly.kind == NodeKind.EXPANDED
        assert poly.graph is not None

    def test_native_target_becomes_generic(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        root, context = _rooted(program, interp.profiles, method=("Main", "total"))
        (poly,) = root.children
        poly.invoke.devirtualize(program.lookup_method("Builtins", "print"))
        normalize_node(poly, context, InlinerParams())
        assert poly.kind == NodeKind.GENERIC
