"""Guard-based speculation, deoptimization and tiered recompilation.

The core promise under test: a speculative compilation may delete the
megamorphic fallback of a well-predicted callsite, but when the guard
fails the engine must resume in the profiling interpreter with
*identical observable behaviour*, invalidate the code, and recompile
without the refuted speculation — never looping.
"""

import pytest

from tests.helpers import fresh_program, shapes_program, SHAPES_RESULT
from repro.baselines import tuned_inliner
from repro.bytecode import MethodBuilder, verify_program
from repro.bytecode.klass import FieldDef
from repro.bytecode.method import Method
from repro.core.polymorphic import emit_typeswitch
from repro.deopt import SpeculationLog
from repro.interp import Interpreter
from repro.ir import nodes as n
from repro.ir.builder import build_graph
from repro.ir.checker import check_graph
from repro.ir.frequency import annotate_frequencies
from repro.jit.codecache import CodeCache
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.obs import Observability
from repro.obs.report import build_report, render_report
from repro.runtime import VMState


@pytest.fixture(autouse=True)
def _unpinned_speculation(monkeypatch):
    # These tests enable speculation explicitly; a REPRO_SPECULATE=off
    # pin in the environment would turn them into no-ops.
    monkeypatch.delenv("REPRO_SPECULATE", raising=False)


def flip_program():
    """Shapes variant whose receiver distribution is driver-controlled.

    ``Main.drive(kind)`` selects a Square (0) or Circle (1) and routes
    it through a *single* ``Main.total`` callsite — so a Square-only
    warmup builds a monomorphic profile at that site, the compiled
    driver inlines ``total`` and speculates, and ``drive(1)`` then
    refutes the inlined guard (a genuine multi-frame deopt).
    """
    program = fresh_program()
    shape = program.define_class("Shape", is_interface=True)
    shape.add_method(Method("area", [], "int", is_abstract=True))
    square = program.define_class("Square", interfaces=["Shape"])
    square.add_field(FieldDef("side", "int"))
    b = MethodBuilder("area", [], "int")
    b.load(0).getfield("Square", "side")
    b.load(0).getfield("Square", "side").mul().retv()
    square.add_method(b.build())
    circle = program.define_class("Circle", interfaces=["Shape"])
    circle.add_field(FieldDef("r", "int"))
    b = MethodBuilder("area", [], "int")
    b.load(0).getfield("Circle", "r")
    b.load(0).getfield("Circle", "r").mul().const(3).mul().retv()
    circle.add_method(b.build())
    main = program.define_class("Main", is_abstract=True)
    b = MethodBuilder("total", ["Shape", "int"], "int", is_static=True)
    b.load(1).load(0).invokeinterface("Shape", "area").mul().retv()
    main.add_method(b.build())
    b = MethodBuilder("drive", ["int"], "int", is_static=True)
    shape_slot = b.alloc_local()
    use_circle = b.new_label()
    join = b.new_label()
    b.load(0).const(1).eq().if_true(use_circle)
    b.new("Square").dup().const(4).putfield("Square", "side")
    b.store(shape_slot).goto(join)
    b.place(use_circle)
    b.new("Circle").dup().const(3).putfield("Circle", "r")
    b.store(shape_slot)
    b.place(join)
    b.load(shape_slot).const(2).invokestatic("Main", "total").retv()
    main.add_method(b.build())
    verify_program(program)
    return program


def speculative_engine(program, obs=None, **config_kw):
    # size_factor=1.0 makes the inliner aggressive enough to inline
    # Main.total (and the guard inside it) into the compiled driver.
    config_kw.setdefault("hot_threshold", 4)
    config = JitConfig(speculate=True, **config_kw)
    return Engine(program, config, tuned_inliner(1.0), obs=obs)


# ---------------------------------------------------------------------------
# The Figure 1 shape: monomorphic speculation deletes the fallback.
# ---------------------------------------------------------------------------


def monomorphic_total_graph():
    """Main.total built speculatively under a Square-only profile."""
    program = shapes_program()
    vm = VMState(program)
    interp = Interpreter(vm)
    # Monomorphic warmup: area() only ever sees Squares.
    for _ in range(20):
        interp.call_static("Main", "total", (vm.allocate("Square"), 2))
    method = program.lookup_method("Main", "total")
    graph = build_graph(method, program, interp.profiles, speculate=True)
    annotate_frequencies(graph)
    return program, graph


def test_monomorphic_guard_form_has_no_fallback():
    program, graph = monomorphic_total_graph()
    invoke = next(
        x
        for b in graph.blocks
        for x in b.instrs
        if isinstance(x, n.InvokeNode)
    )
    assert invoke.frames, "speculative build must capture frame state"
    target = program.lookup_method("Square", "area")
    emit_typeswitch(
        graph, invoke, [("Square", 1.0, target)], program, speculate=True
    )
    check_graph(graph)
    # Straight-line: the guard replaces the virtual dispatch in place —
    # no CFG split, no merge phi, and *no* virtual fallback arm.
    assert len(graph.blocks) == 1
    kinds = [type(x) for b in graph.blocks for x in b.instrs]
    assert kinds.count(n.GuardNode) == 1
    remaining = [
        x
        for b in graph.blocks
        for x in b.instrs
        if isinstance(x, n.InvokeNode)
    ]
    assert [x.kind for x in remaining] == ["direct"]
    assert not any(b.phis for b in graph.blocks)


def test_speculative_typeswitch_requires_frame_state():
    program = shapes_program()
    method = program.lookup_method("Main", "total")
    vm = VMState(program)
    interp = Interpreter(vm)
    interp.call_static("Main", "run", ())
    graph = build_graph(method, program, interp.profiles)  # no state
    annotate_frequencies(graph)
    invoke = next(
        x
        for b in graph.blocks
        for x in b.instrs
        if isinstance(x, n.InvokeNode)
    )
    target = program.lookup_method("Square", "area")
    from repro.errors import IRError

    with pytest.raises(IRError):
        emit_typeswitch(
            graph, invoke, [("Square", 1.0, target)], program, speculate=True
        )


def test_bimorphic_speculation_ends_in_deopt_terminator():
    program = shapes_program()
    vm = VMState(program)
    interp = Interpreter(vm)
    interp.call_static("Main", "run", ())
    method = program.lookup_method("Main", "total")
    graph = build_graph(method, program, interp.profiles, speculate=True)
    annotate_frequencies(graph)
    invoke = next(
        x
        for b in graph.blocks
        for x in b.instrs
        if isinstance(x, n.InvokeNode)
    )
    targets = [
        ("Square", 0.75, program.lookup_method("Square", "area")),
        ("Circle", 0.25, program.lookup_method("Circle", "area")),
    ]
    emit_typeswitch(graph, invoke, targets, program, speculate=True)
    check_graph(graph)
    deopts = [
        b.terminator
        for b in graph.blocks
        if isinstance(b.terminator, n.DeoptNode)
    ]
    assert len(deopts) == 1
    assert deopts[0].frames
    virtuals = [
        x
        for b in graph.blocks
        for x in b.instrs
        if isinstance(x, n.InvokeNode) and x.kind in ("virtual", "interface")
    ]
    assert virtuals == []


# ---------------------------------------------------------------------------
# The real thing: a profile flip executes a deopt end to end.
# ---------------------------------------------------------------------------


def test_profile_flip_executes_real_deopt():
    program = flip_program()
    obs = Observability()
    engine = speculative_engine(program, obs=obs)
    for _ in range(10):
        assert engine.call("Main", "drive", [0]) == 2 * 16
    drive = program.lookup_method("Main", "drive")
    assert drive in engine.code_cache, "warmup must compile the driver"
    assert engine.deopt_count == 0

    # The flip: the compiled guard sees a Circle, fails, and the frame
    # resumes in the interpreter with the correct (circle) answer.
    assert engine.call("Main", "drive", [1]) == 2 * 27
    assert engine.deopt_count == 1
    assert engine.invalidation_count == 1
    assert drive not in engine.code_cache, "deopt must invalidate"
    # The refuted site is logged against the inlined callee's bci.
    (site, reason), = engine.speculation_log.entries()
    assert site[0] == "Main.total"
    assert reason == "monomorphic-receiver"

    # Recompilation (same hotness, next dispatch) must not repeat the
    # refuted speculation: further flips run deopt-free.
    for _ in range(5):
        assert engine.call("Main", "drive", [1]) == 2 * 27
        assert engine.call("Main", "drive", [0]) == 2 * 16
    assert engine.deopt_count == 1
    assert drive in engine.code_cache, "must recompile without the guess"

    # Metrics and stats attribution.
    snapshot = obs.metrics.snapshot()
    assert snapshot["deopt.taken"]["value"] == 1
    assert snapshot["deopt.reasons.monomorphic-receiver"]["value"] == 1
    assert snapshot["jit.invalidations"]["value"] == 1
    report = build_report(obs.events.records)
    assert len(report["deopts"]) == 1
    assert report["deopts"][0]["reason"] == "monomorphic-receiver"
    assert report["invalidations"] == ["Main.drive"]
    text = render_report(report, metrics_snapshot=snapshot)
    assert "deoptimizations (1)" in text
    assert "monomorphic-receiver" in text


def test_deopt_limit_disables_speculation_in_root():
    program = flip_program()
    engine = speculative_engine(program, speculation_deopt_limit=1)
    for _ in range(10):
        engine.call("Main", "drive", [0])
    engine.call("Main", "drive", [1])
    assert engine.deopt_count == 1
    assert engine.speculation_log.is_disabled("Main.drive")


def test_bounded_recompilation_no_deopt_loops():
    # Alternating receivers forever: the first deopt refutes the site,
    # so the deopt count stays bounded no matter how long we run.
    program = flip_program()
    engine = speculative_engine(program)
    for i in range(60):
        kind = i % 2
        expected = 2 * 27 if kind else 2 * 16
        assert engine.call("Main", "drive", [kind]) == expected
    assert engine.deopt_count <= 2
    assert engine.compilation_count <= 6


def test_env_off_pins_speculation(monkeypatch):
    monkeypatch.setenv("REPRO_SPECULATE", "off")
    assert JitConfig(speculate=True).speculation_enabled() is False
    program = flip_program()
    engine = speculative_engine(program)
    for _ in range(10):
        engine.call("Main", "drive", [0])
    assert engine.call("Main", "drive", [1]) == 2 * 27
    assert engine.deopt_count == 0, "pinned-off runs never deopt"


def test_env_on_enables_default_config(monkeypatch):
    monkeypatch.setenv("REPRO_SPECULATE", "on")
    assert JitConfig().speculation_enabled() is True
    monkeypatch.delenv("REPRO_SPECULATE")
    assert JitConfig().speculation_enabled() is False
    assert JitConfig(speculate=True).speculation_enabled() is True


# ---------------------------------------------------------------------------
# Differential: speculation must not change observable behaviour.
# ---------------------------------------------------------------------------


def test_speculative_shapes_run_matches_reference():
    program = shapes_program()
    engine = speculative_engine(program, hot_threshold=2)
    for _ in range(6):
        assert engine.run_iteration("Main", "run").value == SHAPES_RESULT


def test_differential_speculate_on_vs_off():
    for kind in (0, 1):
        values_by_mode = {}
        for speculate in (False, True):
            program = flip_program()
            config = JitConfig(hot_threshold=4, speculate=speculate)
            engine = Engine(program, config, tuned_inliner(0.1))
            values = [engine.call("Main", "drive", [0]) for _ in range(10)]
            values += [engine.call("Main", "drive", [kind]) for _ in range(10)]
            values_by_mode[speculate] = (values, list(engine.vm.output))
        assert values_by_mode[False] == values_by_mode[True]


# ---------------------------------------------------------------------------
# Speculation log unit behaviour.
# ---------------------------------------------------------------------------


def test_speculation_log_records_and_disables():
    log = SpeculationLog()
    assert not log.refuted(("M.f", 3))
    log.record(("M.f", 3), "monomorphic-receiver")
    assert log.refuted(("M.f", 3))
    assert not log.refuted(("M.f", 4))
    assert len(log) == 1
    log.disable("M.f")
    assert log.is_disabled("M.f")
    assert not log.is_disabled("M.g")
    assert log.entries() == [(("M.f", 3), "monomorphic-receiver")]


# ---------------------------------------------------------------------------
# Satellite (a): CodeCache reinstall accounting.
# ---------------------------------------------------------------------------


class _FakeCode:
    def __init__(self, size):
        self.size = size


def test_codecache_reinstall_accounting():
    obs = Observability()
    cache = CodeCache(obs=obs)

    class M:
        qualified_name = "T.m"

    method = M()
    cache.install(method, _FakeCode(100))
    assert (cache.install_count, cache.reinstalls) == (1, 0)
    assert cache.total_size == 100

    # Reinstall with *smaller* code: the size delta is legitimately
    # negative, and the accounting splits reinstalls out.
    cache.install(method, _FakeCode(60))
    assert (cache.install_count, cache.reinstalls) == (2, 1)
    assert cache.total_size == 60
    assert cache.install_count - cache.reinstalls == 1  # distinct installs

    cache.evict(method)
    assert cache.total_size == 0
    cache.install(method, _FakeCode(70))
    # Install after evict is a fresh install, not a reinstall.
    assert (cache.install_count, cache.reinstalls) == (3, 1)
    snapshot = obs.metrics.snapshot()
    assert snapshot["codecache.installs"]["value"] == 3
    assert snapshot["codecache.reinstalls"]["value"] == 1
