"""batik — SVG rasterization.

batik renders vector shapes. We model the hot inner phase: rasterizing
a shape list (rectangles, circles, triangles) into a coverage grid with
fixed-point arithmetic. The shape loop is polymorphic; the per-pixel
math is small leaf methods that only pay off when inlined into the
scanline loop.
"""

DESCRIPTION = "fixed-point shape rasterization into a coverage grid"
ITERATIONS = 12

SOURCE = """
trait Shape {
  def covers(x: int, y: int): bool;
  def bboxLo(): int;
  def bboxHi(): int;
}

class Rect implements Shape {
  var x0: int; var y0: int; var x1: int; var y1: int;
  def init(x0: int, y0: int, x1: int, y1: int): void {
    this.x0 = x0; this.y0 = y0; this.x1 = x1; this.y1 = y1;
  }
  def covers(x: int, y: int): bool {
    return x >= this.x0 && x < this.x1 && y >= this.y0 && y < this.y1;
  }
  def bboxLo(): int { return this.y0; }
  def bboxHi(): int { return this.y1; }
}

class Circle implements Shape {
  var cx: int; var cy: int; var r: int;
  def init(cx: int, cy: int, r: int): void {
    this.cx = cx; this.cy = cy; this.r = r;
  }
  def covers(x: int, y: int): bool {
    var dx: int = x - this.cx;
    var dy: int = y - this.cy;
    return dx * dx + dy * dy <= this.r * this.r;
  }
  def bboxLo(): int { return this.cy - this.r; }
  def bboxHi(): int { return this.cy + this.r; }
}

class Tri implements Shape {
  var ax: int; var ay: int; var size: int;
  def init(ax: int, ay: int, size: int): void {
    this.ax = ax; this.ay = ay; this.size = size;
  }
  def covers(x: int, y: int): bool {
    var dx: int = x - this.ax;
    var dy: int = y - this.ay;
    return dx >= 0 && dy >= 0 && dx + dy <= this.size;
  }
  def bboxLo(): int { return this.ay; }
  def bboxHi(): int { return this.ay + this.size; }
}

object Main {
  static var shapes: ArraySeq;

  def setup(): void {
    var shapes: ArraySeq = new ArraySeq(8);
    var i: int = 0;
    while (i < 4) {
      shapes.add(new Rect(i * 5, i * 3, i * 5 + 12, i * 3 + 9));
      shapes.add(new Circle(20 + i * 4, 30 + i * 2, 5 + (i % 3)));
      shapes.add(new Tri(i * 6, 40 - i * 2, 8 + i));
      i = i + 1;
    }
    Main.shapes = shapes;
  }

  def run(): int {
    if (Main.shapes == null) { Main.setup(); }
    var coverage: int = 0;
    var s: int = 0;
    while (s < Main.shapes.length()) {
      var shape: Shape = Main.shapes.get(s) as Shape;
      var lo: int = shape.bboxLo();
      var hi: int = shape.bboxHi();
      if (lo < 0) { lo = 0; }
      if (hi > 28) { hi = 28; }
      var y: int = lo;
      while (y < hi) {
        var x: int = 0;
        while (x < 28) {
          if (shape.covers(x, y)) { coverage = coverage + 1; }
          x = x + 1;
        }
        y = y + 1;
      }
      s = s + 1;
    }
    return coverage;
  }
}
"""
