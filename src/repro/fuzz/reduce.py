"""Greedy delta-debugging shrinker for diverging fuzz cases.

Cases expose ``shrink_candidates()`` — an iterator of strictly smaller
copies of themselves (statement deletion, branch flattening, loop
trip-count reduction, expression simplification; see the generator).
The shrinker walks candidates greedily: the first candidate that still
*diverges the same way* becomes the new current case and the walk
restarts from it.  When a full pass over the candidates yields nothing,
the case is 1-minimal with respect to the candidate moves and we stop.

Candidates that fail to build (the mutation broke verification or the
minij type checker) are skipped silently — the generator's moves are
conservative, but e.g. deleting the assignment that makes a cast safe
can turn a value divergence into a build error.
"""

from repro.fuzz.oracle import DEFAULT_ITERATIONS, check_program

#: Hard cap on oracle invocations per shrink; keeps pathological cases
#: from stalling a campaign.  Each check is ~10 engine runs.
DEFAULT_BUDGET = 400


def _same_bug(old, new):
    """Is *new* plausibly the same divergence as *old*?

    Shrinking to *any* divergence risks chasing a different (easier)
    bug; demanding exact equality of values is too strict because the
    values legitimately change as the program shrinks.  The middle
    ground: same comparison kind, and for outcome divergences the same
    outcome *category* pair (value/trap/crash on each side).
    """
    if new is None:
        return False
    if old.kind != new.kind:
        return False
    if old.kind == "outcome":
        return (old.expected[0], old.actual[0]) == (
            new.expected[0],
            new.actual[0],
        )
    return True


def shrink_case(
    case,
    divergence,
    config_names=None,
    iterations=DEFAULT_ITERATIONS,
    vm_seed=0x5EED,
    budget=DEFAULT_BUDGET,
):
    """Minimize *case* while it still reproduces *divergence*.

    Returns ``(smallest case, its divergence, oracle checks spent)``.
    The original *divergence* must have come from running *case*
    through :func:`~repro.fuzz.oracle.check_program` with the same
    parameters.
    """
    names = [divergence.config] if config_names is None else config_names
    current = case
    current_div = divergence
    checks = 0
    improved = True
    while improved and checks < budget:
        improved = False
        for candidate in current.shrink_candidates():
            if checks >= budget:
                break
            try:
                program, entry = candidate.build()
            except Exception:
                continue  # invalid mutation; skip
            checks += 1
            found = check_program(
                program, entry, names, iterations, vm_seed
            )
            if _same_bug(current_div, found):
                current = candidate
                current_div = found
                improved = True
                break  # restart candidate enumeration from the new case
    return current, current_div, checks
