"""Installed-code bookkeeping.

Tracks compiled machine code per method and the total installed size —
the quantity the paper reports in Figure 10 and Table I, and the input
to the instruction-cache pressure model.
"""


class CodeCache:
    """Mapping from methods to installed machine code."""

    def __init__(self):
        self._code = {}
        self.total_size = 0
        self.install_count = 0

    def get(self, method):
        return self._code.get(method)

    def __contains__(self, method):
        return method in self._code

    def install(self, method, code):
        previous = self._code.get(method)
        if previous is not None:
            self.total_size -= previous.size
        self._code[method] = code
        self.total_size += code.size
        self.install_count += 1

    def installed_methods(self):
        return list(self._code)

    def size_of(self, method):
        code = self._code.get(method)
        return code.size if code is not None else 0

    def __len__(self):
        return len(self._code)
