"""Runtime object model and VM state shared by interpreter and compiled code.

The runtime owns what is *dynamic* about a program: heap objects, static
field storage, the intrinsic ("native") method table, and the
deterministic PRNG that benchmark programs use for reproducible inputs.
"""

from repro.runtime.values import ObjRef, ArrayRef, default_value, NULL
from repro.runtime.vmstate import VMState
from repro.runtime.intrinsics import install_builtins, BUILTINS_CLASS

__all__ = [
    "ObjRef",
    "ArrayRef",
    "default_value",
    "NULL",
    "VMState",
    "install_builtins",
    "BUILTINS_CLASS",
]
