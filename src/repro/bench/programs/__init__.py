"""The benchmark programs, one module per paper benchmark.

Each module defines:

- ``SOURCE`` — the minij program; entry point ``Main.run(): int``
  returning a checksum (used to cross-validate configurations);
- ``DESCRIPTION`` — what workload shape of the namesake it models;
- ``ITERATIONS`` — measured repetitions per VM instance (chosen per
  benchmark so the steady state is reached well before the window the
  protocol averages, exactly as the paper chooses repetitions per
  benchmark);
- optionally ``make_jit_config`` — per-benchmark VM settings.

Workload sizes are chosen so a steady-state iteration executes tens of
thousands of guest operations: large enough for profiles and tier
transitions to behave realistically, small enough that the full
evaluation matrix runs on a laptop.
"""
