"""scalaxb — XML data binding (Scala).

scalaxb turns XML into typed case-class-like records via generated
builder code. We model unmarshalling: walking an element tree, pulling
typed fields through per-type binder objects, and validating. The paper
notes the 1-by-1 inlining policy is ≈24% slower than clustering here —
the binder helpers only pay off as a group.
"""

DESCRIPTION = "XML-to-record unmarshalling through per-type binders"
ITERATIONS = 14

SOURCE = """
class Element {
  var tag: int;
  var value: int;
  var children: ArraySeq;
  def init(tag: int, value: int): void {
    this.tag = tag; this.value = value; this.children = new ArraySeq(2);
  }
  def child(tag: int): Element {
    var i: int = 0;
    while (i < this.children.length()) {
      var e: Element = this.children.get(i) as Element;
      if (e.tag == tag) { return e; }
      i = i + 1;
    }
    return null;
  }
}

class Address {
  var street: int;
  var city: int;
  var zip: int;
}

class Person {
  var id: int;
  var age: int;
  var address: Address;
}

trait Binder {
  def bind(e: Element): Object;
}

class AddressBinder implements Binder {
  def bind(e: Element): Object {
    var a: Address = new Address();
    a.street = Main.intField(e, 1, 0);
    a.city = Main.intField(e, 2, 0);
    a.zip = Main.intField(e, 3, 10000);
    return a;
  }
}

class PersonBinder implements Binder {
  var addressBinder: Binder;
  def init(ab: Binder): void { this.addressBinder = ab; }
  def bind(e: Element): Object {
    var p: Person = new Person();
    p.id = Main.intField(e, 4, 0 - 1);
    p.age = Main.intField(e, 5, 0);
    var addr: Element = e.child(6);
    if (addr != null) { p.address = this.addressBinder.bind(addr) as Address; }
    return p;
  }
}

object Main {
  static var doc: ArraySeq;
  static var binder: Binder;

  @inline def intField(e: Element, tag: int, dflt: int): int {
    var c: Element = e.child(tag);
    if (c == null) { return dflt; }
    return c.value;
  }

  def makePerson(seed: int): Element {
    var p: Element = new Element(0, 0);
    p.children.add(new Element(4, seed));
    p.children.add(new Element(5, 20 + seed % 60));
    var addr: Element = new Element(6, 0);
    addr.children.add(new Element(1, seed * 3));
    addr.children.add(new Element(2, seed % 50));
    addr.children.add(new Element(3, 10000 + seed));
    p.children.add(addr);
    return p;
  }

  def setup(): void {
    var doc: ArraySeq = new ArraySeq(32);
    var i: int = 0;
    while (i < 60) { doc.add(Main.makePerson(i)); i = i + 1; }
    Main.doc = doc;
    Main.binder = new PersonBinder(new AddressBinder());
  }

  def run(): int {
    if (Main.doc == null) { Main.setup(); }
    var check: int = 0;
    var pass: int = 0;
    while (pass < 2) {
      var i: int = 0;
      while (i < Main.doc.length()) {
        var e: Element = Main.doc.get(i) as Element;
        var p: Person = Main.binder.bind(e) as Person;
        check = check + p.id + p.age;
        if (p.address != null) { check = check + p.address.zip % 97; }
        i = i + 1;
      }
      pass = pass + 1;
    }
    return check;
  }
}
"""
