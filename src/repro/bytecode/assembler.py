"""A line-oriented text assembler for the bytecode ISA.

The format mirrors the disassembler's output closely, with symbolic
labels instead of raw indices::

    class Counter extends Object implements Steppable {
      field value: int
      method step(int) -> int {
        LOAD 0
        GETFIELD Counter value
        LOAD 1
        ADD
        STORE 2
        LOAD 0
        LOAD 2
        PUTFIELD Counter value
        LOAD 2
        RETV
      }
    }

Branches name a label (``IF loop`` / ``GOTO done``); a label is declared
by a line of the form ``loop:``. Abstract methods are declared with
``abstract method name(int, Foo) -> int`` and no body.

The assembler exists mainly for tests and low-level examples — the minij
front end is the usual way programs enter the system.
"""

import re

from repro.bytecode.instr import Instr
from repro.bytecode.klass import ClassDef, FieldDef
from repro.bytecode.method import Method
from repro.bytecode.opcodes import ALL_OPS, BRANCH_OPS, Op
from repro.bytecode.program import Program
from repro.errors import BytecodeError

_CLASS_RE = re.compile(
    r"^(?P<abstract>abstract\s+)?(?P<kind>class|interface)\s+(?P<name>\w+)"
    r"(?:\s+extends\s+(?P<super>\w+))?"
    r"(?:\s+implements\s+(?P<impls>[\w,\s]+))?\s*\{$"
)
_FIELD_RE = re.compile(
    r"^(?P<static>static\s+)?field\s+(?P<name>\w+)\s*:\s*(?P<type>[\w\[\]]+)$"
)
_METHOD_RE = re.compile(
    r"^(?P<mods>(?:static\s+|abstract\s+)*)method\s+(?P<name>\w+)"
    r"\((?P<params>[\w\[\],\s]*)\)\s*->\s*(?P<ret>[\w\[\]]+)\s*(?P<open>\{)?$"
)
_LABEL_RE = re.compile(r"^(?P<name>\w+):$")


def _strip(line):
    comment = line.find("#")
    if comment >= 0:
        line = line[:comment]
    return line.strip()


def assemble_method(lines, name, param_types, return_type, is_static=False):
    """Assemble a method body from instruction lines (used by tests)."""
    body, labels = _collect_body(lines)
    code = _resolve(body, labels)
    max_locals = _scan_locals(code, param_types, is_static)
    return Method(
        name,
        param_types,
        return_type,
        code=code,
        is_static=is_static,
        max_locals=max_locals,
    )


def _collect_body(lines):
    """Split body lines into raw instructions and a label table."""
    body = []
    labels = {}
    for raw in lines:
        line = _strip(raw)
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group("name")
            if label in labels:
                raise BytecodeError("duplicate label %r" % label)
            labels[label] = len(body)
            continue
        body.append(line)
    return body, labels


def _resolve(body, labels):
    code = []
    for line in body:
        parts = line.split()
        op = parts[0]
        if op not in ALL_OPS:
            raise BytecodeError("unknown opcode %r in %r" % (op, line))
        args = parts[1:]
        if op in BRANCH_OPS:
            target = labels.get(args[0])
            if target is None:
                raise BytecodeError("unknown label %r" % args[0])
            code.append(Instr(op, target))
        elif op == Op.CONST:
            code.append(Instr(op, int(args[0])))
        elif op in (Op.LOAD, Op.STORE):
            code.append(Instr(op, int(args[0])))
        else:
            code.append(Instr(op, *args))
    return code


def _scan_locals(code, param_types, is_static):
    base = (0 if is_static else 1) + len(param_types)
    top = base
    for instr in code:
        if instr.op in (Op.LOAD, Op.STORE):
            top = max(top, instr.args[0] + 1)
    return top


def assemble_program(text):
    """Assemble a full program from its textual form."""
    program = Program()
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = _strip(lines[index])
        index += 1
        if not line:
            continue
        match = _CLASS_RE.match(line)
        if not match:
            raise BytecodeError("expected class declaration, got %r" % line)
        impls = match.group("impls")
        klass = ClassDef(
            match.group("name"),
            superclass=match.group("super") or "Object",
            interfaces=[s.strip() for s in impls.split(",")] if impls else (),
            is_interface=match.group("kind") == "interface",
            is_abstract=bool(match.group("abstract")),
        )
        index = _assemble_class_body(lines, index, klass)
        if klass.name == "Object":
            program.classes["Object"] = klass
        else:
            program.add_class(klass)
    return program


def _assemble_class_body(lines, index, klass):
    while True:
        if index >= len(lines):
            raise BytecodeError("unterminated class %s" % klass.name)
        line = _strip(lines[index])
        index += 1
        if not line:
            continue
        if line == "}":
            return index
        field_match = _FIELD_RE.match(line)
        if field_match:
            klass.add_field(
                FieldDef(
                    field_match.group("name"),
                    field_match.group("type"),
                    is_static=bool(field_match.group("static")),
                )
            )
            continue
        method_match = _METHOD_RE.match(line)
        if method_match:
            index = _assemble_class_method(lines, index, klass, method_match)
            continue
        raise BytecodeError("unexpected line in class body: %r" % line)


def _assemble_class_method(lines, index, klass, match):
    mods = match.group("mods") or ""
    is_static = "static" in mods
    is_abstract = "abstract" in mods
    params_text = match.group("params").strip()
    params = (
        [p.strip() for p in params_text.split(",")] if params_text else []
    )
    name = match.group("name")
    if is_abstract:
        if match.group("open"):
            raise BytecodeError("abstract method %s has a body" % name)
        klass.add_method(
            Method(
                name,
                params,
                match.group("ret"),
                is_static=is_static,
                is_abstract=True,
            )
        )
        return index
    if not match.group("open"):
        raise BytecodeError("method %s missing body" % name)
    body_lines = []
    while True:
        if index >= len(lines):
            raise BytecodeError("unterminated method %s" % name)
        line = _strip(lines[index])
        index += 1
        if line == "}":
            break
        body_lines.append(line)
    klass.add_method(
        assemble_method(body_lines, name, params, match.group("ret"), is_static)
    )
    return index
