"""End-to-end tests of the incremental inliner and its phases."""

import pytest

from repro.bytecode import MethodBuilder
from repro.core import IncrementalInliner, InlinerParams
from repro.core.calltree import NodeKind
from repro.ir import annotate_frequencies, build_graph, check_graph
from repro.ir import nodes as n
from repro.jit.compiler import CompileContext
from repro.opts.pipeline import OptimizationPipeline
from tests.execution import execute_graph
from tests.helpers import SHAPES_RESULT, fresh_program, run_static, shapes_program


def _prepare(program, method=("Main", "run")):
    _, _, interp = run_static(program, "Main", "run")
    graph = build_graph(
        program.lookup_method(*method), program, interp.profiles
    )
    annotate_frequencies(graph)
    context = CompileContext(
        program, interp.profiles, OptimizationPipeline(program), None
    )
    return graph, context


class TestEndToEnd:
    def test_inlines_and_preserves_semantics(self):
        program = shapes_program()
        graph, context = _prepare(program)
        inliner = IncrementalInliner(InlinerParams.scaled(0.1))
        report = inliner.run(graph, context)
        check_graph(graph, program)
        assert report.inline_count > 0
        result, _ = execute_graph(graph, program)
        assert result == SHAPES_RESULT

    def test_typeswitch_emitted_for_polymorphic_callsite(self):
        program = shapes_program()
        graph, context = _prepare(program, method=("Main", "total"))
        inliner = IncrementalInliner(InlinerParams.scaled(0.1))
        report = inliner.run(graph, context)
        check_graph(graph, program)
        assert report.typeswitch_count == 1
        exact_checks = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.InstanceOfNode) and x.exact
        ]
        assert exact_checks
        # A virtual fallback call must remain.
        fallbacks = [i for i in graph.invokes() if i.is_dispatched]
        assert fallbacks

    def test_typeswitch_semantics(self):
        from repro.runtime import VMState
        from repro.interp import Interpreter

        program = shapes_program()
        graph, context = _prepare(program, method=("Main", "total"))
        IncrementalInliner(InlinerParams.scaled(0.1)).run(graph, context)
        vm = VMState(program)
        square = vm.allocate("Square")
        square.fields["side"] = 6
        circle = vm.allocate("Circle")
        circle.fields["r"] = 2
        for receiver, expected in [(square, 72), (circle, 24)]:
            result, _ = execute_graph(graph, program, [receiver, 2], vm=vm)
            assert result == expected

    def test_report_fields(self):
        program = shapes_program()
        graph, context = _prepare(program)
        report = IncrementalInliner(InlinerParams.scaled(0.1)).run(graph, context)
        assert report.rounds >= 1
        assert report.final_root_size == graph.node_count()
        assert report.explored_nodes > 0
        assert "Main.total" in report.inlined_methods

    def test_recursive_method_terminates(self):
        program = fresh_program()
        holder = program.define_class("R", is_abstract=True)
        b = MethodBuilder("fact", ["int"], "int", is_static=True)
        rec = b.new_label()
        b.load(0).const(2).ge().if_true(rec)
        b.const(1).retv()
        b.place(rec).load(0)
        b.load(0).const(1).sub().invokestatic("R", "fact")
        b.mul().retv()
        holder.add_method(b.build())
        b = MethodBuilder("run", [], "int", is_static=True)
        b.const(10).invokestatic("R", "fact").retv()
        holder.add_method(b.build())
        from tests.helpers import run_static as rs

        _, _, interp = rs(program, "R", "run")
        graph = build_graph(program.lookup_method("R", "run"), program, interp.profiles)
        annotate_frequencies(graph)
        context = CompileContext(
            program, interp.profiles, OptimizationPipeline(program), None
        )
        report = IncrementalInliner(InlinerParams.scaled(0.1)).run(graph, context)
        check_graph(graph, program)
        result, _ = execute_graph(graph, program)
        assert result == 3628800
        # Recursion must not explode the graph.
        assert graph.node_count() < 400

    def test_root_size_bailout(self):
        program = shapes_program()
        graph, context = _prepare(program)
        params = InlinerParams.scaled(0.1)
        params.max_root_size = graph.node_count() + 1
        report = IncrementalInliner(params).run(graph, context)
        assert report.final_root_size <= params.max_root_size + 50

    def test_never_inline_respected(self):
        program = shapes_program()
        program.lookup_method("Main", "total").never_inline = True
        try:
            graph, context = _prepare(program)
            report = IncrementalInliner(InlinerParams.scaled(0.1)).run(
                graph, context
            )
            assert "Main.total" not in report.inlined_methods
            remaining = [i for i in graph.invokes() if i.method_name == "total"]
            assert len(remaining) == 2
        finally:
            program.lookup_method("Main", "total").never_inline = False


class TestAblationKnobs:
    def test_fixed_expansion_threshold_limits_tree(self):
        program = shapes_program()
        graph, context = _prepare(program)
        tiny = IncrementalInliner(
            InlinerParams.scaled(0.1), adaptive_expansion=False, fixed_te=1
        )
        report = tiny.run(graph, context)
        assert report.expansions == 0

    def test_fixed_inline_threshold_limits_growth(self):
        program = shapes_program()
        graph, context = _prepare(program)
        before = graph.node_count()
        frozen = IncrementalInliner(
            InlinerParams.scaled(0.1), adaptive_inlining=False, fixed_ti=1
        )
        report = frozen.run(graph, context)
        assert report.inline_count == 0
        assert graph.node_count() == before

    def test_one_by_one_still_correct(self):
        program = shapes_program()
        graph, context = _prepare(program)
        inliner = IncrementalInliner(InlinerParams.scaled(0.1), clustering=False)
        inliner.run(graph, context)
        check_graph(graph, program)
        result, _ = execute_graph(graph, program)
        assert result == SHAPES_RESULT

    def test_shallow_trials_still_correct(self):
        program = shapes_program()
        graph, context = _prepare(program)
        inliner = IncrementalInliner(InlinerParams.scaled(0.1), deep_trials=False)
        inliner.run(graph, context)
        check_graph(graph, program)
        result, _ = execute_graph(graph, program)
        assert result == SHAPES_RESULT


class TestFrequencyRefresh:
    def test_refresh_assigns_root_relative_frequencies(self):
        from repro.core.inliner import refresh_frequencies
        from repro.core.calltree import make_root
        from repro.core.trials import discover_children

        program = shapes_program()
        graph, context = _prepare(program)
        root = make_root(graph)
        discover_children(root, context, InlinerParams())
        refresh_frequencies(root)
        for child in root.children:
            if child.kind != NodeKind.DELETED:
                assert child.frequency == pytest.approx(child.invoke.frequency)
