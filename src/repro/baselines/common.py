"""Shared machinery for the baseline inliners."""

from repro.core.polymorphic import emit_typeswitch
from repro.ir import stamps as st


def inline_direct_call(graph, invoke, context, report=None):
    """Inline a resolved direct/static/special call in place.

    Builds a fresh callee graph, injects the argument stamps (even the
    greedy baselines get basic callsite specialization — both C2 and
    open-source Graal do) and substitutes it. Returns the callee graph's
    node count.
    """
    target = invoke.target
    callee = context.build_callee_graph(target)
    for param, arg in zip(callee.params, invoke.inputs):
        joined = param.stamp.join(arg.stamp, context.program)
        if joined.kind != st.Stamp.BOTTOM:
            param.stamp = joined
    size = callee.node_count()
    graph.inline_call(invoke, callee)
    if report is not None:
        report.inline_count += 1
        report.inlined_methods.append(target.qualified_name)
        report.explored_nodes += size
    return size


def speculate_dispatch(graph, invoke, context, max_targets, min_probability,
                       report=None):
    """Devirtualize a dispatched call through a profile typeswitch.

    Returns the list of direct invokes created (empty when the profile
    is unusable).
    """
    profile = [
        (type_name, probability)
        for type_name, probability in invoke.receiver_types
        if probability >= min_probability
    ][:max_targets]
    if not profile:
        return []
    targets = []
    for type_name, probability in profile:
        try:
            method = context.program.resolve_method(
                type_name, invoke.method_name
            )
        except Exception:
            continue
        if method.is_abstract:
            continue
        targets.append((type_name, probability, method))
    if not targets:
        return []
    arms = emit_typeswitch(graph, invoke, targets, context.program)
    if report is not None:
        report.typeswitch_count += 1
    return list(arms.values())
