"""Textual IR dumps for debugging and golden tests."""

from repro.ir import nodes as n


def _operand(node):
    if node is None:
        return "_"
    return "v%d" % node.id


def format_node(node):
    inputs = ", ".join(_operand(i) for i in node.inputs)
    label = node.brief()
    if isinstance(node, n.IfNode):
        return "If v%d ? B%d : B%d (p=%.3f)" % (
            node.inputs[0].id,
            node.true_block.id,
            node.false_block.id,
            node.probability,
        )
    if isinstance(node, n.GotoNode):
        return "Goto B%d" % node.target.id
    if isinstance(node, n.ReturnNode):
        value = node.value()
        return "Return" + ((" " + _operand(value)) if value is not None else "")
    text = "v%d = %s" % (node.id, label)
    if inputs:
        text += "(%s)" % inputs
    text += "  :: %s" % (node.stamp,)
    return text


def format_graph(graph, include_frequency=False):
    """Render *graph* as readable text, one node per line."""
    lines = ["graph %s" % graph.name]
    if graph.params:
        lines.append(
            "  params: "
            + ", ".join("v%d :: %s" % (p.id, p.stamp) for p in graph.params)
        )
    for block in graph.blocks:
        preds = ", ".join("B%d" % p.id for p in block.preds)
        header = "  B%d" % block.id
        if preds:
            header += "  <- " + preds
        if include_frequency:
            header += "  (f=%.2f)" % block.frequency
        lines.append(header)
        for phi in block.phis:
            inputs = ", ".join(_operand(i) for i in phi.inputs)
            lines.append(
                "    v%d = Phi(%s)  :: %s" % (phi.id, inputs, phi.stamp)
            )
        for node in block.instrs:
            lines.append("    " + format_node(node))
        if block.terminator is not None:
            lines.append("    " + format_node(block.terminator))
    return "\n".join(lines)
