"""The greedy single-method inliner.

Models the inliner in the open-source Graal that the paper compares
against (§V, "Comparison against alternatives"): "akin to the inlining
algorithm for JIT compilers described by Steiner et al., which does not
have an exploration phase". Depth-first over the callsites of the
method being compiled: each direct call whose callee is small enough is
inlined immediately and its body re-scanned, until a root-size budget
runs out. Monomorphic (and optionally polymorphic) dispatched calls are
speculated through a typeswitch first. Decisions are per-callsite with
fixed thresholds — no clustering, no cost-benefit tuples, no adaptive
thresholds, no deep trials.
"""

from repro.baselines.common import inline_direct_call, speculate_dispatch
from repro.core.inliner import InlineReport
from repro.ir import nodes as n
from repro.ir.frequency import annotate_frequencies


class GreedyInliner:
    """Depth-first fixed-threshold inliner.

    Args:
        trivial_size: callees up to this IR size always inline.
        max_callee_size: largest callee considered at a hot callsite.
        hot_frequency: callsite frequency above which the larger
            threshold applies.
        max_root_size: inlining budget for the root graph.
        max_depth: maximum substitution depth.
        max_targets: typeswitch arms speculated at dispatched calls.
    """

    name = "greedy"

    def __init__(
        self,
        trivial_size=12,
        max_callee_size=60,
        hot_frequency=2.0,
        max_root_size=600,
        max_depth=9,
        max_targets=1,
        min_probability=0.9,
    ):
        self.trivial_size = trivial_size
        self.max_callee_size = max_callee_size
        self.hot_frequency = hot_frequency
        self.max_root_size = max_root_size
        self.max_depth = max_depth
        self.max_targets = max_targets
        self.min_probability = min_probability

    def run(self, graph, context):
        report = InlineReport()
        report.rounds = 1
        work = [(invoke, 0) for invoke in graph.invokes()]
        while work:
            invoke, depth = work.pop()
            if invoke.block is None:
                continue  # optimized away meanwhile
            if graph.node_count() >= self.max_root_size:
                break
            if depth >= self.max_depth:
                continue
            if invoke.is_dispatched:
                arms = speculate_dispatch(
                    graph,
                    invoke,
                    context,
                    self.max_targets,
                    self.min_probability,
                    report,
                )
                work.extend((arm, depth) for arm in arms)
                continue
            target = invoke.target
            if target is None or target.is_native or target.is_abstract:
                continue
            if target.never_inline:
                continue
            if not self._worth_inlining(invoke, target, context):
                continue
            before = {id(i) for i in graph.invokes()}
            inline_direct_call(graph, invoke, context, report)
            for new_invoke in graph.invokes():
                if id(new_invoke) not in before:
                    work.append((new_invoke, depth + 1))
        context.pipeline.simplify_only(graph)
        annotate_frequencies(graph)
        report.final_root_size = graph.node_count()
        return report

    def _worth_inlining(self, invoke, target, context):
        if target.force_inline:
            return True
        size = len(target.code)
        if size <= self.trivial_size:
            return True
        if invoke.frequency >= self.hot_frequency:
            return size <= self.max_callee_size
        return size <= self.trivial_size * 2
