"""Semantic analysis for minij.

The resolver runs over the combined user-plus-stdlib module list and

- builds the class table and validates the hierarchy;
- type-checks every method body, annotating expressions with their
  static source type (``int``, ``bool``, ``void``, class names,
  arrays);
- resolves every name to a binding (local / field / static field /
  class reference / lambda capture) and every call to a dispatch kind
  (virtual / interface / static / special / builtin);
- assigns each lambda its function-trait interface from the fixed
  signature table, computes its capture set (transitively through
  nested lambdas) and a fresh ``$LambdaN`` class name.

bool is a distinct source type that erases to the bytecode int; class
types used in lambda signatures erase to ``Object`` in the function
traits, with the resolver recording the cast-on-entry the code
generator must emit — the same erasure scheme Scala uses on the JVM,
which is precisely what gives the paper's Figure 1 its optimization
potential once inlined.
"""

from repro.errors import ResolveError
from repro.lang import ast
from repro.runtime.intrinsics import INTRINSIC_TABLE

#: (normalized param kinds, normalized return kind) -> function trait.
LAMBDA_INTERFACES = {
    ((), "void"): "Action0",
    ((), "int"): "IntFn0",
    ((), "Object"): "Fn0",
    (("int",), "int"): "IntFn1",
    (("int",), "bool"): "IntPred",
    (("int",), "void"): "IntAction",
    (("int",), "Object"): "IntToObjFn",
    (("Object",), "Object"): "Fn1",
    (("Object",), "bool"): "Pred1",
    (("Object",), "int"): "ToIntFn",
    (("Object",), "void"): "Action1",
    (("int", "int"), "int"): "IntFn2",
    (("int", "int"), "bool"): "IntPred2",
    (("int", "int"), "void"): "IntAction2",
    (("Object", "Object"), "Object"): "Fn2",
    (("Object", "Object"), "bool"): "Pred2",
    (("Object", "Object"), "int"): "ToIntFn2",
    (("Object", "int"), "Object"): "ObjIntFn",
    (("Object", "int"), "void"): "ObjIntAction",
    (("Object", "int"), "int"): "ObjIntToInt",
    (("int", "Object"), "Object"): "IntObjFn",
}


def _is_ref(type_name):
    return type_name not in ("int", "bool", "void")


def _normalize(type_name):
    """Erase a source type to a function-trait signature kind."""
    if type_name in ("int", "bool", "void"):
        return type_name
    return "Object"


def _normalize_param(type_name):
    """Parameter erasure: bool folds into int (the traits declare int
    parameters; only the *return* kind distinguishes predicates)."""
    if type_name == "bool":
        return "int"
    return _normalize(type_name)


class ClassTable:
    """Name → declaration with hierarchy queries."""

    def __init__(self, decls):
        self.decls = {}
        for decl in decls:
            if decl.name in self.decls or decl.name == "Object":
                raise ResolveError(
                    "duplicate class %s" % decl.name, decl.line, decl.column
                )
            self.decls[decl.name] = decl
        self._check_hierarchy()

    def _check_hierarchy(self):
        for decl in self.decls.values():
            if decl.superclass is not None:
                sup = self.decls.get(decl.superclass)
                if decl.superclass != "Object" and sup is None:
                    raise ResolveError(
                        "unknown superclass %s" % decl.superclass,
                        decl.line,
                        decl.column,
                    )
                if sup is not None and sup.kind != "class":
                    raise ResolveError(
                        "%s cannot extend %s %s"
                        % (decl.name, sup.kind, sup.name),
                        decl.line,
                        decl.column,
                    )
            for iname in decl.interfaces:
                iface = self.decls.get(iname)
                if iface is None or iface.kind != "trait":
                    raise ResolveError(
                        "%s implements unknown trait %s" % (decl.name, iname),
                        decl.line,
                        decl.column,
                    )
            # Reject inheritance cycles.
            seen = set()
            node = decl
            while node is not None:
                if node.name in seen:
                    raise ResolveError(
                        "inheritance cycle at %s" % decl.name,
                        decl.line,
                        decl.column,
                    )
                seen.add(node.name)
                node = (
                    self.decls.get(node.superclass)
                    if node.superclass and node.superclass != "Object"
                    else None
                )

    def has(self, name):
        return name == "Object" or name in self.decls

    def decl(self, name):
        return self.decls.get(name)

    def superclass_chain(self, name):
        while name is not None and name != "Object":
            decl = self.decls.get(name)
            if decl is None:
                break
            yield decl
            name = decl.superclass if decl.kind == "class" else None

    def all_interfaces(self, name):
        result = set()
        work = []
        for decl in self.superclass_chain(name):
            work.extend(decl.interfaces)
        start = self.decls.get(name)
        if start is not None and start.kind == "trait":
            work.append(name)
        while work:
            iname = work.pop()
            if iname in result:
                continue
            result.add(iname)
            decl = self.decls.get(iname)
            if decl is not None:
                work.extend(decl.interfaces)
        return result

    def is_subtype(self, sub, sup):
        if sub == sup or sup == "Object":
            return True
        if sub.endswith("[]"):
            if sup.endswith("[]"):
                a, b = sub[:-2], sup[:-2]
                if a in ("int", "bool") or b in ("int", "bool"):
                    return a == b
                return self.is_subtype(a, b)
            return False
        if sup.endswith("[]"):
            return False
        sup_decl = self.decls.get(sup)
        if sup_decl is not None and sup_decl.kind == "trait":
            return sup in self.all_interfaces(sub)
        for decl in self.superclass_chain(sub):
            if decl.name == sup:
                return True
        return False

    def assignable(self, value_type, target_type):
        if value_type == target_type:
            return True
        if value_type == "null":
            return _is_ref(target_type)
        if _is_ref(value_type) and _is_ref(target_type):
            return self.is_subtype(value_type, target_type)
        return False

    def find_method(self, class_name, method_name):
        """Returns ``(owner_name, MethodDecl)`` or None."""
        for decl in self.superclass_chain(class_name):
            for method in decl.methods:
                if method.name == method_name and not method.is_static:
                    return decl.name, method
        for iname in sorted(self.all_interfaces(class_name)):
            decl = self.decls[iname]
            for method in decl.methods:
                if method.name == method_name and not method.is_static:
                    return iname, method
        return None

    def find_static_method(self, class_name, method_name):
        decl = self.decls.get(class_name)
        if decl is None:
            return None
        for method in decl.methods:
            if method.name == method_name and method.is_static:
                return class_name, method
        return None

    def find_field(self, class_name, field_name, want_static=False):
        for decl in self.superclass_chain(class_name):
            for field in decl.fields:
                if field.name == field_name and field.is_static == want_static:
                    return decl.name, field
        if want_static:
            decl = self.decls.get(class_name)
            if decl is not None and decl.kind == "object":
                for field in decl.fields:
                    if field.name == field_name:
                        return decl.name, field
        return None


class _Scope:
    """A lexical scope; lambdas introduce boundary scopes so captures
    can be detected when resolution crosses them."""

    def __init__(self, parent=None, boundary=None):
        self.parent = parent
        self.boundary = boundary  # LambdaExpr or None
        self.names = {}

    def declare(self, name, type_name, node):
        self.names[name] = (type_name, node)

    def lookup(self, name):
        """Returns ``(type, node, crossed_lambdas)`` or None."""
        crossed = []
        scope = self
        while scope is not None:
            if name in scope.names:
                type_name, node = scope.names[name]
                return type_name, node, crossed
            if scope.boundary is not None:
                crossed.append(scope.boundary)
            scope = scope.parent
        return None


class Resolver:
    """Resolves and type-checks a list of modules in one namespace."""

    def __init__(self, modules):
        decls = []
        for module in modules:
            decls.extend(module.decls)
        self.table = ClassTable(decls)
        self.lambda_counter = 0
        self.lambdas = []  # all LambdaExpr encountered, for codegen
        self._current_class = None
        self._current_method = None

    def run(self):
        for decl in self.table.decls.values():
            self._resolve_class(decl)
        return self.table

    # ------------------------------------------------------------------

    def _resolve_class(self, decl):
        self._current_class = decl
        self._check_overrides(decl)
        for method in decl.methods:
            method.owner = decl
            if method.body is not None:
                self._resolve_method(decl, method)
        self._current_class = None

    def _check_overrides(self, decl):
        if decl.kind != "class" or decl.superclass in (None, "Object"):
            targets = []
        else:
            targets = list(self.table.superclass_chain(decl.superclass))
        for method in decl.methods:
            if method.is_static:
                continue
            for ancestor in targets:
                for base in ancestor.methods:
                    if base.name != method.name or base.is_static:
                        continue
                    if [t for _, t in base.params] != [
                        t for _, t in method.params
                    ] or base.return_type != method.return_type:
                        raise ResolveError(
                            "%s.%s overrides %s.%s with a different signature"
                            % (decl.name, method.name, ancestor.name, base.name),
                            method.line,
                            method.column,
                        )

    def _resolve_method(self, decl, method):
        self._current_method = method
        scope = _Scope()
        for name, type_name in method.params:
            self._check_type(type_name, method)
            scope.declare(name, type_name, method)
        self._check_type(method.return_type, method)
        self._resolve_block(method.body, scope, method)
        if method.return_type != "void" and not self._always_returns(method.body):
            raise ResolveError(
                "%s.%s: missing return on some path" % (decl.name, method.name),
                method.line,
                method.column,
            )
        self._current_method = None

    def _check_type(self, type_name, where):
        base = type_name
        while base.endswith("[]"):
            base = base[:-2]
        if base in ("int", "bool", "void"):
            return
        if not self.table.has(base):
            raise ResolveError(
                "unknown type %s" % type_name, where.line, where.column
            )

    def _always_returns(self, stmt):
        if isinstance(stmt, ast.ReturnStmt):
            return True
        if isinstance(stmt, ast.BlockStmt):
            return any(self._always_returns(s) for s in stmt.stmts)
        if isinstance(stmt, ast.IfStmt):
            return (
                stmt.else_body is not None
                and self._always_returns(stmt.then_body)
                and self._always_returns(stmt.else_body)
            )
        return False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _resolve_block(self, block, scope, method):
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._resolve_stmt(stmt, inner, method)

    def _resolve_stmt(self, stmt, scope, method):
        if isinstance(stmt, ast.BlockStmt):
            self._resolve_block(stmt, scope, method)
        elif isinstance(stmt, ast.VarStmt):
            self._check_type(stmt.type, stmt)
            if stmt.init is not None:
                init_type = self._resolve_expr(stmt.init, scope, method)
                self._require_assignable(init_type, stmt.type, stmt)
            scope.declare(stmt.name, stmt.type, stmt)
        elif isinstance(stmt, ast.AssignStmt):
            target_type = self._resolve_expr(stmt.target, scope, method, lvalue=True)
            value_type = self._resolve_expr(stmt.value, scope, method)
            self._require_assignable(value_type, target_type, stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._resolve_expr(stmt.expr, scope, method)
        elif isinstance(stmt, ast.IfStmt):
            self._require_bool(
                self._resolve_expr(stmt.condition, scope, method), stmt
            )
            self._resolve_stmt(stmt.then_body, _Scope(scope), method)
            if stmt.else_body is not None:
                self._resolve_stmt(stmt.else_body, _Scope(scope), method)
        elif isinstance(stmt, ast.WhileStmt):
            self._require_bool(
                self._resolve_expr(stmt.condition, scope, method), stmt
            )
            self._resolve_stmt(stmt.body, _Scope(scope), method)
        elif isinstance(stmt, ast.ReturnStmt):
            expected = method.return_type
            if stmt.value is None:
                if expected != "void":
                    raise ResolveError(
                        "missing return value", stmt.line, stmt.column
                    )
            else:
                if expected == "void":
                    raise ResolveError(
                        "void method returns a value", stmt.line, stmt.column
                    )
                value_type = self._resolve_expr(stmt.value, scope, method)
                self._require_assignable(value_type, expected, stmt)
        else:
            raise ResolveError("unknown statement %r" % stmt, stmt.line, stmt.column)

    def _require_assignable(self, value_type, target_type, where):
        if not self.table.assignable(value_type, target_type):
            raise ResolveError(
                "cannot assign %s to %s" % (value_type, target_type),
                where.line,
                where.column,
            )

    def _require_bool(self, type_name, where):
        if type_name != "bool":
            raise ResolveError(
                "condition must be bool, found %s" % type_name,
                where.line,
                where.column,
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _resolve_expr(self, expr, scope, method, lvalue=False):
        result = self._resolve_expr_inner(expr, scope, method, lvalue)
        expr.type = result
        return result

    def _resolve_expr_inner(self, expr, scope, method, lvalue):
        if isinstance(expr, ast.IntLit):
            return "int"
        if isinstance(expr, ast.BoolLit):
            return "bool"
        if isinstance(expr, ast.NullLit):
            return "null"
        if isinstance(expr, ast.ThisExpr):
            return self._resolve_this(expr, scope, method)
        if isinstance(expr, ast.NameExpr):
            return self._resolve_name(expr, scope, method, lvalue)
        if isinstance(expr, ast.FieldExpr):
            return self._resolve_field(expr, scope, method, lvalue)
        if isinstance(expr, ast.IndexExpr):
            target_type = self._resolve_expr(expr.target, scope, method)
            if not target_type.endswith("[]"):
                raise ResolveError(
                    "indexing non-array %s" % target_type, expr.line, expr.column
                )
            index_type = self._resolve_expr(expr.index, scope, method)
            if index_type != "int":
                raise ResolveError(
                    "array index must be int", expr.line, expr.column
                )
            return target_type[:-2]
        if isinstance(expr, ast.CallExpr):
            return self._resolve_call(expr, scope, method)
        if isinstance(expr, ast.NewExpr):
            return self._resolve_new(expr, scope, method)
        if isinstance(expr, ast.NewArrayExpr):
            self._check_type(expr.elem_type, expr)
            length_type = self._resolve_expr(expr.length, scope, method)
            if length_type != "int":
                raise ResolveError(
                    "array length must be int", expr.line, expr.column
                )
            return expr.elem_type + "[]"
        if isinstance(expr, ast.UnaryExpr):
            operand = self._resolve_expr(expr.operand, scope, method)
            if expr.op == "-":
                if operand != "int":
                    raise ResolveError("- needs int", expr.line, expr.column)
                return "int"
            if operand != "bool":
                raise ResolveError("! needs bool", expr.line, expr.column)
            return "bool"
        if isinstance(expr, ast.BinaryExpr):
            return self._resolve_binary(expr, scope, method)
        if isinstance(expr, ast.IsExpr):
            self._resolve_expr(expr.operand, scope, method)
            self._check_type(expr.type_name, expr)
            if not _is_ref(expr.operand.type):
                raise ResolveError("is needs a reference", expr.line, expr.column)
            return "bool"
        if isinstance(expr, ast.AsExpr):
            self._resolve_expr(expr.operand, scope, method)
            self._check_type(expr.type_name, expr)
            if not _is_ref(expr.operand.type) or not _is_ref(expr.type_name):
                raise ResolveError(
                    "as needs reference types", expr.line, expr.column
                )
            return expr.type_name
        if isinstance(expr, ast.LambdaExpr):
            return self._resolve_lambda(expr, scope, method)
        if isinstance(expr, ast.SuperExpr):
            raise ResolveError(
                "super is only valid as a call target", expr.line, expr.column
            )
        raise ResolveError("unknown expression %r" % expr, expr.line, expr.column)

    # -- names -------------------------------------------------------------

    def _resolve_this(self, expr, scope, method):
        found = scope.lookup("this")
        if found is not None:
            # Inside a lambda: "this" resolves through the boundary.
            type_name, _node, crossed = found
            for boundary in crossed:
                boundary.captures_this = True
            return type_name
        if method.is_static:
            raise ResolveError(
                "this in a static method", expr.line, expr.column
            )
        return self._current_class.name

    def _resolve_name(self, expr, scope, method, lvalue):
        found = scope.lookup(expr.name)
        if found is not None:
            type_name, node, crossed = found
            if crossed:
                # The variable lives outside at least one lambda: it
                # must be captured by every crossed lambda.
                for boundary in crossed:
                    if all(c[0] != expr.name for c in boundary.captures):
                        boundary.captures.append((expr.name, type_name))
                if lvalue:
                    raise ResolveError(
                        "cannot assign to captured variable %s" % expr.name,
                        expr.line,
                        expr.column,
                    )
                expr.binding = "capture"
            else:
                expr.binding = "local"
            return type_name
        # Field of the enclosing class? Valid in instance methods and in
        # lambdas that can reach an instance ("this" in scope).
        this_lookup = scope.lookup("this")
        if (not method.is_static or this_lookup is not None) and (
            self._current_class is not None
        ):
            field = self.table.find_field(self._current_class.name, expr.name)
            if field is not None:
                owner, decl = field
                if this_lookup is not None:
                    for boundary in this_lookup[2]:
                        boundary.captures_this = True
                expr.binding = "field"
                expr.slot = (owner, decl)
                return decl.type
        # Static field of the enclosing class/object?
        if self._current_class is not None:
            field = self.table.find_field(
                self._current_class.name, expr.name, want_static=True
            )
            if field is not None:
                owner, decl = field
                expr.binding = "static-field"
                expr.slot = (owner, decl)
                return decl.type
        # Class name in static position.
        if self.table.has(expr.name):
            expr.binding = "class"
            return expr.name
        raise ResolveError("unknown name %s" % expr.name, expr.line, expr.column)

    def _resolve_field(self, expr, scope, method, lvalue):
        # Static field access Class.field?
        if isinstance(expr.target, ast.NameExpr):
            local = scope.lookup(expr.target.name)
            if local is None and self.table.has(expr.target.name):
                field = self.table.find_field(
                    expr.target.name, expr.name, want_static=True
                )
                if field is not None:
                    expr.target.binding = "class"
                    expr.target.type = expr.target.name
                    owner, decl = field
                    expr.binding = "static-field"
                    expr.owner = owner
                    return decl.type
        target_type = self._resolve_expr(expr.target, scope, method)
        if target_type.endswith("[]"):
            if expr.name != "length":
                raise ResolveError(
                    "arrays only have .length", expr.line, expr.column
                )
            if lvalue:
                raise ResolveError(
                    "cannot assign to .length", expr.line, expr.column
                )
            expr.binding = "arraylen"
            return "int"
        if not _is_ref(target_type):
            raise ResolveError(
                "field access on %s" % target_type, expr.line, expr.column
            )
        field = self.table.find_field(target_type, expr.name)
        if field is None:
            raise ResolveError(
                "no field %s on %s" % (expr.name, target_type),
                expr.line,
                expr.column,
            )
        owner, decl = field
        expr.binding = "field"
        expr.owner = owner
        return decl.type

    # -- calls --------------------------------------------------------------

    def _resolve_call(self, expr, scope, method):
        if expr.target is None:
            return self._resolve_bare_call(expr, scope, method)
        if isinstance(expr.target, ast.SuperExpr):
            return self._resolve_super_call(expr, scope, method)
        # Static call Class.method(...)?
        if isinstance(expr.target, ast.NameExpr):
            local = scope.lookup(expr.target.name)
            if local is None and self.table.has(expr.target.name):
                found = self.table.find_static_method(expr.target.name, expr.name)
                if found is not None:
                    expr.target.binding = "class"
                    expr.target.type = expr.target.name
                    owner, decl = found
                    expr.dispatch = "static"
                    expr.owner = owner
                    self._check_args(expr, decl, scope, method)
                    return decl.return_type
        target_type = self._resolve_expr(expr.target, scope, method)
        if not _is_ref(target_type) or target_type.endswith("[]"):
            raise ResolveError(
                "method call on %s" % target_type, expr.line, expr.column
            )
        found = self.table.find_method(target_type, expr.name)
        if found is None:
            raise ResolveError(
                "no method %s on %s" % (expr.name, target_type),
                expr.line,
                expr.column,
            )
        owner, decl = found
        owner_decl = self.table.decl(owner)
        target_decl = self.table.decl(target_type)
        is_iface = (
            target_decl.kind == "trait"
            if target_decl is not None
            else (owner_decl is not None and owner_decl.kind == "trait")
        )
        expr.dispatch = "interface" if is_iface else "virtual"
        expr.owner = target_type if target_decl is not None else owner
        self._check_args(expr, decl, scope, method)
        return decl.return_type

    def _resolve_bare_call(self, expr, scope, method):
        # Builtins first (they are simple names like print/rand).
        if expr.name in INTRINSIC_TABLE:
            params, ret, _fn = INTRINSIC_TABLE[expr.name]
            if len(expr.args) != len(params):
                raise ResolveError(
                    "%s expects %d args" % (expr.name, len(params)),
                    expr.line,
                    expr.column,
                )
            for arg, param_type in zip(expr.args, params):
                arg_type = self._resolve_expr(arg, scope, method)
                # Intrinsics are int-typed; accept bool where int is due.
                if param_type == "int" and arg_type not in ("int", "bool"):
                    raise ResolveError(
                        "%s needs int args" % expr.name, expr.line, expr.column
                    )
            expr.dispatch = "builtin"
            return ret
        klass = self._current_class
        if klass is not None:
            found = self.table.find_static_method(klass.name, expr.name)
            if found is not None:
                owner, decl = found
                expr.dispatch = "static"
                expr.owner = owner
                self._check_args(expr, decl, scope, method)
                return decl.return_type
            if not method.is_static or scope.lookup("this") is not None:
                found = self.table.find_method(klass.name, expr.name)
                if found is not None:
                    owner, decl = found
                    self._resolve_this(expr, scope, method)  # capture check
                    owner_decl = self.table.decl(owner)
                    expr.dispatch = (
                        "interface"
                        if owner_decl is not None and owner_decl.kind == "trait"
                        else "virtual"
                    )
                    expr.owner = klass.name
                    self._check_args(expr, decl, scope, method)
                    return decl.return_type
        raise ResolveError(
            "unknown function %s" % expr.name, expr.line, expr.column
        )

    def _resolve_super_call(self, expr, scope, method):
        klass = self._current_class
        if klass is None or method.is_static:
            raise ResolveError(
                "super outside an instance method", expr.line, expr.column
            )
        superclass = klass.superclass
        if superclass in (None, "Object"):
            raise ResolveError(
                "%s has no superclass methods" % klass.name,
                expr.line,
                expr.column,
            )
        found = self.table.find_method(superclass, expr.name)
        if found is None:
            raise ResolveError(
                "no method %s on %s" % (expr.name, superclass),
                expr.line,
                expr.column,
            )
        owner, decl = found
        expr.dispatch = "special"
        expr.owner = superclass
        expr.target.type = superclass
        self._check_args(expr, decl, scope, method)
        return decl.return_type

    def _check_args(self, expr, decl, scope, method):
        if len(expr.args) != len(decl.params):
            raise ResolveError(
                "%s expects %d args, got %d"
                % (expr.name, len(decl.params), len(expr.args)),
                expr.line,
                expr.column,
            )
        for arg, (_pname, ptype) in zip(expr.args, decl.params):
            arg_type = self._resolve_expr(arg, scope, method)
            self._require_assignable(arg_type, ptype, expr)

    def _resolve_new(self, expr, scope, method):
        decl = self.table.decl(expr.class_name)
        if decl is None or decl.kind != "class":
            raise ResolveError(
                "cannot instantiate %s" % expr.class_name, expr.line, expr.column
            )
        ctor = None
        for m in decl.methods:
            if m.name == "init" and not m.is_static:
                ctor = m
                break
        if ctor is None:
            found = self.table.find_method(expr.class_name, "init")
            if found is not None:
                ctor = found[1]
        if ctor is not None:
            expr.has_ctor = True
            self._check_args_ctor(expr, ctor, scope, method)
        else:
            expr.has_ctor = False
            if expr.args:
                raise ResolveError(
                    "%s has no constructor" % expr.class_name,
                    expr.line,
                    expr.column,
                )
        return expr.class_name

    def _check_args_ctor(self, expr, ctor, scope, method):
        if len(expr.args) != len(ctor.params):
            raise ResolveError(
                "constructor of %s expects %d args"
                % (expr.class_name, len(ctor.params)),
                expr.line,
                expr.column,
            )
        for arg, (_pname, ptype) in zip(expr.args, ctor.params):
            arg_type = self._resolve_expr(arg, scope, method)
            self._require_assignable(arg_type, ptype, expr)

    # -- operators ------------------------------------------------------------

    def _resolve_binary(self, expr, scope, method):
        left = self._resolve_expr(expr.left, scope, method)
        right = self._resolve_expr(expr.right, scope, method)
        op = expr.op
        if op in ("&&", "||"):
            if left != "bool" or right != "bool":
                raise ResolveError(
                    "%s needs bool operands" % op, expr.line, expr.column
                )
            return "bool"
        if op in ("+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"):
            if left != "int" or right != "int":
                raise ResolveError(
                    "%s needs int operands, found %s and %s" % (op, left, right),
                    expr.line,
                    expr.column,
                )
            return "int"
        if op in ("<", "<=", ">", ">="):
            if left != "int" or right != "int":
                raise ResolveError(
                    "%s needs int operands" % op, expr.line, expr.column
                )
            return "bool"
        if op in ("==", "!="):
            ok = (
                (left == right and left in ("int", "bool"))
                or (left == "null" and (_is_ref(right) or right == "null"))
                or (right == "null" and _is_ref(left))
                or (
                    _is_ref(left)
                    and _is_ref(right)
                    and (
                        self.table.assignable(left, right)
                        or self.table.assignable(right, left)
                    )
                )
            )
            if not ok:
                raise ResolveError(
                    "cannot compare %s and %s" % (left, right),
                    expr.line,
                    expr.column,
                )
            return "bool"
        raise ResolveError("unknown operator %s" % op, expr.line, expr.column)

    # -- lambdas --------------------------------------------------------------

    def _resolve_lambda(self, expr, scope, method):
        key = (
            tuple(_normalize_param(t) for _n, t in expr.params),
            _normalize(expr.return_type),
        )
        interface = LAMBDA_INTERFACES.get(key)
        if interface is None:
            raise ResolveError(
                "no function trait for signature %r" % (key,),
                expr.line,
                expr.column,
            )
        if not self.table.has(interface):
            raise ResolveError(
                "function trait %s missing (is the stdlib loaded?)" % interface,
                expr.line,
                expr.column,
            )
        expr.interface = interface
        expr.class_name = "$Lambda%d" % self.lambda_counter
        self.lambda_counter += 1
        self.lambdas.append(expr)
        inner = _Scope(scope, boundary=expr)
        if not method.is_static and scope.lookup("this") is None:
            # Make the enclosing instance reachable inside the lambda.
            outer_this = _Scope(scope)
            outer_this.declare("this", self._current_class.name, method)
            inner = _Scope(outer_this, boundary=expr)
        for name, type_name in expr.params:
            self._check_type(type_name, expr)
            inner.declare(name, type_name, expr)
        self._check_type(expr.return_type, expr)
        body_scope = _Scope(inner)
        proxy = _LambdaMethodProxy(expr, method.is_static)
        for stmt in expr.body.stmts:
            self._resolve_stmt(stmt, body_scope, proxy)
        if expr.return_type != "void" and not self._always_returns(expr.body):
            raise ResolveError(
                "lambda missing return on some path", expr.line, expr.column
            )
        return interface


class _LambdaMethodProxy:
    """Stands in for the enclosing MethodDecl while resolving a lambda
    body: return statements check against the lambda's return type, and
    'this'/static lookups behave like an instance context (the capture
    machinery decides what 'this' means)."""

    def __init__(self, lambda_expr, enclosing_is_static):
        self.return_type = lambda_expr.return_type
        # A lambda in a static method has no instance to capture; one in
        # an instance method behaves like instance code (the capture
        # machinery routes "this" through the $this field).
        self.is_static = enclosing_is_static
        self.line = lambda_expr.line
        self.column = lambda_expr.column
