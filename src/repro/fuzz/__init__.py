"""Differential fuzzing for the VM's three semantics executors.

The reproduction executes guest programs in three independent places —
the profiling interpreter (:mod:`repro.interp.interpreter`), the
lowered register machine (:mod:`repro.backend.machine`) and the
canonicalizer's constant folder (:mod:`repro.opts.canonicalize`) — and
every experiment in the paper assumes they agree.  This package is the
safety net that checks it, in the style of JVM differential testers
(Zang et al.'s template-extraction JIT testing, pattern-based peephole
test generators; see PAPERS.md):

- :mod:`repro.fuzz.generator` — a seeded random program generator that
  emits verifier-clean bytecode (arithmetic with DIV/REM/shift edge
  cases, branches, bounded loops, arrays, fields, virtual and interface
  dispatch over a small class hierarchy, bounded recursion) plus a
  minij-source mode that reuses :mod:`repro.lang`;
- :mod:`repro.fuzz.oracle` — runs each program under the pure
  interpreter and a matrix of JIT configurations (inliner policies,
  individual optimization passes toggled) and compares return values,
  trap kinds and printed output, iteration by iteration;
- :mod:`repro.fuzz.bisect` — re-runs a diverging program under growing
  prefixes of the optimization pipeline to name the guilty pass;
- :mod:`repro.fuzz.reduce` — a delta-debugging shrinker that minimizes
  a diverging program while preserving the divergence;
- :mod:`repro.fuzz.serialize` — serializes reproducers as assembler
  text (``tests/corpus/``) and loads them back;
- :mod:`repro.fuzz.campaign` — the campaign driver behind
  ``python -m repro.tools.fuzz``.
"""

from repro.fuzz.bisect import bisect_passes
from repro.fuzz.campaign import CampaignResult, run_campaign
from repro.fuzz.generator import (
    BytecodeCase,
    MinijCase,
    generate_case,
)
from repro.fuzz.oracle import (
    Divergence,
    check_program,
    oracle_config_names,
    run_interpreter,
)
from repro.fuzz.reduce import shrink_case
from repro.fuzz.serialize import load_corpus_file, load_corpus_text, program_to_asm

__all__ = [
    "BytecodeCase",
    "MinijCase",
    "CampaignResult",
    "Divergence",
    "bisect_passes",
    "check_program",
    "generate_case",
    "load_corpus_file",
    "load_corpus_text",
    "oracle_config_names",
    "program_to_asm",
    "run_campaign",
    "run_interpreter",
    "shrink_case",
]
