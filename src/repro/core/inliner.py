"""The top-level incremental inlining algorithm (Listing 1).

::

    root = createRoot(μ)
    while not detectTermination(root):
        expand(root)
        analyze(root)
        inline(root)

Termination (§IV): no cutoff nodes left, no change in the call tree
during the last round, or the root IR exceeding the size bailout.
Between rounds the root method receives the paper's end-of-round
optimizations — read/write elimination and first-iteration loop peeling
— and deep-trial information is re-propagated through the surviving
tree, since the newly inlined and optimized code may have sharpened
argument types at the remaining callsites (§IV's fixpoint).

The constructor knobs expose the ablations evaluated in §V: fixed
expansion/inlining thresholds (Figures 6–7), 1-by-1 analysis
(Figure 8) and shallow trials (Figure 9). The tuned configuration is
the default.
"""

from repro.core.analysis import CostBenefitAnalysis
from repro.core.calltree import NodeKind, make_root
from repro.core.expansion import ExpansionPhase
from repro.core.inlining import InliningPhase
from repro.core.params import InlinerParams
from repro.core.trials import propagate_deep_trials
from repro.ir.frequency import annotate_frequencies


class InlineReport:
    """Statistics from one run of the inliner over one compilation."""

    def __init__(self):
        self.rounds = 0
        self.expansions = 0
        self.inline_count = 0
        self.typeswitch_count = 0
        self.speculation_count = 0
        self.explored_nodes = 0
        self.inlined_methods = []
        self.final_root_size = 0

    def __repr__(self):
        return "<InlineReport rounds=%d expanded=%d inlined=%d ts=%d>" % (
            self.rounds,
            self.expansions,
            self.inline_count,
            self.typeswitch_count,
        )


class IncrementalInliner:
    """The paper's algorithm as a pluggable inlining policy.

    Args:
        params: tuned constants; defaults to the paper's values.
        adaptive_expansion: Eq. 8 when True, fixed T_e otherwise.
        adaptive_inlining: Eq. 12 when True, fixed T_i otherwise.
        fixed_te / fixed_ti: the fixed thresholds for the baselines.
        clustering: Listing 6 clustering when True, 1-by-1 otherwise.
        deep_trials: deep inlining trials when True; when False,
            argument specialization happens only for the root's direct
            callsites (the "inlining trials depth 1" baseline).
    """

    name = "incremental"

    def __init__(
        self,
        params=None,
        adaptive_expansion=True,
        adaptive_inlining=True,
        fixed_te=1000,
        fixed_ti=3000,
        clustering=True,
        deep_trials=True,
        tracer=None,
    ):
        self.params = params if params is not None else InlinerParams()
        self.tracer = tracer
        self.expansion = ExpansionPhase(
            self.params,
            adaptive=adaptive_expansion,
            fixed_te=fixed_te,
            deep_trials=deep_trials,
            tracer=tracer,
        )
        self.analysis = CostBenefitAnalysis(self.params, clustering=clustering)
        self.inlining = InliningPhase(
            self.params,
            adaptive=adaptive_inlining,
            fixed_ti=fixed_ti,
            tracer=tracer,
        )
        self.deep_trials = deep_trials

    def attach_tracer(self, tracer):
        """Install *tracer* on the inliner and its phases after
        construction (the observability bridge uses this to wire in a
        span-scoped tracer when none was supplied)."""
        self.tracer = tracer
        self.expansion.tracer = tracer
        self.inlining.tracer = tracer

    # ------------------------------------------------------------------

    def run(self, graph, context):
        """Inline into *graph* (the compilation root); returns a report."""
        report = InlineReport()
        root = make_root(graph)
        if self.tracer is not None:
            # graph.name defaults to the method's qualified name but
            # diverges for OSR continuations ("Method@osr<bci>"), which
            # keeps their provenance roots distinct in explain output.
            self.tracer.begin_compilation(
                graph.name if graph.method is not None else "<root>"
            )
        from repro.core.trials import discover_children

        discover_children(root, context, self.params)
        termination = "max rounds"
        for _ in range(self.params.max_rounds):
            report.rounds += 1
            if root.graph.node_count() >= self.params.max_root_size:
                termination = "root size bailout"
                break
            if self.tracer is not None:
                self.tracer.begin_round(root.graph.node_count())
            expanded = self.expansion.run(root, context, report)
            cluster_roots = self.analysis.run(root, context)
            inlined = self.inlining.run(root, context, report, cluster_roots)
            if inlined:
                # End-of-round optimizations on the root (§IV): full
                # pipeline including read/write elimination and peeling.
                context.pipeline.run(root.graph)
                annotate_frequencies(root.graph)
                refresh_frequencies(root)
                if self.deep_trials:
                    propagate_deep_trials(root, context, self.params)
            if not expanded and not inlined:
                termination = "no change in call tree"
                break
            if root.n_c() == 0 and not _has_expandable(root):
                termination = "no cutoffs left"
                break
        report.final_root_size = root.graph.node_count()
        if self.tracer is not None:
            self.tracer.terminated(termination, report.final_root_size)
        return report


def refresh_frequencies(root):
    """Recompute f(n) for every tree node after the root graph changed.

    Nodes whose callsite lives in the root graph read the (freshly
    re-annotated) invoke frequency directly; nodes deeper in the tree
    multiply their parent's frequency by their callsite's frequency
    within the parent's (detached) graph. Children of un-inlined
    polymorphic nodes share the polymorphic callsite and scale by their
    profile probability instead.
    """

    def visit(node):
        for child in node.children:
            if child.check_deleted():
                continue
            invoke = child.invoke
            if invoke is None or invoke.block is None:
                child.frequency = 0.0
                continue
            if node.kind == NodeKind.POLYMORPHIC:
                child.frequency = node.frequency * child.probability
            elif node.is_root or node.kind == NodeKind.INLINED:
                child.frequency = invoke.frequency
            else:
                child.frequency = node.frequency * invoke.frequency
            visit(child)

    visit(root)


def _has_expandable(root):
    for node in root.subtree():
        if node.kind == NodeKind.CUTOFF and not node.expand_declined:
            return True
    return False
