"""Typeswitch emission unit tests (§IV polymorphic inlining)."""

import pytest

from repro.core.polymorphic import emit_typeswitch
from repro.ir import annotate_frequencies, build_graph, check_graph
from repro.ir import nodes as n
from tests.execution import execute_graph
from tests.helpers import run_static, shapes_program


def _emit(program, targets_spec):
    _, _, interp = run_static(program, "Main", "run")
    graph = build_graph(program.lookup_method("Main", "total"), program, interp.profiles)
    annotate_frequencies(graph)
    (invoke,) = graph.invokes()
    targets = [
        (name, probability, program.resolve_method(name, "area"))
        for name, probability in targets_spec
    ]
    arms = emit_typeswitch(graph, invoke, targets, program)
    check_graph(graph, program)
    return graph, arms


class TestEmission:
    def test_structure(self):
        program = shapes_program()
        graph, arms = _emit(program, [("Square", 0.75), ("Circle", 0.25)])
        assert set(arms) == {"Square", "Circle"}
        exact_checks = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.InstanceOfNode) and x.exact
        ]
        assert len(exact_checks) == 2
        directs = [i for i in graph.invokes() if i.kind == "direct"]
        fallbacks = [i for i in graph.invokes() if i.is_dispatched]
        assert len(directs) == 2
        assert len(fallbacks) == 1

    def test_receiver_refined_in_arms(self):
        program = shapes_program()
        _, arms = _emit(program, [("Square", 0.9)])
        arm = arms["Square"]
        receiver = arm.inputs[0]
        assert isinstance(receiver, n.PiNode)
        assert receiver.stamp.type_name == "Square"
        assert receiver.stamp.exact and receiver.stamp.non_null

    def test_probabilities_conditional(self):
        program = shapes_program()
        graph, _ = _emit(program, [("Square", 0.75), ("Circle", 0.25)])
        ifs = [
            block.terminator
            for block in graph.blocks
            if isinstance(block.terminator, n.IfNode)
        ]
        probabilities = sorted(i.probability for i in ifs)
        # First test: 0.75; second: 0.25/0.25 capped at 0.999.
        assert probabilities[0] == pytest.approx(0.75)
        assert probabilities[1] >= 0.99

    def test_execution_dispatches_correctly(self):
        from repro.runtime import VMState

        program = shapes_program()
        graph, _ = _emit(program, [("Square", 0.75), ("Circle", 0.25)])
        vm = VMState(program)
        square = vm.allocate("Square")
        square.fields["side"] = 5
        circle = vm.allocate("Circle")
        circle.fields["r"] = 2
        assert execute_graph(graph, program, [square, 3], vm=vm)[0] == 75
        assert execute_graph(graph, program, [circle, 3], vm=vm)[0] == 36

    def test_fallback_covers_unprofiled_type(self):
        from repro.bytecode import MethodBuilder
        from repro.bytecode.klass import FieldDef
        from repro.runtime import VMState

        program = shapes_program()
        # A third Shape the profile never saw.
        tri = program.define_class("Tri", interfaces=["Shape"])
        tri.add_field(FieldDef("b", "int"))
        builder = MethodBuilder("area", [], "int")
        builder.load(0).getfield("Tri", "b").const(10).mul().retv()
        tri.add_method(builder.build())

        graph, _ = _emit(program, [("Square", 0.75), ("Circle", 0.25)])
        vm = VMState(program)
        triangle = vm.allocate("Tri")
        triangle.fields["b"] = 4
        result, _ = execute_graph(graph, program, [triangle, 1], vm=vm)
        assert result == 40  # served by the virtual fallback

    def test_void_callsite(self):
        from repro.bytecode import MethodBuilder
        from repro.bytecode.method import Method

        program = shapes_program()
        shape = program.klass("Shape")
        shape.add_method(Method("poke", ["int"], "void", is_abstract=True))
        for cname, fname in (("Square", "side"), ("Circle", "r")):
            b = MethodBuilder("poke", ["int"], "void")
            b.load(0).load(1).putfield(cname, fname).ret()
            program.klass(cname).add_method(b.build())
        b = MethodBuilder("poker", ["Shape", "int"], "void", is_static=True)
        b.load(0).load(1).invokeinterface("Shape", "poke").ret()
        program.klass("Main").add_method(b.build())

        graph = build_graph(program.lookup_method("Main", "poker"), program)
        (invoke,) = graph.invokes()
        targets = [
            ("Square", 0.6, program.resolve_method("Square", "poke")),
            ("Circle", 0.4, program.resolve_method("Circle", "poke")),
        ]
        arms = emit_typeswitch(graph, invoke, targets, program)
        check_graph(graph, program)
        # No merge phi for void calls.
        merge_phis = [p for block in graph.blocks for p in block.phis]
        assert not merge_phis

        from repro.runtime import VMState

        vm = VMState(program)
        square = vm.allocate("Square")
        execute_graph(graph, program, [square, 9], vm=vm)
        assert square.fields["side"] == 9
