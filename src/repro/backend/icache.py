"""Instruction-cache pressure model.

The paper's §II (point 3) argues inlining is non-linear partly because
"excessive inlining can put more pressure on limited hardware resources,
such as the instruction cache". We model that with a global tax: once
the total installed machine code exceeds the modelled cache capacity,
every compiled-method entry pays a penalty growing with the excess
(capped — a real cache degrades, it does not fall off a cliff).

The default capacity is deliberately sized so the paper-tuned inliner
fits comfortably on our miniature benchmarks while pathological
fixed-threshold configurations (T_i = 6000-style over-inlining) do not.
"""


class ICacheModel:
    """Entry-penalty model parameterized by capacity and slope."""

    def __init__(self, capacity=60_000, penalty=40, max_ratio=4.0):
        """
        Args:
            capacity: machine instructions that fit without penalty.
            penalty: cycles charged per method entry per 100% excess.
            max_ratio: penalty growth saturates at this excess ratio.
        """
        self.capacity = capacity
        self.penalty = penalty
        self.max_ratio = max_ratio

    def entry_penalty(self, installed_total):
        """Cycles added to each compiled-method entry."""
        if installed_total <= self.capacity:
            return 0
        excess = (installed_total - self.capacity) / self.capacity
        if excess > self.max_ratio:
            excess = self.max_ratio
        return int(self.penalty * excess)
