"""dotty — the next-generation Scala compiler.

dotty's hot paths are type comparisons and tree transforms with heavy
use of extension-method-style helpers. We model subtype checking over a
synthetic type lattice (named types, applied types, unions) through a
``Type`` hierarchy with recursive ``subtypeOf`` dispatch, plus a
transform pass mapping trees through closures. (Paper: ≈2.5% from deep
trials, modest but positive overall.)
"""

DESCRIPTION = "recursive subtype checks over a synthetic type lattice"
ITERATIONS = 14

SOURCE = """
trait Type {
  def subtypeOf(other: Type, ctx: TypeContext): bool;
  def id(): int;
}

class NamedType implements Type {
  var sym: int;
  def init(sym: int): void { this.sym = sym; }
  def id(): int { return this.sym; }
  def subtypeOf(other: Type, ctx: TypeContext): bool {
    if (other is NamedType) {
      return ctx.extendsSym(this.sym, (other as NamedType).sym);
    }
    if (other is UnionType) {
      var u: UnionType = other as UnionType;
      return this.subtypeOf(u.left, ctx) || this.subtypeOf(u.right, ctx);
    }
    return false;
  }
}

class AppliedType implements Type {
  var base: Type;
  var arg: Type;
  def init(base: Type, arg: Type): void { this.base = base; this.arg = arg; }
  def id(): int { return this.base.id() * 31 + this.arg.id(); }
  def subtypeOf(other: Type, ctx: TypeContext): bool {
    if (other is AppliedType) {
      var o: AppliedType = other as AppliedType;
      return this.base.subtypeOf(o.base, ctx) && this.arg.subtypeOf(o.arg, ctx);
    }
    if (other is UnionType) {
      var u: UnionType = other as UnionType;
      return this.subtypeOf(u.left, ctx) || this.subtypeOf(u.right, ctx);
    }
    return false;
  }
}

class UnionType implements Type {
  var left: Type;
  var right: Type;
  def init(left: Type, right: Type): void { this.left = left; this.right = right; }
  def id(): int { return this.left.id() * 17 + this.right.id(); }
  def subtypeOf(other: Type, ctx: TypeContext): bool {
    return this.left.subtypeOf(other, ctx) && this.right.subtypeOf(other, ctx);
  }
}

class TypeContext {
  var parents: int[];   // parents[sym] = super symbol (or -1)
  def init(n: int): void {
    this.parents = new int[n];
    var i: int = 0;
    while (i < n) { this.parents[i] = (i - 1) / 2; i = i + 1; }
    this.parents[0] = 0 - 1;
  }
  def extendsSym(sub: int, sup: int): bool {
    var s: int = sub;
    while (s >= 0) {
      if (s == sup) { return true; }
      s = this.parents[s];
    }
    return false;
  }
}

object Main {
  static var ctx: TypeContext;
  static var types: ArraySeq;

  def mkType(seed: int, depth: int): Type {
    if (depth == 0) { return new NamedType(seed % 31); }
    var kind: int = seed % 3;
    if (kind == 0) { return new NamedType(seed % 31); }
    if (kind == 1) {
      return new AppliedType(Main.mkType(seed * 3 + 1, depth - 1),
                             Main.mkType(seed * 5 + 2, depth - 1));
    }
    return new UnionType(Main.mkType(seed * 7 + 3, depth - 1),
                         Main.mkType(seed * 11 + 4, depth - 1));
  }

  def setup(): void {
    Main.ctx = new TypeContext(31);
    var types: ArraySeq = new ArraySeq(16);
    var i: int = 0;
    while (i < 14) {
      types.add(Main.mkType(i * 13 + 5, 3));
      i = i + 1;
    }
    Main.types = types;
  }

  def run(): int {
    if (Main.ctx == null) { Main.setup(); }
    var yes: int = 0;
    var pairs: int = 0;
    var i: int = 0;
    while (i < Main.types.length()) {
      var a: Type = Main.types.get(i) as Type;
      var j: int = 0;
      while (j < Main.types.length()) {
        var b: Type = Main.types.get(j) as Type;
        if (a.subtypeOf(b, Main.ctx)) { yes = yes + 1; }
        pairs = pairs + 1;
        j = j + 1;
      }
      i = i + 1;
    }
    return yes * 1000 + pairs;
  }
}
"""
