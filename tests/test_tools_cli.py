"""CLI tool tests (argument handling and end-to-end output)."""

import pytest

from repro.tools import bench as bench_tool
from repro.tools import disasm as disasm_tool
from repro.tools import run as run_tool
from repro.tools import stats as stats_tool
from repro.tools import trace as trace_tool
from repro.tools.common import method_argument

DEMO = """
object Main {
  def helper(x: int): int { return x * 3 + 1; }
  def run(): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < 50) { acc = acc + Main.helper(i); i = i + 1; }
    return acc;
  }
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.minij"
    path.write_text(DEMO)
    return str(path)


class TestRunTool:
    def test_runs_and_prints_result(self, demo_file, capsys):
        assert run_tool.main([demo_file, "--iterations", "6", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "result: %d" % sum(3 * i + 1 for i in range(50)) in out
        assert "steady:" in out

    def test_interpret_only(self, demo_file, capsys):
        assert run_tool.main([demo_file, "--interpret-only", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 methods compiled" in out

    def test_each_inliner_choice(self, demo_file, capsys):
        for name in ("none", "greedy", "c2", "incremental", "shallow"):
            assert run_tool.main([demo_file, "--inliner", name, "--iterations", "4"]) == 0

    def test_bad_entry_format_rejected(self, demo_file):
        with pytest.raises(SystemExit):
            run_tool.main([demo_file, "--entry", "nodots"])


class TestTraceTool:
    def test_trace_output(self, demo_file, capsys):
        assert trace_tool.main([demo_file, "Main.run"]) == 0
        out = capsys.readouterr().out
        assert "round 1" in out
        assert "INLINE" in out
        assert "Main.helper" in out


class TestDisasmTool:
    def test_bytecode_form(self, demo_file, capsys):
        assert disasm_tool.main([demo_file, "--method", "Main.helper"]) == 0
        out = capsys.readouterr().out
        assert "MUL" in out and "RETV" in out

    def test_ir_form(self, demo_file, capsys):
        assert disasm_tool.main(
            [demo_file, "--method", "Main.run", "--form", "ir"]
        ) == 0
        out = capsys.readouterr().out
        assert "graph Main.run" in out and "Invoke" in out

    def test_machine_form(self, demo_file, capsys):
        assert disasm_tool.main(
            [demo_file, "--method", "Main.helper", "--form", "machine"]
        ) == 0
        out = capsys.readouterr().out
        assert "COST" in out

    def test_whole_program(self, demo_file, capsys):
        assert disasm_tool.main([demo_file]) == 0
        out = capsys.readouterr().out
        assert "class Main" in out or "Main" in out


class TestStatsTool:
    def test_live_report(self, demo_file, capsys):
        assert stats_tool.main([demo_file, "--iterations", "8"]) == 0
        out = capsys.readouterr().out
        assert "== compilations" in out
        assert "Main.helper" in out and "Main.run" in out
        assert "== pass effectiveness" in out
        assert "== inlining rollup" in out
        assert "jit.compile.count" in out

    def test_events_jsonl_and_replay(self, demo_file, tmp_path, capsys):
        events = str(tmp_path / "events.jsonl")
        assert stats_tool.main(
            [demo_file, "--iterations", "8", "--events", events,
             "--no-metrics-section"]
        ) == 0
        live_out = capsys.readouterr().out
        assert stats_tool.main([events]) == 0
        replay_out = capsys.readouterr().out
        # The replayed compile table matches the live one (the hottest
        # section legitimately differs: live reads the profile store).
        live_compiles = live_out.split("== phase totals")[0]
        replay_compiles = replay_out.split("== phase totals")[0]
        assert replay_compiles == live_compiles

    def test_metrics_json_artifact(self, demo_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert stats_tool.main(
            [demo_file, "--iterations", "6", "--metrics", str(metrics)]
        ) == 0
        import json

        data = json.loads(metrics.read_text())
        assert data["metrics"]["jit.compile.count"]["value"] > 0
        assert len(data["iterations"]) == 6
        assert "installed_size_delta" in data["iterations"][0]

    def test_each_inliner_choice(self, demo_file, capsys):
        for name in ("none", "greedy", "c2", "incremental", "shallow"):
            assert stats_tool.main(
                [demo_file, "--inliner", name, "--iterations", "4"]
            ) == 0


class TestBenchTool:
    def test_list(self, capsys):
        assert bench_tool.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "factorie" in out and "incremental" in out

    def test_small_sweep(self, capsys):
        assert bench_tool.main(
            [
                "--benchmarks", "pmd",
                "--configs", "no-inline", "incremental",
                "--instances", "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "pmd" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            bench_tool.main(["--configs", "warp-speed"])


class TestCommon:
    def test_method_argument(self):
        assert method_argument("A.b") == ("A", "b")
        assert method_argument("pkg.Class.method") == ("pkg.Class", "method")
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            method_argument("nodot")
