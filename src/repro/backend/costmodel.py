"""The cycle cost model.

All performance numbers in the reproduction are sums of these constants.
They are loosely calibrated to a modern OoO core's *amortized* costs
(an add is 1, a well-predicted call sequence around 10, megamorphic
dispatch several times that, interpretation an order of magnitude above
compiled code), which is the calibration that matters for the paper's
qualitative claims.
"""

from repro.ir import nodes as n


class CostModel:
    """Cycle prices for machine operations and tier transitions."""

    # Compiled-code operation costs.
    ARITHMETIC = 1
    COMPARE = 1
    MOVE = 1
    BRANCH = 1
    JUMP = 1
    FIELD_ACCESS = 3
    ARRAY_ACCESS = 3
    ARRAY_LENGTH = 2
    STATIC_ACCESS = 2
    ALLOC_OBJECT = 16
    ALLOC_ARRAY = 20
    TYPE_CHECK = 2
    EXACT_CHECK = 1
    CAST = 2
    RETURN = 2

    # Call overheads (caller side: argument shuffle, call, return).
    CALL_DIRECT = 10
    CALL_VIRTUAL = 26
    CALL_INTERFACE = 32
    CALL_NATIVE = 6

    # Callee prologue charged at every compiled method entry.
    METHOD_ENTRY = 4

    # Speculation: a guard is a predicted-not-taken test; the deopt
    # transfer itself is priced at the interpreter's expense once the
    # frames resume, so the terminator is free on the compiled side.
    GUARD = 1
    DEOPT = 0

    # Interpreter tier: cycles per executed bytecode.
    INTERPRETED_OP = 22

    # JIT compilation cost: cycles per IR node processed per pass-ish
    # unit of work (charged to the iteration the compile happens in).
    COMPILE_PER_NODE = 40

    def node_cost(self, node):
        """Cost contribution of one IR node to its block's cycle count."""
        t = type(node)
        if t in (n.ConstIntNode, n.ConstNullNode, n.ParamNode, n.PiNode):
            return 0
        if t is n.BinOpNode or t is n.NegNode:
            return self.ARITHMETIC
        if t is n.CompareNode:
            return self.COMPARE
        if t is n.PhiNode:
            return 0  # phis cost via edge moves
        if t in (n.LoadFieldNode, n.StoreFieldNode):
            return self.FIELD_ACCESS
        if t in (n.LoadStaticNode, n.StoreStaticNode):
            return self.STATIC_ACCESS
        if t in (n.ArrayLoadNode, n.ArrayStoreNode):
            return self.ARRAY_ACCESS
        if t is n.ArrayLengthNode:
            return self.ARRAY_LENGTH
        if t is n.NewNode:
            return self.ALLOC_OBJECT
        if t is n.NewArrayNode:
            return self.ALLOC_ARRAY
        if t is n.InstanceOfNode:
            return self.EXACT_CHECK if node.exact else self.TYPE_CHECK
        if t is n.CheckCastNode:
            return self.CAST
        if t is n.InvokeNode:
            return self.call_cost(node.kind)
        if t is n.GuardNode:
            return self.GUARD
        if t is n.DeoptNode:
            return self.DEOPT
        if t is n.IfNode:
            return self.BRANCH
        if t is n.GotoNode:
            return self.JUMP
        if t is n.ReturnNode:
            return self.RETURN
        return 1

    def call_cost(self, kind):
        if kind in ("static", "special", "direct"):
            return self.CALL_DIRECT
        if kind == "virtual":
            return self.CALL_VIRTUAL
        return self.CALL_INTERFACE

    def compile_cost(self, node_count, passes=1):
        """Cycles charged for compiling a graph of *node_count* nodes."""
        return node_count * self.COMPILE_PER_NODE * max(1, passes)
