"""Call-tree structure and subtree metric tests (Eq. 1–3)."""

from repro.bytecode.method import Method
from repro.core.calltree import CallNode, NodeKind, make_root
from repro.ir import build_graph
from tests.helpers import shapes_program


def _method(name, size=5):
    return Method(
        name,
        [],
        "void",
        code=[None] * (size - 1) + [None],  # size instructions (dummy)
        is_static=True,
    )


class _FakeInvoke:
    """Stands in for an InvokeNode living in some parent graph."""

    def __init__(self):
        self.block = object()  # non-None: callsite still exists
        self.frequency = 1.0
        self.is_dispatched = False
        self.target = None


def _cutoff(parent, name, size=5, frequency=1.0):
    method = Method.__new__(Method)
    method.name = name
    method.param_types = []
    method.return_type = "void"
    method.code = [0] * size
    method.is_static = True
    method.is_abstract = False
    method.is_native = False
    method.klass = None
    method.max_locals = 0
    method.force_inline = False
    method.never_inline = False
    node = CallNode(NodeKind.CUTOFF, parent, _FakeInvoke(), method, frequency)
    if parent is not None:
        parent.add_child(node)
    return node


def _root():
    program = shapes_program()
    graph = build_graph(program.lookup_method("Main", "run"), program)
    return make_root(graph)


class TestStructure:
    def test_root_properties(self):
        root = _root()
        assert root.is_root
        assert root.kind == NodeKind.EXPANDED
        assert root.frequency == 1.0

    def test_subtree_iteration(self):
        root = _root()
        a = _cutoff(root, "a")
        b = _cutoff(root, "b")
        c = _cutoff(a, "c")
        names = {n.method.name for n in root.subtree() if n is not root}
        assert names == {"a", "b", "c"}

    def test_ancestors(self):
        root = _root()
        a = _cutoff(root, "a")
        c = _cutoff(a, "c")
        assert list(c.ancestors()) == [a, root]

    def test_recursion_depth(self):
        root = _root()
        a = _cutoff(root, "a")
        b = CallNode(NodeKind.CUTOFF, a, None, a.method, 1.0)
        a.add_child(b)
        c = CallNode(NodeKind.CUTOFF, b, None, a.method, 1.0)
        b.add_child(c)
        assert a.recursion_depth() == 0
        assert b.recursion_depth() == 1
        assert c.recursion_depth() == 2

    def test_describe_renders_tree(self):
        root = _root()
        _cutoff(root, "leaf")
        text = root.describe()
        assert "root" in text and "C" in text


class TestMetrics:
    def test_cutoff_size_estimate_is_bytecode_length(self):
        root = _root()
        node = _cutoff(root, "a", size=12)
        assert node.ir_size() == 12

    def test_s_irn_sums_subtree(self):
        root = _root()
        a = _cutoff(root, "a", size=10)
        _cutoff(a, "b", size=7)
        root_ir = root.graph.node_count()
        assert root.s_irn() == root_ir + 17
        assert a.s_irn() == 17

    def test_s_b_counts_only_cutoffs(self):
        root = _root()
        a = _cutoff(root, "a", size=10)
        a.kind = NodeKind.GENERIC
        _cutoff(root, "b", size=7)
        assert root.s_b() == 7

    def test_n_c(self):
        root = _root()
        a = _cutoff(root, "a")
        _cutoff(a, "b")
        deleted = _cutoff(root, "d")
        deleted.mark_deleted()
        assert root.n_c() == 2

    def test_deleted_detection_via_invoke(self):
        root = _root()
        node = _cutoff(root, "a")
        invoke = root.graph.invokes()[0]
        node.invoke = invoke
        assert not node.check_deleted()
        invoke.block = None  # simulates optimization removing it
        assert node.check_deleted()
        assert node.kind == NodeKind.DELETED
        assert root.n_c() == 0

    def test_inlined_nodes_contribute_zero_size(self):
        root = _root()
        a = _cutoff(root, "a", size=10)
        a.kind = NodeKind.INLINED
        _cutoff(a, "b", size=4)
        assert a.s_irn() == 4

    def test_polymorphic_size_is_typeswitch_footprint(self):
        root = _root()
        poly = CallNode(NodeKind.POLYMORPHIC, root, None, None, 1.0)
        root.add_child(poly)
        _cutoff(poly, "t1")
        _cutoff(poly, "t2")
        assert poly.ir_size() == 4
