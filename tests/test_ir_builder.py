"""SSA construction tests: phis, loops, stamps, invoke metadata."""

import pytest

from repro.bytecode import MethodBuilder
from repro.errors import IRError
from repro.ir import build_graph, check_graph, format_graph
from repro.ir import nodes as n
from repro.ir import stamps as stm
from tests.helpers import fresh_program, run_static, shapes_program, single_method_program


def _graph_of(program, class_name, method_name, profiles=None):
    method = program.lookup_method(class_name, method_name)
    graph = build_graph(method, program, profiles)
    check_graph(graph, program)
    return graph


class TestStraightLine:
    def test_parameters_become_nodes(self):
        def build(b):
            b.load(0).load(1).add().retv()

        program = single_method_program(build, params=("int", "int"))
        graph = _graph_of(program, "T", "f")
        assert len(graph.params) == 2
        assert all(isinstance(p, n.ParamNode) for p in graph.params)
        assert graph.params[0].stamp == stm.int_stamp()

    def test_receiver_param_stamp(self):
        program = shapes_program()
        graph = _graph_of(program, "Square", "area")
        receiver = graph.params[0]
        assert receiver.stamp.type_name == "Square"
        assert receiver.stamp.non_null

    def test_dup_shares_node(self):
        def build(b):
            b.load(0).dup().mul().retv()

        program = single_method_program(build)
        graph = _graph_of(program, "T", "f")
        (mul,) = [x for x in graph.entry.instrs if isinstance(x, n.BinOpNode)]
        assert mul.inputs[0] is mul.inputs[1]


class TestJoinsAndLoops:
    def test_if_join_creates_phi(self):
        def build(b):
            other = b.new_label()
            join = b.new_label()
            b.load(0).if_true(other)
            b.const(10).store(1).goto(join)
            b.place(other).const(20).store(1)
            b.place(join).load(1).retv()

        program = single_method_program(build)
        graph = _graph_of(program, "T", "f")
        phis = [p for block in graph.blocks for p in block.phis]
        assert len(phis) == 1
        values = sorted(i.value for i in phis[0].inputs)
        assert values == [10, 20]

    def test_loop_phi(self):
        def build(b):
            loop = b.new_label()
            done = b.new_label()
            acc = b.alloc_local()
            b.const(0).store(acc)
            b.place(loop).load(0).const(0).le().if_true(done)
            b.load(acc).load(0).add().store(acc)
            b.load(0).const(1).sub().store(0)
            b.goto(loop)
            b.place(done).load(acc).retv()

        program = single_method_program(build)
        graph = _graph_of(program, "T", "f")
        loop_phis = [p for block in graph.blocks for p in block.phis]
        # acc and the decremented parameter both need loop phis.
        assert len(loop_phis) == 2

    def test_trivial_phis_removed(self):
        def build(b):
            # A join where the local is identical on both paths.
            other = b.new_label()
            join = b.new_label()
            b.const(7).store(1)
            b.load(0).if_true(other)
            b.goto(join)
            b.place(other)
            b.place(join)
            b.load(1).retv()

        program = single_method_program(build)
        graph = _graph_of(program, "T", "f")
        assert not any(block.phis for block in graph.blocks)

    def test_unreachable_code_skipped(self):
        def build(b):
            b.load(0).retv()
            b.const(999).retv()  # dead

        program = single_method_program(build)
        graph = _graph_of(program, "T", "f")
        consts = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.ConstIntNode) and x.value == 999
        ]
        assert not consts


class TestInvokes:
    def test_invoke_metadata_without_profiles(self):
        program = shapes_program()
        graph = _graph_of(program, "Main", "total")
        (invoke,) = graph.invokes()
        assert invoke.kind == "interface"
        assert invoke.declared_class == "Shape"
        assert invoke.receiver_types == []

    def test_invoke_profile_snapshot(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        graph = _graph_of(program, "Main", "total", interp.profiles)
        (invoke,) = graph.invokes()
        types = dict(invoke.receiver_types)
        assert set(types) == {"Square", "Circle"}
        assert invoke.bci >= 0

    def test_branch_probability_from_profile(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        graph = _graph_of(program, "Main", "run", interp.profiles)
        ifs = [
            block.terminator
            for block in graph.blocks
            if isinstance(block.terminator, n.IfNode)
        ]
        probabilities = sorted(i.probability for i in ifs)
        assert probabilities[0] < 0.05  # loop exit taken rarely

    def test_void_invoke_produces_no_value(self):
        program = fresh_program()
        holder = program.define_class("H", is_abstract=True)
        b = MethodBuilder("log", ["int"], "void", is_static=True)
        b.load(0).invokestatic("Builtins", "print").ret()
        holder.add_method(b.build())
        b = MethodBuilder("f", [], "void", is_static=True)
        b.const(3).invokestatic("H", "log").ret()
        holder.add_method(b.build())
        graph = _graph_of(program, "H", "f")
        (invoke,) = graph.invokes()
        assert invoke.stamp.kind == stm.Stamp.VOID
        assert not invoke.uses


class TestBuilderErrors:
    def test_native_method_rejected(self):
        program = fresh_program()
        method = program.lookup_method("Builtins", "print")
        with pytest.raises(IRError):
            build_graph(method, program)

    def test_format_graph_smoke(self):
        program = shapes_program()
        graph = _graph_of(program, "Main", "run")
        text = format_graph(graph, include_frequency=True)
        assert "Invoke" in text and "B0" in text
