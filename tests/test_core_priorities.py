"""Hand-computed checks of the paper's formulas (Eq. 4–8, 12–14)."""

import math

import pytest

from repro.core.calltree import CallNode, NodeKind
from repro.core.params import InlinerParams
from repro.core.priorities import (
    exploration_penalty,
    intrinsic_priority,
    local_benefit,
    priority,
    recursion_penalty,
)
from repro.core.thresholds import (
    expansion_threshold,
    inline_threshold,
    should_expand,
    should_inline,
)
from tests.test_core_calltree import _cutoff, _root


class TestLocalBenefit:
    def test_cutoff_uses_concrete_args(self):
        root = _root()
        node = _cutoff(root, "a", frequency=10.0)
        node.concrete_arg_count = 2
        assert local_benefit(node) == 10.0 * 3  # f·(1+N_s)

    def test_expanded_uses_trial_opts(self):
        root = _root()
        node = _cutoff(root, "a", frequency=4.0)
        node.kind = NodeKind.EXPANDED
        node.trial_opt_count = 5
        assert local_benefit(node) == 4.0 * 6

    def test_polymorphic_weighted_sum(self):
        root = _root()
        poly = CallNode(NodeKind.POLYMORPHIC, root, None, None, 8.0)
        root.add_child(poly)
        a = _cutoff(poly, "a", frequency=8.0 * 0.75)
        a.probability = 0.75
        b = _cutoff(poly, "b", frequency=8.0 * 0.25)
        b.probability = 0.25
        expected = 0.75 * local_benefit(a) + 0.25 * local_benefit(b)
        assert local_benefit(poly) == pytest.approx(expected)

    def test_dead_and_generic_are_zero(self):
        root = _root()
        node = _cutoff(root, "a", frequency=10.0)
        node.kind = NodeKind.GENERIC
        assert local_benefit(node) == 0.0
        node.kind = NodeKind.DELETED
        assert local_benefit(node) == 0.0


class TestPriorities:
    def test_cutoff_priority_is_benefit_density(self):
        params = InlinerParams()
        root = _root()
        node = _cutoff(root, "a", size=10, frequency=20.0)
        assert intrinsic_priority(node, params) == pytest.approx(20.0 / 10)

    def test_expanded_takes_max_child(self):
        params = InlinerParams()
        root = _root()
        parent = _cutoff(root, "p")
        parent.kind = NodeKind.EXPANDED
        low = _cutoff(parent, "low", size=10, frequency=1.0)
        high = _cutoff(parent, "high", size=10, frequency=50.0)
        assert intrinsic_priority(parent, params) == pytest.approx(
            intrinsic_priority(high, params)
        )

    def test_exploration_penalty_formula(self):
        params = InlinerParams(p1=1e-3, p2=1e-4, b1=0.5, b2=10.0)
        root = _root()
        node = _cutoff(root, "a", size=100)
        _cutoff(node, "b", size=50)
        # S_irn = 150, S_b = 150 (both cutoffs), N_c = 2.
        expected = 1e-3 * 150 + 1e-4 * 150 - 0.5 * max(0.0, 10 - 4)
        assert exploration_penalty(node, params) == pytest.approx(expected)

    def test_priority_subtracts_penalty(self):
        params = InlinerParams()
        root = _root()
        node = _cutoff(root, "a", size=10, frequency=5.0)
        assert priority(node, params) == pytest.approx(
            intrinsic_priority(node, params) - exploration_penalty(node, params)
        )


class TestRecursionPenalty:
    def test_free_until_depth_one(self):
        params = InlinerParams()
        root = _root()
        a = _cutoff(root, "a", frequency=3.0)
        b = CallNode(NodeKind.CUTOFF, a, None, a.method, 3.0)
        a.add_child(b)
        # depth 1: 2^1 - 2 = 0 -> no penalty yet.
        assert recursion_penalty(b, params) == 0.0

    def test_exponential_growth(self):
        params = InlinerParams()
        root = _root()
        chain = _cutoff(root, "a", frequency=1.0)
        nodes = [chain]
        for _ in range(4):
            nxt = CallNode(NodeKind.CUTOFF, nodes[-1], None, chain.method, 1.0)
            nodes[-1].add_child(nxt)
            nodes.append(nxt)
        p2 = recursion_penalty(nodes[2], params)  # depth 2: 2^2-2 = 2
        p3 = recursion_penalty(nodes[3], params)  # depth 3: 2^3-2 = 6
        p4 = recursion_penalty(nodes[4], params)  # depth 4: 14
        assert (p2, p3, p4) == (2.0, 6.0, 14.0)

    def test_frequency_multiplier(self):
        params = InlinerParams()
        root = _root()
        a = _cutoff(root, "a", frequency=10.0)
        b = CallNode(NodeKind.CUTOFF, a, None, a.method, 10.0)
        a.add_child(b)
        c = CallNode(NodeKind.CUTOFF, b, None, a.method, 10.0)
        b.add_child(c)
        assert recursion_penalty(c, params) == 10.0 * 2.0


class TestThresholds:
    def test_expansion_threshold_rises_with_root_size(self):
        params = InlinerParams(r1=3000, r2=500)
        t_small = expansion_threshold(1000, params)
        t_at_r1 = expansion_threshold(3000, params)
        t_large = expansion_threshold(5000, params)
        assert t_small < t_at_r1 == 1.0 < t_large
        assert t_large == pytest.approx(math.exp(4))

    def test_should_expand_decision(self):
        params = InlinerParams(r1=3000, r2=500)
        # benefit density 2.0 passes while the tree is small...
        assert should_expand(20.0, 10, 1000, params)
        # ...but not once the root has grown far past r1.
        assert not should_expand(20.0, 10, 6000, params)

    def test_inline_threshold_monotone_in_both_sizes(self):
        params = InlinerParams(t1=0.005, t2=120)
        base = inline_threshold(1000, 50, params)
        bigger_root = inline_threshold(5000, 50, params)
        bigger_callee = inline_threshold(1000, 2000, params)
        assert base < bigger_root
        assert base < bigger_callee

    def test_inline_threshold_forgives_small_methods(self):
        """The paper's println example: near the budget limit, a small
        method still passes while a large one does not."""
        params = InlinerParams(t1=0.005, t2=120)
        root = 6000
        ratio = 0.08
        assert should_inline(ratio, root, 20, params)
        assert not should_inline(ratio, root, 4000, params)

    def test_threshold_guard_against_overflow(self):
        params = InlinerParams(t1=0.005, t2=0.001)
        assert inline_threshold(10 ** 6, 10 ** 6, params) == math.inf
