"""The metrics half of the observability subsystem.

A :class:`MetricsRegistry` holds counters, gauges and fixed-bucket
histograms addressable by dotted names (``jit.compile.cycles``,
``interp.ops``, ``codecache.installed_bytes`` — the full namespace is
documented in ``docs/observability.md``). Instruments are created on
first use and shared afterwards, so instrumentation sites never need to
pre-register anything.

The default registry on every VM object is :data:`NULL_METRICS`, a
truly inert no-op: its instruments accumulate nothing and its snapshot
is always empty, so an un-instrumented run pays only a predicate check
(``registry.enabled``) on the rare cold paths that consult it.
"""

import math


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def snapshot(self):
        return {"type": self.kind, "value": self.value}

    def __repr__(self):
        return "<Counter %s=%d>" % (self.name, self.value)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def add(self, amount):
        self.value += amount

    def snapshot(self):
        return {"type": self.kind, "value": self.value}

    def __repr__(self):
        return "<Gauge %s=%r>" % (self.name, self.value)


#: Default histogram bucket upper bounds: a 1-2-5 geometric ladder wide
#: enough for every quantity the VM records (node counts, code sizes,
#: cycle counts). Values above the last bound land in an overflow
#: bucket whose representative is the observed maximum.
DEFAULT_BOUNDS = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1000, 2000, 5000, 10000, 20000, 50000,
    100000, 200000, 500000, 1000000,
)


class Histogram:
    """A cheap fixed-bucket histogram with p50/p90/p99 estimates.

    Percentiles are bucket-resolution approximations: the reported
    value is the upper bound of the bucket containing the requested
    rank, clamped to the observed min/max. That is exact enough for
    telemetry (order-of-magnitude distributions of compile sizes and
    cycle counts) and costs one bisect per record.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name, bounds=None):
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def record(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """The approximate *q*-quantile (``q`` in [0, 1])."""
        if self.count == 0:
            return 0.0
        rank = math.ceil(q * self.count)
        if rank <= 0:
            rank = 1
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.bounds):
                    estimate = self.bounds[index]
                else:
                    estimate = self.max
                return float(min(max(estimate, self.min), self.max))
        return float(self.max)

    @property
    def p50(self):
        return self.percentile(0.50)

    @property
    def p90(self):
        return self.percentile(0.90)

    @property
    def p99(self):
        return self.percentile(0.99)

    def snapshot(self):
        return {
            "type": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }

    def __repr__(self):
        return "<Histogram %s n=%d p50=%.0f p99=%.0f>" % (
            self.name, self.count, self.p50, self.p99,
        )


class MetricsRegistry:
    """Dotted-name registry of counters, gauges and histograms."""

    enabled = True

    def __init__(self):
        self._metrics = {}

    def _instrument(self, name, factory, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, cls):
            raise TypeError(
                "metric %r already registered as %s" % (name, metric.kind)
            )
        return metric

    def counter(self, name):
        return self._instrument(name, lambda: Counter(name), Counter)

    def gauge(self, name):
        return self._instrument(name, lambda: Gauge(name), Gauge)

    def histogram(self, name, bounds=None):
        return self._instrument(name, lambda: Histogram(name, bounds), Histogram)

    def get(self, name):
        """The instrument registered under *name*, or None."""
        return self._metrics.get(name)

    def value(self, name, default=0):
        """Scalar shortcut: the value of a counter/gauge, or *default*."""
        metric = self._metrics.get(name)
        if metric is None or not hasattr(metric, "value"):
            return default
        return metric.value

    def names(self):
        return sorted(self._metrics)

    def __contains__(self, name):
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)

    def snapshot(self):
        """``{dotted.name: {type, ...}}`` for JSON export."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }


class _NullInstrument:
    """Shared write-only sink behind :data:`NULL_METRICS`."""

    __slots__ = ()
    kind = "null"
    name = "<null>"
    value = 0
    count = 0
    total = 0
    min = None
    max = None
    mean = 0.0
    p50 = 0.0
    p90 = 0.0
    p99 = 0.0

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def add(self, amount):
        pass

    def record(self, value):
        pass

    def percentile(self, q):
        return 0.0

    def snapshot(self):
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The default, inert registry: accepts every write, keeps nothing."""

    __slots__ = ()
    enabled = False

    def counter(self, name):
        return _NULL_INSTRUMENT

    def gauge(self, name):
        return _NULL_INSTRUMENT

    def histogram(self, name, bounds=None):
        return _NULL_INSTRUMENT

    def get(self, name):
        return None

    def value(self, name, default=0):
        return default

    def names(self):
        return []

    def __contains__(self, name):
        return False

    def __len__(self):
        return 0

    def snapshot(self):
        return {}


NULL_METRICS = NullMetricsRegistry()
