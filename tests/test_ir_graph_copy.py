"""Differential and invariant tests for ``Graph.copy``.

Two copy implementations coexist: the constructor-based reference copy
and the slot-based fast path (the default). Their contract is
structural identity — same node ids, classes, inputs, stamps, use
lists, block ids, frequencies, predecessor order and invoke metadata —
checked here by fingerprinting both clones of the same graph. The
remaining tests pin the invariants any copy must keep: node_map
totality, metadata preservation, and full independence of the clone
from its source.
"""

import pytest

from repro.interp import Interpreter
from repro.interp.profiles import ProfileStore
from repro.ir import build_graph
from repro.ir import nodes as n
from repro.ir.frequency import annotate_frequencies
from repro.runtime import VMState
from tests.helpers import shapes_program


def _profiled_graph(method_name="run", class_name="Main"):
    """A graph with real profile metadata: branch probabilities,
    frequencies and receiver snapshots from an interpreted run."""
    program = shapes_program()
    profiles = ProfileStore()
    interp = Interpreter(VMState(program), profiles=profiles)
    interp.execute(program.lookup_method("Main", "run"), [])
    graph = build_graph(
        program.lookup_method(class_name, method_name), program, profiles
    )
    annotate_frequencies(graph)
    return graph


def _node_fingerprint(node):
    entry = (
        node.id,
        type(node).__name__,
        tuple(x.id if x is not None else None for x in node.inputs),
        node.block.id if node.block is not None else None,
        node.stamp._key() if node.stamp is not None else None,
        tuple(sorted(use.id for use in node.uses)),
    )
    if isinstance(node, n.InvokeNode):
        entry += (
            node.kind,
            node.declared_class,
            node.method_name,
            node.target.qualified_name if node.target is not None else None,
            tuple(node.receiver_types),
            node.megamorphic,
            node.bci,
            node.frequency,
        )
    if isinstance(node, n.IfNode):
        entry += (
            node.true_block.id,
            node.false_block.id,
            node.probability,
        )
    if isinstance(node, n.GotoNode):
        entry += (node.target.id,)
    return entry


def _fingerprint(graph):
    return {
        "nodes": [_node_fingerprint(node) for node in graph.all_nodes()],
        "blocks": [
            (
                block.id,
                block.frequency,
                tuple(p.id for p in block.preds),
                len(block.phis),
                len(block.instrs),
            )
            for block in graph.blocks
        ],
        "params": [p.id for p in graph.params],
    }


# ----------------------------------------------------------------------
# Fast copy == reference copy
# ----------------------------------------------------------------------


GRAPHS = ["run", "total", "area_square"]


def _graph_for(name):
    if name == "run":
        return _profiled_graph("run")
    if name == "total":
        return _profiled_graph("total")
    return _profiled_graph("area", "Square")


@pytest.mark.parametrize("name", GRAPHS)
def test_fast_copy_matches_reference(name):
    graph = _graph_for(name)
    fast, fast_map = graph._copy_fast()
    reference, ref_map = graph._copy_reference()
    assert _fingerprint(fast) == _fingerprint(reference)
    # And both match the numbering contract against the source.
    assert set(fast_map) == set(ref_map)
    for node in fast_map:
        assert fast_map[node].id == ref_map[node].id


def _inlined_graph(optimize=False):
    program = shapes_program()
    profiles = ProfileStore()
    interp = Interpreter(VMState(program), profiles=profiles)
    interp.execute(program.lookup_method("Main", "run"), [])
    graph = build_graph(
        program.lookup_method("Main", "run"), program, profiles
    )
    annotate_frequencies(graph)
    invokes = [iv for iv in graph.invokes() if iv.kind == "static"]
    assert invokes
    callee = build_graph(program.lookup_method("Main", "total"), program)
    graph.inline_call(invokes[0], callee)
    annotate_frequencies(graph)
    if optimize:
        from repro.jit.config import JitConfig
        from repro.opts.pipeline import OptimizationPipeline

        OptimizationPipeline(program, JitConfig().optimizer).run(graph)
    return graph


def test_fast_copy_matches_reference_after_inline_and_optimize():
    # Inlined-then-optimized graphs have imported blocks, phis from
    # merges, and split blocks — the shape every real copy sees.
    graph = _inlined_graph(optimize=True)
    fast, _ = graph._copy_fast()
    reference, _ = graph._copy_reference()
    assert _fingerprint(fast) == _fingerprint(reference)


def test_fast_copy_handles_raw_post_inline_block_order():
    # Straight after inline_call the continuation block precedes the
    # imported callee blocks in the block list, so some inputs appear
    # *after* their users in iteration order. The fast copy must wire
    # them via its deferred pass (the reference copy cannot copy this
    # shape; the system only copies after the pipeline normalizes it).
    graph = _inlined_graph(optimize=False)
    clone, node_map = graph._copy_fast()
    originals = list(graph.all_nodes())
    assert set(node_map) == set(originals)
    for original in originals:
        copied = node_map[original]
        assert type(copied) is type(original)
        assert [node_map[x] if x is not None else None
                for x in original.inputs] == copied.inputs
        assert {node_map[u] for u in original.uses
                if u in node_map} <= copied.uses
    # Clone uses contain exactly the mapped users (no extras).
    for original in originals:
        copied = node_map[original]
        assert len(copied.uses) == len(
            {node_map[u] for u in original.uses if u in node_map}
        )


# ----------------------------------------------------------------------
# node_map totality and metadata preservation
# ----------------------------------------------------------------------


def test_node_map_is_total():
    graph = _profiled_graph()
    clone, node_map = graph.copy()
    originals = list(graph.all_nodes())
    assert set(node_map.keys()) == set(originals)
    clones = set(clone.all_nodes())
    for original in originals:
        assert node_map[original] in clones
    # The map is a bijection onto the clone's nodes.
    assert len({id(v) for v in node_map.values()}) == len(originals)
    assert len(clones) == len(originals)


def test_metadata_preserved():
    graph = _profiled_graph()
    clone, node_map = graph.copy()
    for original, copied in node_map.items():
        assert type(copied) is type(original)
        if original.stamp is None:
            assert copied.stamp is None
        else:
            assert copied.stamp._key() == original.stamp._key()
        if isinstance(original, n.InvokeNode):
            assert copied.kind == original.kind
            assert copied.target is original.target
            assert copied.receiver_types == original.receiver_types
            assert copied.receiver_types is not original.receiver_types
            assert copied.bci == original.bci
            assert copied.frequency == original.frequency
        if isinstance(original, n.IfNode):
            assert copied.probability == original.probability
    for src_block, dst_block in zip(graph.blocks, clone.blocks):
        assert dst_block.frequency == src_block.frequency


def test_copy_is_independent():
    graph = _profiled_graph()
    clone, node_map = graph.copy()
    before = _fingerprint(graph)

    # Mutate the clone heavily: rewire uses, change metadata, drop
    # instructions.
    for invoke in clone.invokes():
        invoke.frequency = -1.0
        invoke.receiver_types.append(("Poisoned", 1.0))
    for block in clone.blocks:
        block.frequency = -5.0
        if block.instrs:
            victim = block.instrs[-1]
            if not victim.uses:
                for x in victim.inputs:
                    x.uses.discard(victim)
                block.instrs.pop()
            break

    assert _fingerprint(graph) == before


def test_copy_ids_do_not_alias_source():
    # Fresh node ids in the clone continue from the clone's own
    # counter, never from the source graph's.
    graph = _profiled_graph()
    clone, _ = graph.copy()
    new_block = clone.new_block()
    assert new_block.id == len(graph.blocks)
    assert all(new_block.id != b.id for b in clone.blocks[:-1])


def test_env_knob_pins_reference(monkeypatch):
    import importlib

    import repro.ir.graph as graph_mod

    monkeypatch.setenv("REPRO_GRAPH_COPY", "reference")
    importlib.reload(graph_mod)
    try:
        assert graph_mod.FAST_COPY is False
    finally:
        monkeypatch.delenv("REPRO_GRAPH_COPY")
        importlib.reload(graph_mod)
        assert graph_mod.FAST_COPY is True
