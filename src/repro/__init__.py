"""Reproduction of "An Optimization-Driven Incremental Inline
Substitution Algorithm for Just-in-Time Compilers" (Prokopec, Duboscq,
Leopoldseder, Würthinger; CGO 2019) on a from-scratch JIT substrate.

Quick tour (see README.md for the full map):

>>> from repro import compile_source, Engine, JitConfig, tuned_inliner
>>> program = compile_source('''
... object Main { def run(): int { return 21 * 2; } }
... ''')
>>> engine = Engine(program, JitConfig(), inliner=tuned_inliner())
>>> engine.run_iteration("Main", "run").value
42

Subpackages:

- :mod:`repro.core` — the paper's incremental inliner (the contribution)
- :mod:`repro.baselines` — greedy / C2-style / ablation policies
- :mod:`repro.lang` — the minij front end and standard library
- :mod:`repro.bytecode` / :mod:`repro.runtime` / :mod:`repro.interp` —
  the bytecode world and its profiling interpreter
- :mod:`repro.ir` / :mod:`repro.opts` / :mod:`repro.backend` — SSA IR,
  optimizer, machine backend and cost model
- :mod:`repro.jit` — the tiered virtual machine
- :mod:`repro.bench` — the paper's evaluation suite and harness
- :mod:`repro.tools` — CLI entry points (run / trace / disasm / bench)
"""

__version__ = "1.0.0"

from repro.baselines import tuned_inliner
from repro.core import IncrementalInliner, InlinerParams, InlineTracer
from repro.jit import Engine, JitConfig
from repro.lang import compile_source

__all__ = [
    "__version__",
    "compile_source",
    "Engine",
    "JitConfig",
    "IncrementalInliner",
    "InlinerParams",
    "InlineTracer",
    "tuned_inliner",
]
