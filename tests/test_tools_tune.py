"""Tests for the parameter-tuning tool (§IV's grid-search process)."""

from repro.tools.tune import DEFAULT_GRID, geomean, sweep


class TestSweep:
    def test_tiny_grid_ranks_configurations(self):
        grid = {
            "r1": [3000.0],
            "r2": [500.0],
            "t1": [0.005, 0.0001],
            "t2": [120.0],
        }
        messages = []
        ranked, baseline = sweep(
            ["pmd"], grid, 0.1, 1, 0.05, log=messages.append
        )
        assert len(ranked) == 2
        assert "pmd" in baseline
        # Sorted best-first among admissible configs.
        admissible = [entry for entry in ranked if entry[2]]
        if len(admissible) == 2:
            assert admissible[0][0] <= admissible[1][0]
        assert messages  # progress was logged

    def test_regression_rule(self):
        """A configuration that inlines nothing regresses massively vs
        greedy and must be marked inadmissible under the 5% rule."""
        grid = {
            "r1": [0.0],     # expansion threshold astronomically strict
            "r2": [1.0],
            "t1": [1000.0],  # inlining threshold unreachable
            "t2": [1.0],
        }
        ranked, _ = sweep(["pmd"], grid, 0.1, 1, 0.05, log=lambda *_: None)
        ((score, worst, admissible, _assignment),) = ranked
        assert worst > 1.05
        assert not admissible

    def test_default_grid_shape(self):
        assert set(DEFAULT_GRID) == {"r1", "r2", "t1", "t2"}
        assert all(len(v) >= 2 for k, v in DEFAULT_GRID.items() if k != "r2")

    def test_geomean(self):
        assert abs(geomean([1.0, 4.0]) - 2.0) < 1e-9
