"""``PrintInlining``-style inlining-decision explanations.

Answers the question every inliner-tuning session starts with: *why was
(or wasn't) this call site inlined into that root?* — from the decision
provenance the flight recorder keeps (see ``docs/flight-recorder.md``).

Two sources, one report:

- **live**: run a minij program (or a registered benchmark) under full
  observability and explain the recorded compilations;
- **replay**: load a saved JSONL recording — a flight dump
  (``Engine.dump_flight`` / ``stats --flight`` / ``--save``) or a full
  event log (``stats --events``) — and explain it offline.

Examples::

    python -m repro.tools.explain program.minij
    python -m repro.tools.explain program.minij --root Main.run
    python -m repro.tools.explain program.minij --root Main.run --site B.foo
    python -m repro.tools.explain recording.jsonl --site Seq.foreach
    python -m repro.tools.explain kiama --iterations 8 --save flight.jsonl
"""

import argparse
import os

from repro.jit import Engine, JitConfig
from repro.obs import Observability, read_flight_jsonl
from repro.tools.common import (
    add_inliner_argument,
    compile_file,
    make_inliner,
    method_argument,
)

#: Record kinds consumed from a recording, in the inline.* namespace
#: plus the engine's tier/deopt events.
_DECISION_KINDS = (
    "inline.expand",
    "inline.decline",
    "inline.inline",
    "inline.reject",
    "inline.typeswitch",
    "inline.speculation",
    "inline.typecheck",
)


# ----------------------------------------------------------------------
# Grouping records into compilations
# ----------------------------------------------------------------------


class Compilation:
    """One recorded compilation: root, decision stream, install info."""

    __slots__ = ("index", "root", "decisions", "terminate", "install")

    def __init__(self, index, root):
        self.index = index
        self.root = root
        self.decisions = []  # (kind-without-prefix, attrs) in order
        self.terminate = None
        self.install = None


class CallSite:
    """The recorded history of one candidate callsite in one compilation."""

    __slots__ = ("method", "bci", "path", "order", "events")

    def __init__(self, method, bci, path, order):
        self.method = method
        self.bci = bci
        self.path = path
        self.order = order
        self.events = []  # (kind, attrs)

    @property
    def depth(self):
        return max(1, len(self.path))

    def verdict(self):
        """(decision, reason, attrs) — the callsite's final verdict."""
        final = ("never-considered", None, {})
        for kind, attrs in self.events:
            reason = attrs.get("reason")
            if kind == "inline":
                final = ("inlined", None, attrs)
            elif kind == "typeswitch":
                final = ("typeswitch", None, attrs)
            elif kind == "expand":
                if final[0] not in ("inlined", "typeswitch"):
                    final = ("expanded-not-inlined", None, attrs)
            elif kind == "reject":
                if final[0] != "inlined":
                    final = ("not-inlined", reason, attrs)
            elif kind == "decline":
                if final[0] == "never-considered" or final[0] == "not-expanded":
                    final = ("not-expanded", reason, attrs)
            elif kind == "typecheck":
                if attrs.get("speculate"):
                    final = ("typecheck-speculated", None, attrs)
                else:
                    final = ("typecheck-kept", reason, attrs)
        return final


def group_compilations(records):
    """Fold flight records into :class:`Compilation` groups plus the
    deopt timeline."""
    compilations = []
    current = None
    deopts = []
    for record in records:
        kind = record["kind"]
        attrs = record["attrs"]
        if kind == "inline.begin":
            current = Compilation(len(compilations) + 1, attrs.get("root"))
            compilations.append(current)
        elif kind == "inline.terminate":
            if current is not None:
                current.terminate = attrs
        elif kind in _DECISION_KINDS:
            if current is not None:
                current.decisions.append((kind[len("inline."):], attrs))
        elif kind in ("jit.install", "osr.install"):
            # OSR roots are tagged "Method@osr<bci>" by the compiler
            # (matching the engine's (method, backedge bci) cache key),
            # while the install record carries method and bci
            # separately — reconstruct the root name to pair them.
            root = attrs.get("method")
            if kind == "osr.install":
                root = "%s@osr%s" % (root, attrs.get("bci"))
            for compilation in reversed(compilations):
                if (
                    compilation.root == root
                    and compilation.install is None
                ):
                    compilation.install = attrs
                    break
        elif kind == "deopt":
            deopts.append(attrs)
    return compilations, deopts


def collect_sites(compilation):
    """The compilation's callsites, in first-seen order."""
    sites = {}
    for kind, attrs in compilation.decisions:
        method = attrs.get("method") or attrs.get("callsite")
        if method is None:
            continue
        key = (tuple(attrs.get("path") or ()), method, attrs.get("bci", -1))
        site = sites.get(key)
        if site is None:
            site = sites[key] = CallSite(
                method, attrs.get("bci", -1), list(key[0]), len(sites)
            )
        site.events.append((kind, attrs))
    return sorted(sites.values(), key=lambda s: s.order)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _fmt(value, spec="%.3f"):
    if value is None:
        return "?"
    if isinstance(value, float):
        return spec % value
    return str(value)


def _verdict_line(site):
    decision, reason, attrs = site.verdict()
    if decision == "inlined":
        return "inline: ratio=%s thr=%s" % (
            _fmt(attrs.get("ratio")), _fmt(attrs.get("threshold")),
        )
    if decision == "typeswitch":
        return "typeswitch over {%s}" % ", ".join(attrs.get("targets") or ())
    if decision == "expanded-not-inlined":
        return "expanded, not inlined: B_L=%s |ir|=%s thr=%s" % (
            _fmt(attrs.get("benefit"), "%.2f"),
            _fmt(attrs.get("size"), "%d"),
            _fmt(attrs.get("threshold")),
        )
    if decision == "not-inlined":
        return "not inlined (%s): ratio=%s thr=%s" % (
            reason or "threshold",
            _fmt(attrs.get("ratio")), _fmt(attrs.get("threshold")),
        )
    if decision == "not-expanded":
        return "not expanded (%s): B_L=%s |ir|=%s thr=%s" % (
            reason or "threshold",
            _fmt(attrs.get("benefit"), "%.2f"),
            _fmt(attrs.get("size"), "%d"),
            _fmt(attrs.get("threshold")),
        )
    if decision == "typecheck-speculated":
        return "typecheck speculated: %s %s pinned to exact %s" % (
            attrs.get("check"),
            attrs.get("type"),
            attrs.get("observed"),
        )
    if decision == "typecheck-kept":
        return "typecheck kept (%s): %s %s observed=%s" % (
            reason or "?",
            attrs.get("check"),
            attrs.get("type"),
            attrs.get("observed"),
        )
    return decision


def _speculation_note(site):
    for kind, attrs in site.events:
        if kind == "speculation":
            if attrs.get("speculate"):
                return "  [guard: coverage=%s site=%s]" % (
                    _fmt(attrs.get("coverage"), "%.2f"),
                    attrs.get("site") or "?",
                )
            return "  [fallback: %s coverage=%s]" % (
                attrs.get("reason"),
                _fmt(attrs.get("coverage"), "%.2f"),
            )
    return ""


def render_tree(compilation):
    """One compilation as a ``PrintInlining``-style indented tree."""
    lines = []
    header = "compile #%d %s" % (compilation.index, compilation.root or "?")
    if compilation.install is not None:
        header += " (%s IR nodes, %s machine instrs)" % (
            compilation.install.get("nodes"),
            compilation.install.get("code_size"),
        )
    lines.append(header)
    for site in collect_sites(compilation):
        bci = "@%s " % site.bci if site.bci >= 0 else ""
        lines.append(
            "%s%s%-28s %s%s"
            % (
                "  " * site.depth,
                bci,
                site.method,
                _verdict_line(site),
                _speculation_note(site),
            )
        )
    if compilation.terminate is not None:
        lines.append(
            "  terminated: %s (root %s nodes)"
            % (
                compilation.terminate.get("reason"),
                compilation.terminate.get("root_size"),
            )
        )
    return "\n".join(lines)


def render_site_history(compilations, root_pattern, site_pattern):
    """Every recorded decision for *site_pattern*, chronologically —
    the "why wasn't B.foo inlined into A.run?" answer."""
    lines = []
    matched = False
    for compilation in compilations:
        if not _matches(compilation.root, root_pattern):
            continue
        for site in collect_sites(compilation):
            if not _matches(site.method, site_pattern):
                continue
            matched = True
            where = " <- ".join(reversed(site.path)) or compilation.root
            bci = "@%d" % site.bci if site.bci >= 0 else ""
            lines.append(
                "%s%s into %s (compile #%d of %s):"
                % (site.method, bci, where, compilation.index,
                   compilation.root)
            )
            for kind, attrs in site.events:
                if kind == "typecheck":
                    # Type-check decisions are made once per build,
                    # outside the inlining rounds.
                    lines.append("  %s" % _event_line(kind, attrs))
                else:
                    lines.append("  round %s: %s" % (
                        attrs.get("round", "?"), _event_line(kind, attrs),
                    ))
            decision, reason, _ = site.verdict()
            lines.append(
                "  verdict: %s%s"
                % (decision, " (%s)" % reason if reason else "")
            )
    if not matched:
        roots = sorted({c.root for c in compilations if c.root})
        lines.append(
            "no recorded decision for site %r under root %r"
            % (site_pattern, root_pattern or "<any>")
        )
        lines.append(
            "recorded roots: %s" % (", ".join(roots) if roots else "<none>")
        )
    return "\n".join(lines)


def _event_line(kind, attrs):
    if kind == "expand":
        return "expand: B_L=%s |ir|=%s thr=%s prio=%s root_size=%s" % (
            _fmt(attrs.get("benefit"), "%.2f"),
            _fmt(attrs.get("size"), "%d"),
            _fmt(attrs.get("threshold")),
            _fmt(attrs.get("priority")),
            _fmt(attrs.get("root_size"), "%d"),
        )
    if kind == "decline":
        return (
            "declined expansion (%s): B_L=%s |ir|=%s thr=%s prio=%s "
            "root_size=%s"
            % (
                attrs.get("reason", "threshold"),
                _fmt(attrs.get("benefit"), "%.2f"),
                _fmt(attrs.get("size"), "%d"),
                _fmt(attrs.get("threshold")),
                _fmt(attrs.get("priority")),
                _fmt(attrs.get("root_size"), "%d"),
            )
        )
    if kind == "inline":
        return "inlined: ratio=%s thr=%s" % (
            _fmt(attrs.get("ratio")), _fmt(attrs.get("threshold")),
        )
    if kind == "reject":
        return "rejected (%s): ratio=%s thr=%s" % (
            attrs.get("reason", "threshold"),
            _fmt(attrs.get("ratio")), _fmt(attrs.get("threshold")),
        )
    if kind == "typeswitch":
        return "typeswitch over {%s}" % ", ".join(attrs.get("targets") or ())
    if kind == "speculation":
        return "speculation: %s (%s, coverage=%s)" % (
            "guard" if attrs.get("speculate") else "fallback",
            attrs.get("reason"),
            _fmt(attrs.get("coverage"), "%.2f"),
        )
    if kind == "typecheck":
        if attrs.get("speculate"):
            return "typecheck %s %s: speculated on exact %s (site %s)" % (
                attrs.get("check"),
                attrs.get("type"),
                attrs.get("observed"),
                attrs.get("site") or "?",
            )
        return "typecheck %s %s: kept (%s, observed=%s)" % (
            attrs.get("check"),
            attrs.get("type"),
            attrs.get("reason"),
            attrs.get("observed"),
        )
    return kind


def render_deopts(deopts, compilations):
    """The deopt timeline, each entry linked back to its guard."""
    lines = ["deopt timeline:"]
    guards = {}
    for compilation in compilations:
        for kind, attrs in compilation.decisions:
            if kind == "speculation" and attrs.get("site"):
                guards[attrs["site"]] = compilation.index
    for attrs in deopts:
        site = attrs.get("site")
        origin = (
            " (guard recorded in compile #%d)" % guards[site]
            if site in guards
            else ""
        )
        lines.append(
            "  deopt in %s at %s: %s%s"
            % (attrs.get("method"), site, attrs.get("reason"), origin)
        )
    return "\n".join(lines)


def render(records, root_pattern=None, site_pattern=None):
    """The full report for a record stream (see the CLI's modes)."""
    compilations, deopts = group_compilations(records)
    if site_pattern is not None:
        return render_site_history(compilations, root_pattern, site_pattern)
    selected = [
        c for c in compilations if _matches(c.root, root_pattern)
    ]
    parts = [render_tree(c) for c in selected]
    if not parts:
        roots = sorted({c.root for c in compilations if c.root})
        installs = sum(1 for r in records if r["kind"] == "jit.install")
        parts.append(
            "no recorded compilations%s"
            % (" for root %r" % root_pattern if root_pattern else "")
        )
        if not compilations and installs:
            parts.append(
                "(%d compilation(s) installed but no inlining provenance "
                "was recorded — only the incremental inliner traces its "
                "decisions; rerun with --inliner incremental)" % installs
            )
        if roots:
            parts.append("recorded roots: %s" % ", ".join(roots))
    if deopts:
        parts.append(render_deopts(deopts, compilations))
    return "\n\n".join(parts)


def _matches(name, pattern):
    if pattern is None:
        return True
    if name is None:
        return False
    return name == pattern or name.endswith("." + pattern)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _load_program(target):
    if target.endswith(".minij") or os.path.exists(target):
        return compile_file(target)
    from repro.bench.suite import get_benchmark

    try:
        return get_benchmark(target).load()
    except KeyError:
        raise SystemExit(
            "explain: %r is neither a file nor a registered benchmark"
            % target
        )


def _run_live(args):
    program = _load_program(args.target)
    obs = Observability(flight_capacity=args.capacity)
    engine = Engine(
        program,
        JitConfig(hot_threshold=args.hot_threshold),
        inliner=make_inliner(args.inliner),
        obs=obs,
    )
    class_name, method_name = args.entry
    for _ in range(args.iterations):
        engine.run_iteration(class_name, method_name)
    if args.save:
        obs.flight.save(args.save)
    return obs.flight.records()


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.explain", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "target",
        help="minij source file, a registered benchmark name, or a "
             ".jsonl recording (flight dump or event log) to replay",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="treat TARGET as a JSONL recording (implied by a .jsonl "
             "suffix)",
    )
    parser.add_argument(
        "--root", metavar="METHOD", default=None,
        help="only explain compilations of this root (e.g. Main.run)",
    )
    parser.add_argument(
        "--site", metavar="METHOD", default=None,
        help="print the recorded verdict history for this callsite "
             "(e.g. B.foo): why it was or wasn't inlined",
    )
    parser.add_argument(
        "--entry", type=method_argument, default=("Main", "run"),
        help="entry point as Class.method (default Main.run)",
    )
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument("--hot-threshold", type=int, default=25)
    parser.add_argument(
        "--capacity", type=int, default=4096,
        help="flight-recorder ring capacity for live runs (default 4096)",
    )
    parser.add_argument(
        "--save", metavar="PATH", default=None,
        help="also save the live run's flight recording to PATH as JSONL",
    )
    add_inliner_argument(parser)
    args = parser.parse_args(argv)

    if args.replay or args.target.endswith(".jsonl"):
        records = read_flight_jsonl(args.target)
    else:
        records = _run_live(args)
    print(render(records, root_pattern=args.root, site_pattern=args.site))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
