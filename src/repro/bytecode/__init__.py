"""A stack-based bytecode ISA modelled on a miniature JVM.

This package defines the *static* program representation consumed by the
rest of the system: the profiling interpreter (:mod:`repro.interp`), the
SSA IR builder (:mod:`repro.ir.builder`) and therefore, transitively,
the inliner under study.

The object model is deliberately JVM-shaped — single-inheritance classes,
multiply-implemented interfaces, virtual and interface dispatch, static
and instance fields — because the paper's inlining algorithm is driven by
exactly the information such a model produces: callsites with receiver
type profiles, polymorphic dispatch, and per-method IR sizes.

Public surface:

- :data:`~repro.bytecode.opcodes.Op` — the opcode namespace
- :class:`~repro.bytecode.instr.Instr` — one instruction
- :class:`~repro.bytecode.method.Method` — code + signature
- :class:`~repro.bytecode.klass.ClassDef` / :class:`~repro.bytecode.klass.FieldDef`
- :class:`~repro.bytecode.program.Program` — a closed set of classes
- :class:`~repro.bytecode.builder.MethodBuilder` — fluent code emitter
- :func:`~repro.bytecode.assembler.assemble_program` — text assembler
- :func:`~repro.bytecode.disassembler.disassemble_method` — pretty printer
- :func:`~repro.bytecode.verifier.verify_program` — structural verifier
"""

from repro.bytecode.opcodes import Op, stack_effect, is_branch, is_invoke
from repro.bytecode.instr import Instr
from repro.bytecode.method import Method
from repro.bytecode.klass import ClassDef, FieldDef
from repro.bytecode.program import Program
from repro.bytecode.builder import MethodBuilder
from repro.bytecode.assembler import assemble_program, assemble_method
from repro.bytecode.disassembler import disassemble_method, disassemble_program
from repro.bytecode.verifier import verify_method, verify_program

__all__ = [
    "Op",
    "stack_effect",
    "is_branch",
    "is_invoke",
    "Instr",
    "Method",
    "ClassDef",
    "FieldDef",
    "Program",
    "MethodBuilder",
    "assemble_program",
    "assemble_method",
    "disassemble_method",
    "disassemble_program",
    "verify_method",
    "verify_program",
]
