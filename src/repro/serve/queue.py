"""The bounded compile-request queue.

One :class:`CompileRequest` is one unit of background compiler work —
a whole-method compilation or an OSR continuation — carrying everything
the worker needs to run it off-thread: the owning engine, the method,
and a :meth:`~repro.interp.profiles.ProfileStore.snapshot` of the
profiles taken on the submitting thread (so the compiler never reads a
profile dict another thread is mutating).

The queue itself is a bounded FIFO. ``submit`` never blocks: a full
queue rejects the request — backpressure — and the method simply stays
interpreted until a later hot dispatch retries. Requests can be
cancelled at any point before installation (tenant evicted, speculation
site refuted); a cancelled request still flows through the worker so
its ``done`` event always fires exactly once.
"""

import threading
import time


class CompileRequest:
    """One queued compilation: a method root or an OSR continuation."""

    __slots__ = (
        "engine",
        "kind",
        "method",
        "bci",
        "target",
        "stack_depth",
        "profiles",
        "submitted_at",
        "started_at",
        "done",
        "outcome",
        "_cancelled",
    )

    def __init__(self, engine, method, kind="method", bci=None, target=None,
                 stack_depth=0, profiles=None):
        self.engine = engine
        self.kind = kind  # "method" | "osr"
        self.method = method
        self.bci = bci
        self.target = target
        self.stack_depth = stack_depth
        self.profiles = profiles
        self.submitted_at = time.monotonic()
        self.started_at = None
        #: Set exactly once, when the request leaves the pipeline —
        #: installed, failed, rejected or cancelled. ``drain`` waits on
        #: this.
        self.done = threading.Event()
        #: "installed" | "failed" | "cancelled" | "rejected" | None
        self.outcome = None
        self._cancelled = False

    @property
    def key(self):
        """The engine-local dedup key (matches the code-cache key)."""
        if self.kind == "osr":
            return (self.method, self.bci)
        return self.method

    @property
    def cancelled(self):
        return self._cancelled

    def cancel(self):
        """Mark the request cancelled.

        The worker checks the flag both before compiling and again
        right before installing, so a cancellation that races with an
        in-flight compilation still prevents the install.
        """
        self._cancelled = True

    def finish(self, outcome):
        self.outcome = outcome
        self.done.set()

    def describe(self):
        name = self.method.qualified_name
        if self.kind == "osr":
            return "%s@osr%d" % (name, self.bci)
        return name


class CompileQueue:
    """A bounded FIFO of :class:`CompileRequest`, non-blocking submit."""

    def __init__(self, capacity=32):
        self.capacity = max(1, int(capacity))
        self._items = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def submit(self, request):
        """Enqueue *request*; returns False when the queue is full or
        closed (the caller treats either as backpressure)."""
        with self._lock:
            if self._closed or len(self._items) >= self.capacity:
                return False
            self._items.append(request)
            self._not_empty.notify()
            return True

    def pop(self, timeout=None):
        """Dequeue the oldest request, or None on timeout/close."""
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            return self._items.pop(0)

    def close(self):
        """Close the queue; pending requests are drained and cancelled.

        Returns the requests that were still queued so the caller can
        mark them done (workers never see them again).
        """
        with self._lock:
            self._closed = True
            pending, self._items = self._items, []
            self._not_empty.notify_all()
        for request in pending:
            request.cancel()
        return pending

    @property
    def closed(self):
        return self._closed

    def __len__(self):
        with self._lock:
            return len(self._items)
