"""Exception hierarchy shared by every subsystem in the reproduction.

Keeping all error types in one module makes it easy for callers (tests,
the JIT engine, the benchmark harness) to catch precisely the class of
failure they care about without importing deep internals.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class BytecodeError(ReproError):
    """Malformed bytecode: bad operands, unknown opcodes, broken jumps."""


class VerifyError(BytecodeError):
    """The bytecode verifier rejected a method."""


class LinkError(ReproError):
    """Class linking failed: missing superclass, method, or field."""


class LangError(ReproError):
    """Base class for minij front-end errors."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "line %d:%d: %s" % (line, column or 0, message)
        super().__init__(message)


class LexError(LangError):
    """The lexer met a character sequence it cannot tokenize."""


class ParseError(LangError):
    """The parser met an unexpected token."""


class ResolveError(LangError):
    """Semantic analysis failed: unknown name, type mismatch, bad override."""


class VMError(ReproError):
    """A runtime failure inside the virtual machine."""


class TrapError(VMError):
    """A guest-program trap (the minij equivalent of a runtime exception)."""

    def __init__(self, kind, detail=""):
        self.kind = kind
        self.detail = detail
        super().__init__("%s%s" % (kind, (": " + detail) if detail else ""))


class NullPointerTrap(TrapError):
    def __init__(self, detail=""):
        super().__init__("NullPointer", detail)


class DivisionByZeroTrap(TrapError):
    def __init__(self, detail=""):
        super().__init__("DivisionByZero", detail)


class BoundsTrap(TrapError):
    def __init__(self, detail=""):
        super().__init__("IndexOutOfBounds", detail)


class CastTrap(TrapError):
    def __init__(self, detail=""):
        super().__init__("ClassCast", detail)


class IRError(ReproError):
    """The IR is structurally broken (checker failures, bad builder input)."""


class CompileError(ReproError):
    """The JIT compiler could not compile a method."""


class BudgetExhausted(CompileError):
    """An optimization or inlining budget ran out mid-compilation."""
