"""Profile-guided type-check speculation end to end.

The tentpole contract: with ``typespec`` on (and speculation on — the
guards need frame-state capture), a profile-monomorphic
``INSTANCEOF``/``CHECKCAST`` is replaced by an exact-type guard plus a
Pi pinning the operand, the canonicalizer folds the check (and every
dominated check), a refuted guard deopts through the standard resume
path bit-identically, and the refuted site is never re-speculated.
``REPRO_TYPESPEC=off`` pins the whole feature off from the outside.
"""

import pytest

from repro.baselines import tuned_inliner
from repro.bytecode import MethodBuilder, verify_program
from repro.bytecode.klass import FieldDef
from repro.interp import Interpreter
from repro.interp.profiles import TypeCheckProfile
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.obs import Observability
from repro.runtime import VMState
from tests.helpers import fresh_program


@pytest.fixture(autouse=True)
def _unpinned(monkeypatch):
    monkeypatch.delenv("REPRO_TYPESPEC", raising=False)
    monkeypatch.delenv("REPRO_SPECULATE", raising=False)


def classify_program():
    """``Main.classify(Shape)``: an ``instanceof Square`` branch with a
    dominated ``checkcast Square`` + field read; ``Main.drive(kind)``
    feeds it a Square (kind=0, -> 8) or a Circle (kind!=0, -> 7)."""
    program = fresh_program()
    program.define_class("Shape", is_interface=True)
    square = program.define_class("Square", interfaces=["Shape"])
    square.add_field(FieldDef("side", "int"))
    circle = program.define_class("Circle", interfaces=["Shape"])
    circle.add_field(FieldDef("r", "int"))
    main = program.define_class("Main", is_abstract=True)
    b = MethodBuilder("classify", ["Shape"], "int", is_static=True)
    is_sq = b.new_label()
    b.load(0).instanceof("Square").if_true(is_sq)
    b.const(7).retv()
    b.place(is_sq)
    b.load(0).checkcast("Square").getfield("Square", "side").retv()
    main.add_method(b.build())
    b = MethodBuilder("drive", ["int"], "int", is_static=True)
    mk_c = b.new_label()
    b.load(0).if_true(mk_c)
    b.new("Square").dup().const(8).putfield("Square", "side")
    b.invokestatic("Main", "classify").retv()
    b.place(mk_c)
    b.new("Circle").dup().const(5).putfield("Circle", "r")
    b.invokestatic("Main", "classify").retv()
    main.add_method(b.build())
    verify_program(program)
    return program


def _engine(program, obs=None, **kw):
    kw.setdefault("hot_threshold", 3)
    kw.setdefault("speculate", True)
    kw.setdefault("typespec", True)
    return Engine(program, JitConfig(**kw), tuned_inliner(0.1), obs=obs)


def _metric(obs, name):
    entry = obs.metrics.snapshot().get(name)
    return entry["value"] if entry else 0


def _reference(program, kinds):
    vm = VMState(program)
    interp = Interpreter(vm)
    return [interp.call_static("Main", "drive", (k,)) for k in kinds]


class TestSpeculation:
    def test_monomorphic_site_speculates(self):
        program = classify_program()
        obs = Observability()
        engine = _engine(program, obs=obs)
        kinds = [0] * 10
        values = [
            engine.run_iteration("Main", "drive", (k,)).value for k in kinds
        ]
        assert values == _reference(program, kinds)
        assert _metric(obs, "inline.type_speculations") > 0
        assert engine.deopt_count == 0

    def test_refuted_guard_resumes_bit_identically(self):
        program = classify_program()
        obs = Observability()
        engine = _engine(program, obs=obs)
        kinds = [0] * 6 + [1, 0, 1, 1, 0]
        values = [
            engine.run_iteration("Main", "drive", (k,)).value for k in kinds
        ]
        assert values == _reference(program, kinds)
        assert engine.deopt_count >= 1
        assert _metric(obs, "deopt.reasons.typecheck") >= 1

    def test_refuted_site_not_respeculated(self):
        program = classify_program()
        obs = Observability()
        engine = _engine(program, obs=obs)
        kinds = [0] * 6 + [1] + [0, 1] * 10
        values = [
            engine.run_iteration("Main", "drive", (k,)).value for k in kinds
        ]
        assert values == _reference(program, kinds)
        # The first Circle refutes the guard; the recompile sees the
        # refuted site (and a now-polymorphic profile) and keeps the
        # runtime check, so mixed traffic stops deopting. A small
        # fixed bound (speculating roots: drive, classify, inlined
        # copies) instead of an exact count keeps this robust.
        assert engine.deopt_count <= 3
        # Negative decisions are recorded with their gate as reason.
        reasons = {
            r["attrs"].get("reason")
            for r in obs.flight.records()
            if r["kind"] == "inline.typecheck"
            and not r["attrs"].get("speculate")
        }
        assert reasons & {"refuted-site", "polymorphic-operand"}

    def test_typespec_requires_speculation(self):
        program = classify_program()
        obs = Observability()
        engine = _engine(program, obs=obs, speculate=False)
        for _ in range(8):
            engine.run_iteration("Main", "drive", (0,))
        assert _metric(obs, "inline.type_speculations") == 0
        assert engine.deopt_count == 0


class TestEnvPin:
    def test_off_pins_feature_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_TYPESPEC", "off")
        program = classify_program()
        obs = Observability()
        engine = _engine(program, obs=obs)
        kinds = [0] * 6 + [1, 0, 1]
        values = [
            engine.run_iteration("Main", "drive", (k,)).value for k in kinds
        ]
        assert values == _reference(program, kinds)
        assert _metric(obs, "inline.type_speculations") == 0
        assert _metric(obs, "deopt.reasons.typecheck") == 0

    def test_on_enables_when_config_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_TYPESPEC", "on")
        assert JitConfig(typespec=None).typespec_enabled()
        monkeypatch.setenv("REPRO_TYPESPEC", "off")
        assert not JitConfig(typespec=True).typespec_enabled()
        monkeypatch.delenv("REPRO_TYPESPEC")
        assert not JitConfig(typespec=None).typespec_enabled()
        assert JitConfig(typespec=True).typespec_enabled()


class TestExplain:
    def test_site_history_renders_typecheck_verdicts(self):
        from repro.tools.explain import render

        program = classify_program()
        obs = Observability()
        engine = _engine(program, obs=obs)
        for k in [0] * 6 + [1, 0, 1]:
            engine.run_iteration("Main", "drive", (k,))
        records = obs.flight.records()
        report = render(records, site_pattern="Main.classify")
        assert "typecheck" in report
        assert "speculated on exact Square" in report
        full = render(records)
        assert "typecheck speculated" in full or "typecheck kept" in full


class TestTypeCheckProfile:
    def test_monomorphic(self):
        cell = TypeCheckProfile()
        for _ in range(5):
            cell.record("Square")
        assert cell.monomorphic_type() == "Square"

    def test_nulls_block_monomorphic(self):
        cell = TypeCheckProfile()
        cell.record("Square")
        cell.record(None)
        assert cell.monomorphic_type() is None
        assert cell.nulls == 1

    def test_polymorphic(self):
        cell = TypeCheckProfile()
        cell.record("Square")
        cell.record("Circle")
        assert cell.monomorphic_type() is None
        names = [name for name, _ in cell.observed_types()]
        assert set(names) == {"Square", "Circle"}

    def test_empty(self):
        cell = TypeCheckProfile()
        assert cell.monomorphic_type() is None
        assert cell.observed_types() == []
