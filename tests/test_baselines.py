"""Baseline inliner tests: greedy, C2-like, and the ablation factories."""

from repro.baselines import (
    C2Inliner,
    GreedyInliner,
    clustering_inliner,
    fixed_threshold_inliner,
    one_by_one_inliner,
    shallow_trials_inliner,
    tuned_inliner,
)
from repro.ir import annotate_frequencies, build_graph, check_graph
from repro.jit.compiler import CompileContext
from repro.opts.pipeline import OptimizationPipeline
from tests.execution import execute_graph
from tests.helpers import SHAPES_RESULT, run_static, shapes_program


def _prepare(program, method=("Main", "run")):
    _, _, interp = run_static(program, "Main", "run")
    graph = build_graph(program.lookup_method(*method), program, interp.profiles)
    annotate_frequencies(graph)
    context = CompileContext(
        program, interp.profiles, OptimizationPipeline(program), None
    )
    return graph, context


class TestGreedy:
    def test_inlines_small_methods(self):
        program = shapes_program()
        graph, context = _prepare(program)
        report = GreedyInliner().run(graph, context)
        check_graph(graph, program)
        assert report.inline_count > 0
        result, _ = execute_graph(graph, program)
        assert result == SHAPES_RESULT

    def test_respects_root_budget(self):
        program = shapes_program()
        graph, context = _prepare(program)
        before = graph.node_count()
        report = GreedyInliner(max_root_size=before).run(graph, context)
        assert report.inline_count == 0

    def test_size_threshold_blocks_large_callees(self):
        program = shapes_program()
        graph, context = _prepare(program)
        report = GreedyInliner(trivial_size=1, max_callee_size=1).run(
            graph, context
        )
        assert "Main.total" not in report.inlined_methods

    def test_monomorphic_speculation(self):
        program = shapes_program()
        graph, context = _prepare(program, method=("Main", "total"))
        report = GreedyInliner(min_probability=0.5).run(graph, context)
        assert report.typeswitch_count == 1
        check_graph(graph, program)

    def test_never_inline_respected(self):
        program = shapes_program()
        program.lookup_method("Main", "total").never_inline = True
        try:
            graph, context = _prepare(program)
            report = GreedyInliner().run(graph, context)
            assert "Main.total" not in report.inlined_methods
        finally:
            program.lookup_method("Main", "total").never_inline = False


class TestC2:
    def test_two_phase_inlines(self):
        program = shapes_program()
        graph, context = _prepare(program)
        report = C2Inliner().run(graph, context)
        check_graph(graph, program)
        assert report.rounds == 2
        result, _ = execute_graph(graph, program)
        assert result == SHAPES_RESULT

    def test_tighter_budget_than_greedy(self):
        assert C2Inliner().max_root_size < GreedyInliner().max_root_size

    def test_bimorphic_dispatch(self):
        program = shapes_program()
        graph, context = _prepare(program, method=("Main", "total"))
        report = C2Inliner(min_probability=0.2).run(graph, context)
        assert report.typeswitch_count == 1
        check_graph(graph, program)
        result_invokes = [i for i in graph.invokes() if i.is_dispatched]
        assert result_invokes  # fallback remains


class TestVariantFactories:
    def test_names_are_descriptive(self):
        assert tuned_inliner().name == "incremental"
        assert "te=" in fixed_threshold_inliner(te=1000).name
        assert "1-by-1" in one_by_one_inliner().name
        assert "cluster" in clustering_inliner().name
        assert shallow_trials_inliner().name == "shallow-trials"

    def test_fixed_factory_scales_paper_units(self):
        inliner = fixed_threshold_inliner(te=1000, size_factor=0.1)
        assert inliner.expansion.fixed_te == 100
        assert inliner.expansion.adaptive is False
        assert inliner.inlining.adaptive is True

    def test_one_by_one_overrides_t1_t2(self):
        inliner = one_by_one_inliner(t1=0.0001, t2=1440, size_factor=0.1)
        assert inliner.params.t1 == 0.0001
        assert inliner.params.t2 == 144.0
        assert inliner.analysis.clustering is False

    def test_all_variants_preserve_semantics(self):
        factories = [
            lambda: tuned_inliner(0.1),
            lambda: fixed_threshold_inliner(te=3000),
            lambda: fixed_threshold_inliner(ti=3000),
            lambda: one_by_one_inliner(t1=0.005, t2=120),
            shallow_trials_inliner,
            GreedyInliner,
            C2Inliner,
        ]
        program = shapes_program()
        for factory in factories:
            graph, context = _prepare(program)
            factory().run(graph, context)
            check_graph(graph, program)
            result, _ = execute_graph(graph, program)
            assert result == SHAPES_RESULT, factory
