"""Per-opcode machine executor tests via hand-assembled machine code.

The lowering tests already cover the common paths; these pin the exact
semantics of each machine instruction in isolation, which matters when
the cost model or the executor dispatch loop is refactored.
"""

import pytest

from repro.backend import machine as m
from repro.backend.machine import MachineCode, MachineExecutor
from repro.errors import BoundsTrap, CastTrap, NullPointerTrap, VMError
from repro.interp import Interpreter
from repro.runtime import VMState
from tests.helpers import fresh_program, shapes_program


class _Sink:
    def __init__(self):
        self.cycles = 0

    def add_compiled_cycles(self, cycles):
        self.cycles += cycles


def _execute(instrs, args=(), program=None, num_regs=16):
    program = program or fresh_program()
    vm = VMState(program)
    interp = Interpreter(vm)
    sink = _Sink()
    executor = MachineExecutor(vm, interp.execute, sink)
    method = None
    code = MachineCode(method, list(instrs), num_regs, entry_cost=0)
    return executor.execute(code, list(args)), vm, sink


class TestArithmetic:
    def test_add_wraps(self):
        result, _, _ = _execute(
            [
                (m.M_MOVI, 0, 2 ** 63 - 1),
                (m.M_MOVI, 1, 1),
                (m.M_ADD, 2, 0, 1),
                (m.M_RETV, 2),
            ]
        )
        assert result == -(2 ** 63)

    def test_div_rem_jvm_semantics(self):
        result, _, _ = _execute(
            [
                (m.M_MOVI, 0, -7),
                (m.M_MOVI, 1, 2),
                (m.M_DIV, 2, 0, 1),
                (m.M_REM, 3, 0, 1),
                (m.M_MOVI, 4, 10),
                (m.M_MUL, 5, 2, 4),
                (m.M_ADD, 6, 5, 3),
                (m.M_RETV, 6),
            ]
        )
        assert result == -31  # (-3)*10 + (-1)

    def test_shifts_mask_count(self):
        result, _, _ = _execute(
            [
                (m.M_MOVI, 0, 1),
                (m.M_MOVI, 1, 65),  # 65 & 63 == 1
                (m.M_SHL, 2, 0, 1),
                (m.M_RETV, 2),
            ]
        )
        assert result == 2


class TestControl:
    def test_jmp_and_br(self):
        result, _, _ = _execute(
            [
                (m.M_MOVI, 0, 1),
                (m.M_BR, 0, 3),
                (m.M_RETV, 0),  # skipped
                (m.M_MOVI, 1, 42),
                (m.M_RETV, 1),
            ]
        )
        assert result == 42

    def test_cost_accumulates_on_ret(self):
        _, _, sink = _execute([(m.M_COST, 7), (m.M_COST, 5), (m.M_RET,)])
        assert sink.cycles == 12

    def test_bad_opcode(self):
        with pytest.raises(VMError):
            _execute([(999,)])


class TestMemory:
    def test_arrays(self):
        result, _, _ = _execute(
            [
                (m.M_MOVI, 0, 4),
                (m.M_NEWARR, 1, 0, "int"),
                (m.M_MOVI, 2, 2),
                (m.M_MOVI, 3, 99),
                (m.M_ASTORE, 1, 2, 3),
                (m.M_ALOAD, 4, 1, 2),
                (m.M_ALEN, 5, 1),
                (m.M_ADD, 6, 4, 5),
                (m.M_RETV, 6),
            ]
        )
        assert result == 103

    def test_array_bounds_trap(self):
        with pytest.raises(BoundsTrap):
            _execute(
                [
                    (m.M_MOVI, 0, 2),
                    (m.M_NEWARR, 1, 0, "int"),
                    (m.M_MOVI, 2, 5),
                    (m.M_ALOAD, 3, 1, 2),
                    (m.M_RETV, 3),
                ]
            )

    def test_fields_and_null_trap(self):
        program = shapes_program()
        result, _, _ = _execute(
            [
                (m.M_NEW, 0, "Square"),
                (m.M_MOVI, 1, 6),
                (m.M_PUTF, 0, "side", 1),
                (m.M_GETF, 2, 0, "side"),
                (m.M_RETV, 2),
            ],
            program=program,
        )
        assert result == 6
        with pytest.raises(NullPointerTrap):
            _execute(
                [(m.M_MOVNULL, 0), (m.M_GETF, 1, 0, "side"), (m.M_RETV, 1)],
                program=program,
            )

    def test_statics(self):
        from repro.bytecode.klass import FieldDef

        program = fresh_program()
        holder = program.define_class("G")
        holder.add_field(FieldDef("c", "int", is_static=True))
        result, _, _ = _execute(
            [
                (m.M_MOVI, 0, 5),
                (m.M_PUTS, "G", "c", 0),
                (m.M_GETS, 1, "G", "c"),
                (m.M_RETV, 1),
            ],
            program=program,
        )
        assert result == 5


class TestTypeOps:
    def test_isinst_and_isexact(self):
        program = shapes_program()
        result, _, _ = _execute(
            [
                (m.M_NEW, 0, "Square"),
                (m.M_ISINST, 1, 0, "Shape"),
                (m.M_ISEXACT, 2, 0, "Square"),
                (m.M_ISEXACT, 3, 0, "Shape"),  # exact check: not Shape
                (m.M_MOVI, 4, 100),
                (m.M_MUL, 5, 1, 4),
                (m.M_MOVI, 6, 10),
                (m.M_MUL, 7, 2, 6),
                (m.M_ADD, 8, 5, 7),
                (m.M_ADD, 9, 8, 3),
                (m.M_RETV, 9),
            ],
            program=program,
        )
        assert result == 110

    def test_cast_trap(self):
        program = shapes_program()
        with pytest.raises(CastTrap):
            _execute(
                [
                    (m.M_NEW, 0, "Circle"),
                    (m.M_CAST, 1, 0, "Square"),
                    (m.M_RETV, 1),
                ],
                program=program,
            )

    def test_null_passes_cast_and_fails_isinst(self):
        program = shapes_program()
        result, _, _ = _execute(
            [
                (m.M_MOVNULL, 0),
                (m.M_CAST, 1, 0, "Square"),
                (m.M_ISINST, 2, 0, "Square"),
                (m.M_RETV, 2),
            ],
            program=program,
        )
        assert result == 0


class TestCalls:
    def test_call_dispatches_to_interpreter(self):
        program = shapes_program()
        target = program.lookup_method("Main", "total")
        vm = VMState(program)
        square = vm.allocate("Square")
        square.fields["side"] = 3
        interp = Interpreter(vm)
        sink = _Sink()
        executor = MachineExecutor(vm, interp.execute, sink)
        code = MachineCode(
            None,
            [
                (m.M_MOVI, 1, 2),
                (m.M_CALL, 2, target, (0, 1)),
                (m.M_RETV, 2),
            ],
            8,
            entry_cost=0,
        )
        assert executor.execute(code, [square]) == 18

    def test_vcall_resolves_by_receiver(self):
        program = shapes_program()
        vm = VMState(program)
        circle = vm.allocate("Circle")
        circle.fields["r"] = 2
        interp = Interpreter(vm)
        executor = MachineExecutor(vm, interp.execute, _Sink())
        code = MachineCode(
            None, [(m.M_VCALL, 1, "area", (0,)), (m.M_RETV, 1)], 4, entry_cost=0
        )
        assert executor.execute(code, [circle]) == 12

    def test_vcall_null_receiver_traps(self):
        program = shapes_program()
        vm = VMState(program)
        interp = Interpreter(vm)
        executor = MachineExecutor(vm, interp.execute, _Sink())
        code = MachineCode(
            None,
            [(m.M_MOVNULL, 0), (m.M_VCALL, 1, "area", (0,)), (m.M_RETV, 1)],
            4,
            entry_cost=0,
        )
        with pytest.raises(NullPointerTrap):
            executor.execute(code, [])

    def test_native_call_inline(self):
        program = fresh_program()
        target = program.lookup_method("Builtins", "imax")
        vm = VMState(program)
        interp = Interpreter(vm)
        executor = MachineExecutor(vm, interp.execute, _Sink())
        code = MachineCode(
            None,
            [
                (m.M_MOVI, 0, 3),
                (m.M_MOVI, 1, 9),
                (m.M_CALL, 2, target, (0, 1)),
                (m.M_RETV, 2),
            ],
            4,
            entry_cost=0,
        )
        assert executor.execute(code, []) == 9
