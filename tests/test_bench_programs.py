"""Structural checks on the 28 benchmark programs.

Beyond compiling (covered in test_bench_infra), each program must
(a) be deterministic in the steady state and (b) actually exercise the
workload shape its module docstring claims — dispatch-heavy programs
must contain dispatched callsites, closure-heavy ones must allocate
lambdas, and so on. This keeps benchmark edits honest.
"""

import pytest

from repro.bench.suite import all_benchmarks, get_benchmark
from repro.bytecode.opcodes import Op
from repro.interp import Interpreter
from repro.runtime import VMState


def _opcodes_used(program):
    ops = set()
    for method in program.methods_iter():
        for instr in method.code:
            ops.add(instr.op)
    return ops


def _steady_values(name, runs=3):
    spec = get_benchmark(name)
    program = spec.load()
    vm = VMState(program)
    interp = Interpreter(vm)
    interp.call_static("Main", "run")  # setup iteration
    return [interp.call_static("Main", "run") for _ in range(runs)]


class TestDeterminism:
    @pytest.mark.parametrize(
        "name", [spec.name for spec in all_benchmarks()]
    )
    def test_steady_state_deterministic(self, name):
        values = _steady_values(name)
        assert len(set(values)) == 1, (
            "%s drifts in steady state: %r" % (name, values)
        )

    def test_two_interpreters_agree(self):
        for name in ("factorie", "h2", "tmt"):
            assert _steady_values(name) == _steady_values(name)


class TestWorkloadShapes:
    DISPATCH_HEAVY = [
        "avrora", "batik", "fop", "h2", "jython", "luindex", "lusearch",
        "pmd", "sunflow", "xalan", "factorie", "kiama", "scalac",
        "scalariform", "dec-tree", "dotty", "neo4j", "gauss-mix",
    ]

    def test_dispatch_heavy_programs_have_dispatched_calls(self):
        for name in self.DISPATCH_HEAVY:
            ops = _opcodes_used(get_benchmark(name).load())
            assert Op.INVOKEINTERFACE in ops or Op.INVOKEVIRTUAL in ops, name

    LAMBDA_HEAVY = [
        "actors", "apparat", "factorie", "scaladoc", "scalatest",
        "scalariform", "specs", "tmt", "gauss-mix",
    ]

    def test_lambda_heavy_programs_emit_anonymous_classes(self):
        for name in self.LAMBDA_HEAVY:
            program = get_benchmark(name).load()
            lambdas = [c for c in program.classes if c.startswith("$Lambda")]
            assert lambdas, "%s should allocate closures" % name

    def test_avrora_exceeds_typeswitch_budget(self):
        """avrora's Instr hierarchy must have more concrete targets than
        the 3-arm typeswitch budget, exercising the fallback path."""
        program = get_benchmark("avrora").load()
        targets = program.concrete_subclasses("Instr")
        assert len(targets) > 3

    def test_stmbench7_barriers_are_hot(self):
        """Txn.read/write must be the tiny leaf methods the STM barrier
        tax claim relies on."""
        program = get_benchmark("stmbench7").load()
        read = program.lookup_method("Txn", "read")
        write = program.lookup_method("Txn", "write")
        assert len(read.code) <= 12 and len(write.code) <= 14

    def test_recursive_workloads_recurse(self):
        for name, klass, method in [
            ("pmd", "Complexity", "visitBinary"),
            ("stmbench7", "Assembly", "totalWeight"),
            ("dotty", "UnionType", "subtypeOf"),
        ]:
            program = get_benchmark(name).load()
            target = program.lookup_method(klass, method)
            callees = {
                instr.args[1]
                for instr in target.code
                if instr.op in (Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE)
            }
            assert callees, "%s.%s should make calls" % (klass, method)

    def test_iterations_configured_sanely(self):
        for spec in all_benchmarks():
            assert 8 <= spec.iterations <= 30, spec.name
