"""The event half of the observability subsystem.

An :class:`EventLog` records a structured stream of point events and
nestable spans — our analogue of Graal's ``-Dgraal.PrintCompilation``
plus ``TraceInlining`` streams, unified. The compiler opens a
``compile`` span per compilation with ``build`` / ``inline`` /
``optimize`` / ``lower`` child spans; the optimization pipeline emits
per-pass node-count deltas; the inline tracer bridge forwards every
inlining decision. The result is one chronological stream in which an
entire compilation can be read inline.

Every record is a JSON-serializable dict; with a *sink* the log streams
JSONL as it goes, and :meth:`EventLog.read_jsonl` reads a stream back
for offline replay (``python -m repro.tools.stats events.jsonl``).

Record schema (see ``docs/observability.md``)::

    {"seq": 0, "type": "begin", "name": "compile", "span": 1,
     "parent": null, "ts": 0.00012, "attrs": {"method": "Main.run"}}
    {"seq": 1, "type": "event", "name": "pass", "span": 2,
     "ts": ..., "attrs": {"name": "gvn", "before": 41, "after": 38}}
    {"seq": 2, "type": "end", "name": "compile", "span": 1,
     "ts": ..., "dur": 0.0042, "attrs": {"nodes": 38, ...}}

``ts`` is seconds since the log was created and ``dur`` the span's wall
duration — telemetry only, never part of the deterministic cycle model.

The default log on every VM object is :data:`NULL_EVENTS`, whose spans
and events are no-ops.
"""

import json
import time


class Span:
    """One open span; a context manager handed out by :meth:`EventLog.span`.

    Attributes set through :meth:`set` are attached to the ``end``
    record, so a phase can report results (node counts, code size)
    computed while it ran.
    """

    __slots__ = ("_log", "name", "sid", "parent", "attrs", "start")

    def __init__(self, log, name, sid, parent, attrs, start):
        self._log = log
        self.name = name
        self.sid = sid
        self.parent = parent
        self.attrs = attrs
        self.start = start

    def set(self, **attrs):
        self.attrs.update(attrs)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self._log._end_span(self)
        return False


class EventLog:
    """Collects spans and events, in memory and optionally as JSONL.

    Args:
        sink: optional file-like object; every record is written to it
            as one JSON line the moment it is recorded.
    """

    enabled = True

    def __init__(self, sink=None):
        self.records = []
        self._sink = sink
        self._stack = []
        self._next_sid = 1
        self._seq = 0
        self._t0 = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def span(self, name, /, **attrs):
        """Open a nested span; use as ``with log.span("compile", ...):``."""
        now = time.perf_counter() - self._t0
        sid = self._next_sid
        self._next_sid += 1
        parent = self._stack[-1].sid if self._stack else None
        span = Span(self, name, sid, parent, {}, now)
        self._stack.append(span)
        self._write(
            {
                "type": "begin",
                "name": name,
                "span": sid,
                "parent": parent,
                "ts": now,
                "attrs": dict(attrs),
            }
        )
        return span

    def emit(self, name, /, **attrs):
        """Record a point event inside the innermost open span.

        ``name`` is positional-only so events may carry a ``name``
        attribute of their own (the pipeline's ``pass`` events do).
        """
        self._write(
            {
                "type": "event",
                "name": name,
                "span": self._stack[-1].sid if self._stack else None,
                "ts": time.perf_counter() - self._t0,
                "attrs": attrs,
            }
        )

    def _end_span(self, span):
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)
        now = time.perf_counter() - self._t0
        self._write(
            {
                "type": "end",
                "name": span.name,
                "span": span.sid,
                "ts": now,
                "dur": now - span.start,
                "attrs": span.attrs,
            }
        )

    def _write(self, record):
        record["seq"] = self._seq
        self._seq += 1
        self.records.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record, default=str))
            self._sink.write("\n")

    # -- queries -----------------------------------------------------------

    def of_name(self, name):
        return [r for r in self.records if r["name"] == name]

    def spans_named(self, name):
        return [r for r in self.records if r["type"] == "begin" and r["name"] == name]

    def __len__(self):
        return len(self.records)

    # -- persistence -------------------------------------------------------

    def save(self, path):
        """Write the whole in-memory stream to *path* as JSONL."""
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record, default=str))
                handle.write("\n")

    @staticmethod
    def read_jsonl(path):
        """Read a JSONL event stream back into a list of records."""
        records = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records


class _NullSpan:
    """Shared no-op span used by :class:`NullEventLog`."""

    __slots__ = ()
    name = "<null>"
    sid = None
    parent = None
    attrs = {}

    def set(self, **attrs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False


NULL_SPAN = _NullSpan()


class NullEventLog:
    """The default, inert event log."""

    __slots__ = ()
    enabled = False
    records = ()

    def span(self, name, /, **attrs):
        return NULL_SPAN

    def emit(self, name, /, **attrs):
        pass

    def of_name(self, name):
        return []

    def spans_named(self, name):
        return []

    def __len__(self):
        return 0

    def save(self, path):
        raise ValueError("cannot save the null event log")


NULL_EVENTS = NullEventLog()
