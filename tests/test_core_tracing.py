"""Tests for the inlining decision tracer."""

from repro.core import IncrementalInliner, InlinerParams, InlineTracer
from repro.ir import annotate_frequencies, build_graph
from repro.jit.compiler import CompileContext
from repro.opts.pipeline import OptimizationPipeline
from tests.helpers import run_static, shapes_program


def _traced_run(method=("Main", "run"), **inliner_kwargs):
    program = shapes_program()
    _, _, interp = run_static(program, "Main", "run")
    graph = build_graph(program.lookup_method(*method), program, interp.profiles)
    annotate_frequencies(graph)
    context = CompileContext(
        program, interp.profiles, OptimizationPipeline(program), None
    )
    tracer = InlineTracer()
    inliner = IncrementalInliner(
        InlinerParams.scaled(0.1), tracer=tracer, **inliner_kwargs
    )
    report = inliner.run(graph, context)
    return tracer, report


class TestTracer:
    def test_records_rounds_and_termination(self):
        tracer, report = _traced_run()
        rounds = tracer.of_kind("round")
        assert len(rounds) == report.rounds
        (terminate,) = tracer.of_kind("terminate")
        assert terminate.detail["reason"] in (
            "no change in call tree",
            "no cutoffs left",
            "max rounds",
            "root size bailout",
        )

    def test_expansions_traced_with_threshold_numbers(self):
        tracer, report = _traced_run()
        expands = tracer.of_kind("expand")
        assert len(expands) == report.expansions
        for event in expands:
            assert event.detail["benefit"] >= 0
            assert event.detail["size"] >= 1
            assert event.detail["threshold"] > 0

    def test_inline_events_match_report(self):
        tracer, report = _traced_run()
        inlines = tracer.of_kind("inline")
        # Each inline event covers one *cluster*, which may substitute
        # several methods, so events <= report.inline_count.
        assert inlines
        assert len(inlines) <= report.inline_count
        clusters = tracer.of_kind("cluster")
        assert len(clusters) == len(inlines)
        total_members = sum(len(c.detail["members"]) for c in clusters)
        assert total_members == report.inline_count

    def test_typeswitch_traced(self):
        tracer, report = _traced_run(method=("Main", "total"))
        switches = tracer.of_kind("typeswitch")
        assert len(switches) == report.typeswitch_count == 1
        assert set(switches[0].detail["targets"]) == {"Square", "Circle"}

    def test_declines_traced_under_fixed_zero_budget(self):
        tracer, _ = _traced_run(adaptive_expansion=False, fixed_te=0)
        assert tracer.of_kind("decline")
        assert not tracer.of_kind("expand")

    def test_render_readable(self):
        tracer, _ = _traced_run()
        text = tracer.render()
        assert "round 1" in text
        assert "INLINE" in text
        assert "terminated:" in text
