"""Tests for the differential fuzzing subsystem (:mod:`repro.fuzz`)."""

import importlib

import pytest

import repro.fuzz.reduce as reduce_module

# ``repro.opts`` re-exports a ``canonicalize`` *function*, which shadows
# the submodule under ``import repro.opts.canonicalize as ...``.
canon = importlib.import_module("repro.opts.canonicalize")
from repro.bytecode.opcodes import Op
from repro.fuzz import (
    check_program,
    generate_case,
    load_corpus_text,
    program_to_asm,
    run_campaign,
    shrink_case,
)
from repro.fuzz.bisect import bisect_passes
from repro.fuzz.oracle import (
    Divergence,
    oracle_config_names,
    run_interpreter,
)
from repro.obs import Observability
from repro.tools import fuzz as fuzz_cli
from tests.helpers import single_method_program

SMOKE_SEEDS = range(100, 115)


class TestGenerator:
    def test_deterministic(self):
        for seed in (3, 11, 0xABCD ^ 5):  # include a minij-mode seed
            first, entry_a = generate_case(seed).build()
            second, entry_b = generate_case(seed).build()
            assert entry_a == entry_b
            assert program_to_asm(first, entry_a) == program_to_asm(
                second, entry_b
            )

    def test_programs_verify_and_run(self):
        # build() verifies; the interpreter must also complete (values
        # or traps, never a host crash).
        for seed in SMOKE_SEEDS:
            program, entry = generate_case(seed).build()
            record = run_interpreter(program, entry, iterations=2)
            assert len(record.outcomes) == 2
            for outcome in record.outcomes:
                assert outcome[0] in ("value", "trap")

    def test_both_modes_reachable(self):
        kinds = {generate_case(seed).kind for seed in range(40)}
        assert kinds == {"bytecode", "minij"}

    def test_minij_mode_builds(self):
        case = generate_case(9, mode="minij")
        program, entry = case.build()
        record = run_interpreter(program, entry, iterations=1)
        assert record.outcomes[0][0] in ("value", "trap")

    def test_shrink_candidates_are_strictly_smaller(self):
        case = generate_case(104)
        assert case.kind == "bytecode"
        size = case.size()
        candidates = list(case.shrink_candidates())
        assert candidates, "a generated case always has shrink moves"
        for candidate in candidates[:80]:
            assert candidate.size() < size


def _seeded_folder_bug(monkeypatch):
    """Break SHL constant folding: drop the JVM's ``& 63`` mask."""
    original = canon._fold_binop

    def broken(op, a, b):
        if op == Op.SHL:
            return a << (b % (1 << 20))  # bounded, but unmasked
        return original(op, a, b)

    monkeypatch.setattr(canon, "_fold_binop", broken)


def _shl64_program():
    # 1 << 64 is 1 under masked semantics; a broken folder turns the
    # whole expression into a constant 0 (2**64 wraps).
    return single_method_program(
        lambda b: b.const(1).const(64).shl().retv(), params=()
    )


class TestOracle:
    def test_clean_program_agrees(self):
        program, entry = generate_case(101).build()
        assert check_program(program, entry, ["jit"], iterations=3) is None

    def test_detects_seeded_constant_folding_bug(self, monkeypatch):
        _seeded_folder_bug(monkeypatch)
        program = _shl64_program()
        divergence = check_program(program, ("T", "f"), ["jit"], iterations=3)
        assert divergence is not None
        assert divergence.kind == "outcome"
        assert divergence.expected == ("value", 1)
        assert divergence.actual == ("value", 0)

    def test_all_configs_instantiate(self):
        program, entry = generate_case(102).build()
        assert (
            check_program(program, entry, oracle_config_names(), iterations=3)
            is None
        )


class TestBisect:
    def test_names_the_guilty_stage(self, monkeypatch):
        _seeded_folder_bug(monkeypatch)
        program = _shl64_program()
        report = bisect_passes(program, ("T", "f"), "jit", iterations=3)
        assert report.culprit == "canonicalize/gvn/dce"
        # The lowering-only stage ran clean before the culprit diverged.
        assert report.stages[0] == ("lowering/machine", False)
        assert report.stages[1] == ("canonicalize/gvn/dce", True)


class _FakeCase:
    """Minimal case protocol for exercising the shrinker in isolation."""

    def __init__(self, items):
        self.items = list(items)

    def build(self):
        return list(self.items), ("Fake", "main")

    def size(self):
        return len(self.items)

    def shrink_candidates(self):
        for index in range(len(self.items)):
            yield _FakeCase(self.items[:index] + self.items[index + 1 :])


class TestShrinker:
    def test_reduces_to_the_poison_element(self, monkeypatch):
        # The "oracle": diverges iff the poison value 7 is present.
        def fake_check(program, entry, names, iterations, vm_seed):
            if 7 in program:
                return Divergence("jit", "outcome", 0, ("value", 1), ("value", 2))
            return None

        monkeypatch.setattr(reduce_module, "check_program", fake_check)
        case = _FakeCase([1, 2, 7, 3, 4, 5])
        divergence = Divergence("jit", "outcome", 0, ("value", 1), ("value", 2))
        reduced, final, checks = shrink_case(case, divergence)
        assert reduced.items == [7]
        assert final is not None
        assert checks > 0

    def test_respects_budget(self, monkeypatch):
        def fake_check(program, entry, names, iterations, vm_seed):
            return Divergence("jit", "outcome", 0, ("value", 1), ("value", 2))

        monkeypatch.setattr(reduce_module, "check_program", fake_check)
        case = _FakeCase(list(range(50)))
        divergence = Divergence("jit", "outcome", 0, ("value", 1), ("value", 2))
        _, _, checks = shrink_case(case, divergence, budget=10)
        assert checks <= 10

    def test_different_bug_not_chased(self, monkeypatch):
        # Shrinking must not hop from a value divergence to a trap one.
        def fake_check(program, entry, names, iterations, vm_seed):
            if 7 in program:
                return Divergence(
                    "jit", "outcome", 0, ("value", 1), ("trap", "NullPointer")
                )
            return None

        monkeypatch.setattr(reduce_module, "check_program", fake_check)
        case = _FakeCase([1, 7])
        value_divergence = Divergence(
            "jit", "outcome", 0, ("value", 1), ("value", 2)
        )
        reduced, _, _ = shrink_case(case, value_divergence)
        assert reduced.items == [1, 7]  # unchanged: no candidate matched


class TestSerializer:
    def test_roundtrip_is_stable(self):
        for seed in (103, 107):
            program, entry = generate_case(seed).build()
            asm = program_to_asm(program, entry)
            reloaded, reloaded_entry = load_corpus_text(asm)
            assert reloaded_entry == entry
            assert program_to_asm(reloaded, reloaded_entry) == asm

    def test_roundtrip_preserves_semantics(self):
        program, entry = generate_case(108).build()
        reloaded, reloaded_entry = load_corpus_text(
            program_to_asm(program, entry)
        )
        original = run_interpreter(program, entry, iterations=2)
        replayed = run_interpreter(reloaded, reloaded_entry, iterations=2)
        assert original.outcomes == replayed.outcomes
        assert original.output == replayed.output

    def test_header_notes_survive_as_comments(self):
        program, entry = generate_case(103).build()
        asm = program_to_asm(program, entry, notes=["found-by: test"])
        assert "# found-by: test" in asm
        load_corpus_text(asm)  # comments must not break assembly


class TestCampaign:
    def test_smoke(self, tmp_path):
        obs = Observability()
        result = run_campaign(
            master_seed=1,
            runs=4,
            config_names=["jit"],
            corpus_dir=str(tmp_path),
            obs=obs,
            iterations=3,
        )
        assert result.runs_executed == 4
        assert result.findings == []
        events = obs.events.of_name("fuzz.case")
        assert len(events) == 4
        assert all(e["attrs"]["status"] == "agree" for e in events)

    def test_time_budget_stops_early(self):
        result = run_campaign(master_seed=2, runs=10_000, time_budget=0.0)
        assert result.stopped_by_budget
        assert result.runs_executed < 10_000


class TestCli:
    def test_clean_campaign_exits_zero(self, capsys):
        code = fuzz_cli.main(
            ["--seed", "1", "--runs", "3", "--configs", "jit",
             "--iterations", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "divergences=0" in out

    def test_report_written(self, tmp_path, capsys):
        report = tmp_path / "campaign.jsonl"
        code = fuzz_cli.main(
            ["--seed", "1", "--runs", "2", "--configs", "jit",
             "--iterations", "3", "--report", str(report)]
        )
        assert code == 0
        lines = report.read_text().splitlines()
        assert any('"fuzz.campaign"' in line for line in lines)

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            fuzz_cli.main(["--configs", "warp-drive"])
