"""@inline / @noinline flow through every inlining policy."""

from repro.baselines import C2Inliner, GreedyInliner, tuned_inliner
from repro.ir import annotate_frequencies, build_graph
from repro.jit.compiler import CompileContext
from repro.lang import compile_source
from repro.interp import Interpreter
from repro.opts.pipeline import OptimizationPipeline
from repro.runtime import VMState

SOURCE = """
object Main {
  @inline def mustInline(x: int): int {
    // Deliberately bulky so size heuristics would normally refuse it.
    var a: int = x;  var b: int = x * 2;  var c: int = x * 3;
    a = a + b; b = b + c; c = c + a;
    a = a ^ b; b = b | c; c = c & a;
    a = a + b; b = b + c; c = c + a;
    a = a ^ b; b = b | c; c = c & a;
    return a + b + c;
  }
  @noinline def mustStay(x: int): int { return x + 1; }
  def run(): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < 40) {
      acc = acc + Main.mustInline(i) + Main.mustStay(i);
      i = i + 1;
    }
    return acc;
  }
}
"""


def _inline_run(factory):
    program = compile_source(SOURCE)
    vm = VMState(program)
    interp = Interpreter(vm)
    interp.call_static("Main", "run")
    graph = build_graph(
        program.lookup_method("Main", "run"), program, interp.profiles
    )
    annotate_frequencies(graph)
    context = CompileContext(
        program, interp.profiles, OptimizationPipeline(program), None
    )
    report = factory().run(graph, context)
    return report, graph


class TestAnnotations:
    def test_incremental_respects_both(self):
        report, graph = _inline_run(lambda: tuned_inliner(0.1))
        assert "Main.mustInline" in report.inlined_methods
        assert "Main.mustStay" not in report.inlined_methods
        remaining = {i.method_name for i in graph.invokes()}
        assert "mustStay" in remaining
        assert "mustInline" not in remaining

    def test_greedy_respects_both(self):
        report, graph = _inline_run(
            lambda: GreedyInliner(trivial_size=1, max_callee_size=2)
        )
        # Size thresholds would reject mustInline; force_inline wins.
        assert "Main.mustInline" in report.inlined_methods
        assert "Main.mustStay" not in report.inlined_methods

    def test_c2_respects_both(self):
        report, graph = _inline_run(
            lambda: C2Inliner(trivial_size=1, max_callee_size=2)
        )
        assert "Main.mustInline" in report.inlined_methods
        assert "Main.mustStay" not in report.inlined_methods
