"""Event log semantics: span nesting, attribution, JSONL round-trip,
and the inert null log."""

from repro.obs import NULL_EVENTS, EventLog
from repro.obs.report import build_report
from repro.obs.provenance import SpanInlineTracer


class TestSpans:
    def test_nesting_records_parent_links(self):
        log = EventLog()
        with log.span("compile", method="Main.run") as outer:
            with log.span("build") as inner:
                pass
        begins = {r["name"]: r for r in log.records if r["type"] == "begin"}
        assert begins["compile"]["parent"] is None
        assert begins["build"]["parent"] == begins["compile"]["span"]
        assert inner.parent == outer.sid

    def test_events_attributed_to_innermost_span(self):
        log = EventLog()
        log.emit("outside")
        with log.span("compile"):
            with log.span("optimize") as opt:
                log.emit("pass", before=10, after=8)
        events = {r["name"]: r for r in log.records if r["type"] == "event"}
        assert events["outside"]["span"] is None
        assert events["pass"]["span"] == opt.sid
        assert events["pass"]["attrs"] == {"before": 10, "after": 8}

    def test_end_records_duration_and_attrs(self):
        log = EventLog()
        with log.span("compile") as span:
            span.set(nodes=42)
        end = [r for r in log.records if r["type"] == "end"][0]
        assert end["name"] == "compile"
        assert end["attrs"] == {"nodes": 42}
        assert end["dur"] >= 0.0
        assert end["ts"] >= 0.0

    def test_sequence_numbers_are_monotonic(self):
        log = EventLog()
        with log.span("a"):
            log.emit("e1")
            log.emit("e2")
        seqs = [r["seq"] for r in log.records]
        assert seqs == sorted(seqs) == list(range(len(seqs)))

    def test_sibling_spans_share_parent(self):
        log = EventLog()
        with log.span("compile") as compile_span:
            with log.span("build") as build:
                pass
            with log.span("lower") as lower:
                pass
        assert build.parent == compile_span.sid
        assert lower.parent == compile_span.sid
        # After the with-blocks the stack must be clean.
        log.emit("after")
        assert log.records[-1]["span"] is None

    def test_queries(self):
        log = EventLog()
        with log.span("compile"):
            log.emit("pass", name="gvn")
        assert len(log.spans_named("compile")) == 1
        assert len(log.of_name("pass")) == 1
        assert len(log) == 3  # begin + event + end


class TestJsonlRoundTrip:
    def test_save_and_read_back(self, tmp_path):
        log = EventLog()
        with log.span("compile", method="Main.run"):
            log.emit("pass", name="gvn", before=12, after=9)
        path = tmp_path / "events.jsonl"
        log.save(str(path))
        replayed = EventLog.read_jsonl(str(path))
        assert replayed == log.records

    def test_streaming_sink_matches_memory(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with open(path, "w") as sink:
            log = EventLog(sink=sink)
            with log.span("compile"):
                log.emit("pass", name="dce", before=5, after=5)
        assert EventLog.read_jsonl(str(path)) == log.records

    def test_report_from_replay_matches_report_from_memory(self, tmp_path):
        log = EventLog()
        with log.span("compile", method="A.b", hotness=40) as span:
            with log.span("optimize"):
                log.emit("pass", name="gvn", before=10, after=7)
            span.set(nodes=7, code_size=9, compile_cycles=280)
        path = tmp_path / "events.jsonl"
        log.save(str(path))
        assert build_report(EventLog.read_jsonl(str(path))) == build_report(
            log.records
        )


class TestTracerBridge:
    def test_trace_events_are_mirrored_into_the_log(self):
        log = EventLog()
        tracer = SpanInlineTracer(log)
        with log.span("inline"):
            tracer.begin_round(100)
            tracer.terminated("no cutoffs left", 120)
        # The tracer's own event list still works (InlineTracer API)...
        assert [e.kind for e in tracer.events] == ["round", "terminate"]
        assert "round 1" in tracer.render()
        # ...and every event was mirrored as inline.<kind>.
        mirrored = [r for r in log.records if r["type"] == "event"]
        assert [r["name"] for r in mirrored] == [
            "inline.round", "inline.terminate",
        ]
        assert mirrored[0]["attrs"]["round"] == 1
        assert mirrored[1]["attrs"]["reason"] == "no cutoffs left"


class TestNullEventLogIsInert:
    def test_emit_and_span_record_nothing(self):
        NULL_EVENTS.emit("anything", x=1)
        with NULL_EVENTS.span("compile", method="A.b") as span:
            span.set(nodes=1)
            NULL_EVENTS.emit("pass", name="gvn")
        assert len(NULL_EVENTS) == 0
        assert list(NULL_EVENTS.records) == []
        assert NULL_EVENTS.of_name("pass") == []
        assert NULL_EVENTS.spans_named("compile") == []

    def test_null_span_is_shared(self):
        first = NULL_EVENTS.span("a")
        second = NULL_EVENTS.span("b")
        assert first is second

    def test_enabled_flag(self):
        assert EventLog().enabled is True
        assert NULL_EVENTS.enabled is False
