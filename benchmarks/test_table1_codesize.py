"""Table I — total installed code: new inliner vs greedy vs C2.

The paper's Table I reports per-benchmark installed megabytes and the
aggregate result: "Graal with the proposed inlining algorithm on
average generates ≈1.88× more code than C2, and on average ≈2.37× more
code than Graal with the greedy inliner."

We regenerate the per-benchmark table (in machine instructions, our
installed-size unit) and assert the aggregate ordering: the incremental
inliner installs more code than both baselines on average, by a factor
in the paper's general range (>1× and <6×).
"""

from benchmarks.conftest import INSTANCES, figure_benchmarks, geomean
from repro.bench.harness import run_matrix

CONFIGS = ["incremental", "greedy", "c2"]


def test_table1_code_size(benchmark, steady_engine_factory):
    results = run_matrix(
        CONFIGS, benchmarks=figure_benchmarks(), instances=INSTANCES
    )
    print("\n== Table I: installed code (machine instructions) ==")
    print("%-14s %12s %12s %12s %8s %8s" % (
        "benchmark", "incremental", "greedy", "c2", "inc/gr", "inc/c2",
    ))
    ratios_greedy = []
    ratios_c2 = []
    for name, row in results.items():
        inc = row["incremental"].installed_size
        gr = row["greedy"].installed_size
        c2 = row["c2"].installed_size
        ratios_greedy.append(inc / max(1, gr))
        ratios_c2.append(inc / max(1, c2))
        print("%-14s %12d %12d %12d %8.2f %8.2f" % (
            name, inc, gr, c2, inc / max(1, gr), inc / max(1, c2),
        ))
    mean_vs_greedy = geomean(ratios_greedy)
    mean_vs_c2 = geomean(ratios_c2)
    print("geomean code ratio vs greedy: %.2fx (paper: ~2.37x)" % mean_vs_greedy)
    print("geomean code ratio vs c2:     %.2fx (paper: ~1.88x)" % mean_vs_c2)

    assert mean_vs_greedy > 1.0, "incremental should install more code than greedy"
    assert mean_vs_c2 > 1.0, "incremental should install more code than C2"
    assert mean_vs_greedy < 6.0 and mean_vs_c2 < 6.0, "code growth out of range"

    engine = steady_engine_factory("factorie", "incremental")
    benchmark(engine.run_iteration, "Main", "run")
