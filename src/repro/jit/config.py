"""VM-level configuration."""

from repro.backend.costmodel import CostModel
from repro.backend.icache import ICacheModel
from repro.opts.pipeline import OptimizerConfig


class JitConfig:
    """Configuration for one VM instance.

    Attributes:
        hot_threshold: profile hotness (invocations + backedge/8) at
            which a method is compiled.
        compile_enabled: False gives a pure-interpreter VM (the C1-less
            baseline used in code-size comparisons).
        cost_model: the :class:`~repro.backend.costmodel.CostModel`.
        icache: the :class:`~repro.backend.icache.ICacheModel`.
        optimizer: the :class:`~repro.opts.pipeline.OptimizerConfig`.
        max_compiled_methods: safety valve for runaway configurations.
        context_sensitive_profiles: record one-level-context receiver
            and branch profiles alongside the aggregates (the §VI
            extension); the inliner then specializes call-tree nodes
            with caller-specific profiles.
        interp_predecode: selects the interpreter executor. ``True``
            uses the pre-decoded handler-table tier
            (:mod:`repro.interp.predecode`), ``False`` the classic
            reference loop, ``None`` defers to the ``REPRO_INTERP``
            environment knob. Semantics are bit-identical either way;
            only host wall-clock changes.
        enable_trial_memo: memoize inlining-trial results per
            compilation, keyed by (method, caller context, argument
            stamp signature), so repeated identical specializations of
            the same callee are cloned instead of re-built and
            re-simplified. Deterministically result-identical; exposed
            as a flag so differential configs can pin it off.
    """

    def __init__(
        self,
        hot_threshold=40,
        compile_enabled=True,
        cost_model=None,
        icache=None,
        optimizer=None,
        max_compiled_methods=2000,
        context_sensitive_profiles=False,
        interp_predecode=None,
        enable_trial_memo=True,
    ):
        self.hot_threshold = hot_threshold
        self.compile_enabled = compile_enabled
        self.cost_model = cost_model or CostModel()
        self.icache = icache or ICacheModel()
        self.optimizer = optimizer or OptimizerConfig()
        self.max_compiled_methods = max_compiled_methods
        self.context_sensitive_profiles = context_sensitive_profiles
        self.interp_predecode = interp_predecode
        self.enable_trial_memo = enable_trial_memo
