"""Inlining decision tracing.

Graal ships ``-Dgraal.TraceInlining`` precisely because inliners are
impossible to debug blind; this is our equivalent. An
:class:`InlineTracer` passed to
:class:`~repro.core.inliner.IncrementalInliner` records every decision
the algorithm makes — expansions with their Eq. 8 numbers, declines,
cluster formation, Eq. 12 verdicts, typeswitch emissions, round
boundaries and the termination reason — as structured events that can
be inspected programmatically or rendered as an indented log.
"""


class TraceEvent:
    """One traced decision."""

    __slots__ = ("kind", "detail", "round_index")

    def __init__(self, kind, detail, round_index):
        self.kind = kind
        self.detail = detail
        self.round_index = round_index

    def __repr__(self):
        return "<%s r%d %s>" % (self.kind, self.round_index, self.detail)


class InlineTracer:
    """Collects :class:`TraceEvent` objects during one inliner run."""

    def __init__(self):
        self.events = []
        self.round_index = 0

    # -- hooks called by the inliner -------------------------------------

    def begin_round(self, root_size):
        self.round_index += 1
        self._emit("round", {"root_size": root_size})

    def expanded(self, node, benefit, size, threshold):
        self._emit(
            "expand",
            {
                "method": _name(node),
                "benefit": benefit,
                "size": size,
                "threshold": threshold,
                "frequency": node.frequency,
            },
        )

    def declined(self, node, benefit, size, threshold):
        self._emit(
            "decline",
            {
                "method": _name(node),
                "benefit": benefit,
                "size": size,
                "threshold": threshold,
            },
        )

    def cluster(self, node, members, ratio):
        self._emit(
            "cluster",
            {"root": _name(node), "members": members, "ratio": ratio},
        )

    def inlined(self, node, ratio, threshold):
        self._emit(
            "inline",
            {"method": _name(node), "ratio": ratio, "threshold": threshold},
        )

    def rejected(self, node, ratio, threshold):
        self._emit(
            "reject",
            {"method": _name(node), "ratio": ratio, "threshold": threshold},
        )

    def typeswitch(self, node, targets):
        self._emit("typeswitch", {"callsite": _name(node), "targets": targets})

    def terminated(self, reason, root_size):
        self._emit("terminate", {"reason": reason, "root_size": root_size})

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind):
        return [e for e in self.events if e.kind == kind]

    def render(self):
        """The whole trace as an indented, readable log."""
        lines = []
        for event in self.events:
            if event.kind == "round":
                lines.append(
                    "round %d (root %d nodes)"
                    % (event.round_index, event.detail["root_size"])
                )
            elif event.kind == "expand":
                d = event.detail
                lines.append(
                    "  expand  %-30s B_L=%-8.2f |ir|=%-5d thr=%.3f"
                    % (d["method"], d["benefit"], d["size"], d["threshold"])
                )
            elif event.kind == "decline":
                d = event.detail
                lines.append(
                    "  decline %-30s B_L=%-8.2f |ir|=%-5d thr=%.3f"
                    % (d["method"], d["benefit"], d["size"], d["threshold"])
                )
            elif event.kind == "cluster":
                d = event.detail
                lines.append(
                    "  cluster %-30s ratio=%-8.3f {%s}"
                    % (d["root"], d["ratio"], ", ".join(d["members"]))
                )
            elif event.kind == "inline":
                d = event.detail
                lines.append(
                    "  INLINE  %-30s ratio=%-8.3f thr=%.3f"
                    % (d["method"], d["ratio"], d["threshold"])
                )
            elif event.kind == "reject":
                d = event.detail
                lines.append(
                    "  keep    %-30s ratio=%-8.3f thr=%.3f"
                    % (d["method"], d["ratio"], d["threshold"])
                )
            elif event.kind == "typeswitch":
                d = event.detail
                lines.append(
                    "  typeswitch at %s over {%s}"
                    % (d["callsite"], ", ".join(d["targets"]))
                )
            elif event.kind == "terminate":
                d = event.detail
                lines.append(
                    "terminated: %s (root %d nodes)"
                    % (d["reason"], d["root_size"])
                )
        return "\n".join(lines)

    def _emit(self, kind, detail):
        self.events.append(TraceEvent(kind, detail, self.round_index))


def _name(node):
    if node.method is not None:
        return node.method.qualified_name
    invoke = node.invoke
    if invoke is not None:
        return "%s.%s" % (invoke.declared_class, invoke.method_name)
    return "<root>"
