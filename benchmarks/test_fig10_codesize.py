"""Figure 10 — installed code size bars.

The paper compares machine code installed by Graal-with-new-inliner,
C2, and a first-tier-only configuration, observing: (1) the new inliner
usually installs more code than C2-style inlining; (2) on some
benchmarks it installs a comparable amount yet runs faster (the
inliner's wins are not purely "more code = more speed"); and (3) a
baseline tier that compiles everything it runs (our no-inline compiler
stands in for C1) shows that second-tier code size is not the dominant
share of what a VM installs overall.
"""

from benchmarks.conftest import INSTANCES, figure_benchmarks
from repro.bench.harness import print_table, run_matrix

CONFIGS = ["incremental", "greedy", "c2", "no-inline"]


def test_fig10_code_size(benchmark, steady_engine_factory):
    results = run_matrix(
        CONFIGS, benchmarks=figure_benchmarks(), instances=INSTANCES
    )
    print_table(
        results, CONFIGS, metric="code",
        title="Figure 10: installed machine code (instructions)",
    )
    print_table(
        results, CONFIGS, metric="time",
        title="Figure 10 companion: steady cycles",
    )

    more_than_c2 = 0
    faster_with_similar_code = 0
    for name, row in results.items():
        inc, c2 = row["incremental"], row["c2"]
        if inc.installed_size >= c2.installed_size:
            more_than_c2 += 1
        if (
            inc.installed_size <= 1.3 * c2.installed_size
            and inc.mean_cycles < 0.97 * c2.mean_cycles
        ):
            faster_with_similar_code += 1

    # Shape (1): the new inliner usually installs at least as much code.
    assert more_than_c2 >= len(results) // 2, (
        "expected the incremental inliner to install >= C2-sized code "
        "on most benchmarks (got %d/%d)" % (more_than_c2, len(results))
    )
    print(
        "installed >= C2 code on %d/%d benchmarks; faster-with-similar-code "
        "on %d" % (more_than_c2, len(results), faster_with_similar_code)
    )

    engine = steady_engine_factory("stmbench7", "incremental")
    benchmark(engine.run_iteration, "Main", "run")
