"""Clustering analysis tests (Listing 6, Eq. 9–11)."""

import pytest

from repro.core.analysis import CostBenefitAnalysis, tuple_ge, tuple_ratio
from repro.core.calltree import CallNode, NodeKind
from repro.core.params import InlinerParams
from tests.test_core_calltree import _cutoff, _root


class _FakeContext:
    pass


def _analyze(root, clustering=True):
    analysis = CostBenefitAnalysis(InlinerParams(), clustering=clustering)
    return analysis.run(root, _FakeContext())


class TestTupleOps:
    def test_ratio(self):
        node = CallNode(NodeKind.CUTOFF, None, None, None)
        node.tuple_benefit = 10.0
        node.tuple_cost = 4.0
        assert tuple_ratio(node) == pytest.approx(2.5)

    def test_comparison_is_by_ratio(self):
        a = CallNode(NodeKind.CUTOFF, None, None, None)
        b = CallNode(NodeKind.CUTOFF, None, None, None)
        a.tuple_benefit, a.tuple_cost = 10.0, 4.0  # 2.5
        b.tuple_benefit, b.tuple_cost = 9.0, 3.0  # 3.0
        assert tuple_ge(b, a)
        assert not tuple_ge(a, b)


class TestClustering:
    def test_single_leaf_tuple(self):
        root = _root()
        leaf = _cutoff(root, "leaf", size=10, frequency=6.0)
        _analyze(root)
        assert leaf.tuple_benefit == pytest.approx(6.0)  # f·(1+0)
        assert leaf.tuple_cost == pytest.approx(10.0)
        assert leaf.front == []
        assert not leaf.inlined_flag

    def test_benefit_forfeits_children(self):
        """Inlining a parent alone subtracts its children's benefits —
        unless merging the cluster recovers them (Listing 6)."""
        root = _root()
        parent = _cutoff(root, "p", size=10, frequency=2.0)
        parent.kind = NodeKind.EXPANDED
        child = _cutoff(parent, "c", size=5, frequency=12.0)
        _analyze(root)
        # Child's ratio (12/5) dominates, so it merges into the parent
        # cluster: tuple = (parent_local − child_B + child_B) | (10+5).
        assert child.inlined_flag
        assert parent.tuple_benefit == pytest.approx(2.0)
        assert parent.tuple_cost == pytest.approx(15.0)
        assert parent.front == []

    def test_low_value_child_stays_out(self):
        root = _root()
        parent = _cutoff(root, "p", size=5, frequency=50.0)
        parent.kind = NodeKind.EXPANDED
        cold = _cutoff(parent, "cold", size=400, frequency=0.01)
        _analyze(root)
        assert not cold.inlined_flag
        assert parent.front == [cold]
        # Parent keeps the forfeit: benefit reduced by the cold child's.
        assert parent.tuple_benefit == pytest.approx(50.0 - 0.01)

    def test_figure1_cluster_shape(self):
        """foreach + {length,get,apply} either merge as one cluster —
        the paper's central example."""
        root = _root()
        log = _cutoff(root, "log", size=8, frequency=1.0)
        log.kind = NodeKind.EXPANDED
        foreach = _cutoff(log, "foreach", size=20, frequency=1.0)
        foreach.kind = NodeKind.EXPANDED
        for name in ("length", "get", "apply"):
            _cutoff(foreach, name, size=4, frequency=40.0)
        _analyze(root)
        assert foreach.inlined_flag
        for child in foreach.children:
            assert child.inlined_flag
        assert log.front == []
        # Cluster tuple covers all five methods' costs.
        assert log.tuple_cost == pytest.approx(8 + 20 + 3 * 4)

    def test_deleted_and_generic_excluded(self):
        root = _root()
        parent = _cutoff(root, "p", size=10, frequency=5.0)
        parent.kind = NodeKind.EXPANDED
        dead = _cutoff(parent, "dead", size=5, frequency=100.0)
        dead.mark_deleted()
        opaque = _cutoff(parent, "opaque", size=5, frequency=100.0)
        opaque.kind = NodeKind.GENERIC
        _analyze(root)
        assert parent.front == []
        assert parent.tuple_benefit == pytest.approx(5.0)

    def test_nested_fronts_propagate(self):
        root = _root()
        a = _cutoff(root, "a", size=10, frequency=2.0)
        a.kind = NodeKind.EXPANDED
        b = _cutoff(a, "b", size=5, frequency=30.0)
        b.kind = NodeKind.EXPANDED
        cold = _cutoff(b, "cold", size=500, frequency=0.001)
        _analyze(root)
        assert b.inlined_flag
        assert not cold.inlined_flag
        assert a.front == [cold]  # b's front surfaced to a's cluster

    def test_cluster_roots_collected_through_inlined(self):
        root = _root()
        done = _cutoff(root, "done", size=5)
        done.kind = NodeKind.INLINED
        nested = _cutoff(done, "nested", size=5, frequency=2.0)
        direct = _cutoff(root, "direct", size=5, frequency=2.0)
        tops = _analyze(root)
        assert set(tops) == {nested, direct}


class TestOneByOne:
    def test_no_merging(self):
        root = _root()
        parent = _cutoff(root, "p", size=10, frequency=2.0)
        parent.kind = NodeKind.EXPANDED
        child = _cutoff(parent, "c", size=5, frequency=12.0)
        _analyze(root, clustering=False)
        assert not child.inlined_flag
        assert parent.front == [child]

    def test_classic_tuple(self):
        root = _root()
        parent = _cutoff(root, "p", size=10, frequency=2.0)
        parent.kind = NodeKind.EXPANDED
        _cutoff(parent, "c", size=5, frequency=12.0)
        _analyze(root, clustering=False)
        # 1-by-1 keeps plain B_L|size with no forfeit subtraction.
        assert parent.tuple_benefit == pytest.approx(2.0)
        assert parent.tuple_cost == pytest.approx(10.0)
