"""scalap — Scala classfile decoding.

scalap decodes the pickled signature bytes inside classfiles: byte-
stream readers composed of tiny methods (read varint, read ref, read
entry) invoked in a dispatch loop over entry kinds. All the win is in
inlining the small readers into the decode loop.
"""

DESCRIPTION = "pickle-format byte stream decoding with tiny readers"
ITERATIONS = 14

SOURCE = """
class ByteStream {
  var data: int[];
  var pos: int;
  def init(data: int[]): void { this.data = data; this.pos = 0; }
  @inline def hasMore(): bool { return this.pos < this.data.length; }
  @inline def readByte(): int {
    var b: int = this.data[this.pos];
    this.pos = this.pos + 1;
    return b;
  }
  def readVarint(): int {
    var result: int = 0;
    var b: int = this.readByte();
    while (b >= 128 && this.hasMore()) {
      result = (result << 7) | (b & 127);
      b = this.readByte();
    }
    return (result << 7) | b;
  }
}

class SymbolTable {
  var names: IntIntMap;
  var types: IntIntMap;
  def init(): void {
    this.names = new IntIntMap(64);
    this.types = new IntIntMap(64);
  }
}

object Main {
  static var pickled: int[];

  def setup(): void {
    var data: int[] = new int[900];
    var x: int = 91;
    var i: int = 0;
    while (i < 900) {
      x = (x * 37 + 11) % 251;
      data[i] = x;
      i = i + 1;
    }
    Main.pickled = data;
  }

  def decodeEntry(s: ByteStream, table: SymbolTable): int {
    var tag: int = s.readByte() % 6;
    if (tag == 0) {
      var name: int = s.readVarint();
      table.names.put(name & 1023, name);
      return 1;
    }
    if (tag == 1 || tag == 2) {
      var owner: int = s.readVarint();
      var tpe: int = s.readVarint();
      table.types.put((owner + tpe) & 1023, tpe);
      return 2;
    }
    if (tag == 3) {
      var len: int = s.readByte() % 5;
      var k: int = 0;
      var acc: int = 0;
      while (k < len && s.hasMore()) {
        acc = acc + s.readVarint();
        k = k + 1;
      }
      return acc & 7;
    }
    s.readByte();
    return 0;
  }

  def run(): int {
    if (Main.pickled == null) { Main.setup(); }
    var total: int = 0;
    var round: int = 0;
    while (round < 2) {
      var s: ByteStream = new ByteStream(Main.pickled);
      var table: SymbolTable = new SymbolTable();
      while (s.pos + 8 < s.data.length) {
        total = total + Main.decodeEntry(s, table);
      }
      total = total + table.names.size + table.types.size;
      round = round + 1;
    }
    return total;
  }
}
"""
