"""GVN, DCE, block merging and read/write elimination tests."""

from repro.bytecode import MethodBuilder
from repro.bytecode.klass import FieldDef
from repro.ir import build_graph, check_graph
from repro.ir import nodes as n
from repro.opts import (
    global_value_numbering,
    merge_blocks,
    read_write_elimination,
    remove_dead_nodes,
    remove_unreachable_blocks,
)
from tests.execution import compare_tiers
from tests.helpers import fresh_program, single_method_program


def _graph(program, cls, name):
    graph = build_graph(program.lookup_method(cls, name), program)
    check_graph(graph, program)
    return graph


class TestGvn:
    def test_duplicate_expression_merged(self):
        def build(b):
            b.load(0).load(1).add()
            b.load(0).load(1).add()
            b.mul().retv()

        program = single_method_program(build, params=("int", "int"))
        graph = _graph(program, "T", "f")
        assert global_value_numbering(graph) == 1
        check_graph(graph, program)
        compare_tiers(program, "T", "f", [3, 4], graph=graph)

    def test_commutative_normalization(self):
        def build(b):
            b.load(0).load(1).add()
            b.load(1).load(0).add()
            b.mul().retv()

        program = single_method_program(build, params=("int", "int"))
        graph = _graph(program, "T", "f")
        assert global_value_numbering(graph) == 1

    def test_no_merge_across_siblings(self):
        # The same expression computed in both arms of a diamond must
        # NOT merge (neither dominates the other).
        def build(b):
            other = b.new_label()
            join = b.new_label()
            b.load(0).if_true(other)
            b.load(1).load(1).mul().store(2).goto(join)
            b.place(other).load(1).load(1).mul().store(2)
            b.place(join).load(2).retv()

        program = single_method_program(build, params=("int", "int"))
        graph = _graph(program, "T", "f")
        assert global_value_numbering(graph) == 0

    def test_dominating_block_merges_into_branch(self):
        def build(b):
            other = b.new_label()
            b.load(1).load(1).mul().store(2)
            b.load(0).if_true(other)
            b.load(2).retv()
            b.place(other).load(1).load(1).mul().retv()

        program = single_method_program(build, params=("int", "int"))
        graph = _graph(program, "T", "f")
        assert global_value_numbering(graph) == 1
        compare_tiers(program, "T", "f", [1, 7], graph=graph)

    def test_impure_not_merged(self):
        def build(b):
            b.load(0).load(1).div()
            b.load(0).load(1).div()
            b.add().retv()

        program = single_method_program(build, params=("int", "int"))
        graph = _graph(program, "T", "f")
        assert global_value_numbering(graph) == 0  # divisor not constant


class TestDce:
    def test_dead_pure_nodes_removed(self):
        def build(b):
            b.load(0).load(0).mul().pop()
            b.load(0).retv()

        program = single_method_program(build)
        graph = _graph(program, "T", "f")
        removed = remove_dead_nodes(graph)
        assert removed >= 1
        muls = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.BinOpNode)
        ]
        assert not muls

    def test_unused_allocation_removed(self):
        program = fresh_program()
        program.define_class("Empty")
        holder = program.define_class("H", is_abstract=True)
        b = MethodBuilder("f", [], "int", is_static=True)
        b.new("Empty").pop().const(1).retv()
        holder.add_method(b.build())
        graph = _graph(program, "H", "f")
        remove_dead_nodes(graph)
        news = [
            x for block in graph.blocks for x in block.instrs if isinstance(x, n.NewNode)
        ]
        assert not news

    def test_negative_length_array_kept(self):
        def build(b):
            b.const(-1).newarray("int").pop()
            b.const(0).retv()

        program = single_method_program(build, params=())
        graph = _graph(program, "T", "f")
        remove_dead_nodes(graph)
        arrays = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.NewArrayNode)
        ]
        assert arrays  # must still trap

    def test_unreachable_block_removal(self):
        def build(b):
            dead = b.new_label()
            b.load(0).retv()
            b.place(dead).const(1).retv()

        # The dead label block is never referenced -> builder already
        # skips it; craft reachability loss through a pruned branch.
        program = single_method_program(build)
        graph = _graph(program, "T", "f")
        before = len(graph.blocks)
        assert remove_unreachable_blocks(graph) == 0  # builder was clean

    def test_block_merging_collapses_chains(self):
        def build(b):
            middle = b.new_label()
            b.goto(middle)
            b.place(middle).load(0).retv()

        program = single_method_program(build)
        graph = _graph(program, "T", "f")
        merged = merge_blocks(graph)
        assert merged >= 1
        assert len(graph.blocks) == 1
        check_graph(graph, program)
        compare_tiers(program, "T", "f", [9], graph=graph)


class TestReadWriteElimination:
    def _field_program(self):
        program = fresh_program()
        box = program.define_class("BoxC")
        box.add_field(FieldDef("v", "int"))
        program.define_class("H", is_abstract=True)
        return program

    def test_load_after_store_forwarded(self):
        program = self._field_program()
        b = MethodBuilder("f", ["BoxC", "int"], "int", is_static=True)
        b.load(0).load(1).putfield("BoxC", "v")
        b.load(0).getfield("BoxC", "v").retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        loads, stores = read_write_elimination(graph, program)
        assert loads == 1
        returns = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.ReturnNode)
        ]
        assert returns[0].value() is graph.params[1]

    def test_dead_store_removed(self):
        program = self._field_program()
        b = MethodBuilder("f", ["BoxC"], "int", is_static=True)
        b.load(0).const(1).putfield("BoxC", "v")
        b.load(0).const(2).putfield("BoxC", "v")
        b.load(0).getfield("BoxC", "v").retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        loads, stores = read_write_elimination(graph, program)
        assert stores == 1 and loads == 1
        check_graph(graph, program)
        vm_stores = [
            x
            for block in graph.blocks
            for x in block.instrs
            if isinstance(x, n.StoreFieldNode)
        ]
        assert len(vm_stores) == 1

    def test_aliasing_store_kills(self):
        program = self._field_program()
        b = MethodBuilder("f", ["BoxC", "BoxC"], "int", is_static=True)
        b.load(0).const(1).putfield("BoxC", "v")
        b.load(1).const(2).putfield("BoxC", "v")  # may alias param 0
        b.load(0).getfield("BoxC", "v").retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        loads, _ = read_write_elimination(graph, program)
        assert loads == 0  # must reload

    def test_call_kills_knowledge(self):
        program = self._field_program()
        b = MethodBuilder("f", ["BoxC"], "int", is_static=True)
        b.load(0).const(1).putfield("BoxC", "v")
        b.const(0).invokestatic("Builtins", "abs").pop()
        b.load(0).getfield("BoxC", "v").retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        loads, _ = read_write_elimination(graph, program)
        assert loads == 0

    def test_fresh_object_default_load(self):
        program = self._field_program()
        b = MethodBuilder("f", [], "int", is_static=True)
        b.new("BoxC").getfield("BoxC", "v").retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        loads, _ = read_write_elimination(graph, program)
        assert loads == 1
        returns = [
            blk.terminator
            for blk in graph.blocks
            if isinstance(blk.terminator, n.ReturnNode)
        ]
        assert returns[0].value().stamp.constant_value() == 0

    def test_repeated_load_collapses(self):
        program = self._field_program()
        b = MethodBuilder("f", ["BoxC"], "int", is_static=True)
        b.load(0).getfield("BoxC", "v")
        b.load(0).getfield("BoxC", "v")
        b.add().retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        loads, _ = read_write_elimination(graph, program)
        assert loads == 1

    def test_semantics_preserved_with_rwe(self):
        program = self._field_program()
        b = MethodBuilder("f", ["BoxC", "int"], "int", is_static=True)
        b.load(0).load(1).putfield("BoxC", "v")
        b.load(0).getfield("BoxC", "v")
        b.load(0).const(7).putfield("BoxC", "v")
        b.load(0).getfield("BoxC", "v")
        b.add().retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        read_write_elimination(graph, program)
        remove_dead_nodes(graph)
        check_graph(graph, program)
        # Run both tiers with an actual BoxC instance.
        from repro.runtime import VMState
        from repro.interp import Interpreter
        from tests.execution import execute_graph

        vm = VMState(program)
        box = vm.allocate("BoxC")
        expected = Interpreter(vm).execute(
            program.lookup_method("H", "f"), [box, 5]
        )
        vm2 = VMState(program)
        box2 = vm2.allocate("BoxC")
        actual, _ = execute_graph(graph, program, [box2, 5], vm=vm2)
        assert expected == actual == 12

    def _count_stores(self, graph):
        return sum(
            isinstance(x, n.StoreFieldNode)
            for block in graph.blocks
            for x in block.instrs
        )

    def test_store_not_removed_across_trapping_div(self):
        # obj.v = p1; p1 / p2 (may trap); obj.v = 0 — if the DIV traps,
        # the first store is the observable heap state, so dead-store
        # elimination must keep it (precise exceptions).
        program = self._field_program()
        b = MethodBuilder("f", ["BoxC", "int", "int"], "int", is_static=True)
        b.load(0).load(1).putfield("BoxC", "v")
        b.load(1).load(2).div().pop()
        b.load(0).const(0).putfield("BoxC", "v")
        b.const(0).retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        _, stores = read_write_elimination(graph, program)
        assert stores == 0
        assert self._count_stores(graph) == 2

    def test_store_removed_across_pure_div(self):
        # A constant non-zero divisor cannot trap: no barrier, DSE fires.
        program = self._field_program()
        b = MethodBuilder("f", ["BoxC", "int"], "int", is_static=True)
        b.load(0).load(1).putfield("BoxC", "v")
        b.load(1).const(3).div().pop()
        b.load(0).const(0).putfield("BoxC", "v")
        b.const(0).retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        _, stores = read_write_elimination(graph, program)
        assert stores == 1
        assert self._count_stores(graph) == 1

    def test_trappable_store_not_removed_across_static_store(self):
        # The receiver is a parameter (possibly null): the first store
        # may itself trap, and the PUTSTATIC between the stores is
        # observable — their relative order must be preserved.
        program = self._field_program()
        program.klass("H").add_field(
            FieldDef("s", "int", is_static=True)
        )
        b = MethodBuilder("f", ["BoxC", "int"], "int", is_static=True)
        b.load(0).load(1).putfield("BoxC", "v")
        b.const(5).putstatic("H", "s")
        b.load(0).const(0).putfield("BoxC", "v")
        b.const(0).retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        _, stores = read_write_elimination(graph, program)
        assert stores == 0
        assert self._count_stores(graph) == 2

    def test_nonnull_store_removed_across_static_store(self):
        # A freshly allocated receiver cannot trap, so the static store
        # between the two field stores is no barrier.
        program = self._field_program()
        program.klass("H").add_field(
            FieldDef("s", "int", is_static=True)
        )
        b = MethodBuilder("f", ["int"], "int", is_static=True)
        b.new("BoxC").store(1)
        b.load(1).load(0).putfield("BoxC", "v")
        b.const(5).putstatic("H", "s")
        b.load(1).const(0).putfield("BoxC", "v")
        b.const(0).retv()
        program.klass("H").add_method(b.build())
        graph = _graph(program, "H", "f")
        _, stores = read_write_elimination(graph, program)
        assert stores == 1
        assert self._count_stores(graph) == 1
