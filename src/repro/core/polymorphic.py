"""Polymorphic inlining: typeswitch emission (§IV).

Following Hölzle and Ungar, a dispatched callsite with a usable
receiver profile is replaced by an if-cascade of exact-type checks —
one per speculated target, most probable first — each guarding a direct
call to the resolved method (which the inlining phase may then replace
with the method's body). By default the cascade ends in the original
virtual call as a fallback, covering profile pollution and unseen types
without deoptimization machinery.

In *speculative* mode (``speculate=True``, only legal when the invoke
carries frame state from a speculative graph build) the fallback is
replaced by deoptimization machinery instead:

- a monomorphic profile emits no cascade at all — an exact-type
  :class:`~repro.ir.nodes.GuardNode` followed by the direct call,
  straight-line in the host block (the Figure 1 ideal: no virtual
  fallback arm, no merge, no phi);
- a polymorphic profile keeps the cascade but terminates the final
  else-block with a :class:`~repro.ir.nodes.DeoptNode`, so the
  megamorphic path contributes nothing to the merge and vanishes from
  the compiled code.

Branch probabilities on the cascade are derived from the profile
(conditional on the earlier tests having failed), so downstream
frequency annotation prices the fast paths correctly.
"""

from repro.ir import nodes as n
from repro.ir import stamps as st
from repro.errors import IRError

#: Speculation reasons recorded in deopt signals and the speculation log.
REASON_MONOMORPHIC = "monomorphic-receiver"
REASON_POLYMORPHIC = "polymorphic-receiver"


def _refined_receiver(graph, receiver, type_name, program):
    """A Pi refining *receiver* to exactly *type_name*."""
    pi = graph.register(
        n.PiNode(
            receiver,
            receiver.stamp.join(
                st.ref_stamp(type_name, exact=True, non_null=True), program
            ),
        )
    )
    if pi.stamp.kind == st.Stamp.BOTTOM:
        pi.stamp = st.ref_stamp(type_name, exact=True, non_null=True)
    return pi


def _emit_guarded_monomorphic(graph, invoke, target, program):
    """Speculative monomorphic form: guard + direct call, no cascade."""
    block = invoke.block
    position = block.instrs.index(invoke)
    receiver = invoke.inputs[0]
    returns_value = invoke.stamp.kind != st.Stamp.VOID
    type_name, probability, method = target
    state = list(invoke.state_values)

    check = graph.register(n.InstanceOfNode(receiver, type_name, exact=True))
    guard = graph.register(
        n.GuardNode(check, REASON_MONOMORPHIC, frames=invoke.frames, state=state)
    )
    pi = _refined_receiver(graph, receiver, type_name, program)
    direct = graph.register(
        n.InvokeNode(
            "direct",
            invoke.declared_class,
            invoke.method_name,
            [pi] + list(invoke.inputs[1 : invoke.n_args]),
            invoke.stamp,
            target=method,
            bci=invoke.bci,
        )
    )
    direct.frequency = invoke.frequency
    direct.append_frame_state(state, invoke.frames)
    for offset, node in enumerate((check, guard, pi, direct)):
        block.insert(position + offset, node)
    block.instrs.remove(invoke)
    if returns_value:
        graph.replace_uses(invoke, direct)
    elif invoke.uses:
        raise IRError("void invoke has uses")
    invoke.clear_inputs()
    invoke.block = None
    return {type_name: direct}


def emit_typeswitch(graph, invoke, targets, program, speculate=False):
    """Replace *invoke* with a typeswitch over *targets*.

    Args:
        graph: the graph containing *invoke* (the compilation root).
        invoke: the dispatched :class:`~repro.ir.nodes.InvokeNode`.
        targets: list of ``(type_name, probability, method)``.
        program: for stamp refinement.
        speculate: replace the virtual fallback with guard/deopt; the
            invoke must carry frame state (see the module docstring).

    Returns:
        ``{type_name: direct InvokeNode}`` for the cascade's arms.
    """
    block = invoke.block
    if block is None or block not in graph.blocks:
        raise IRError("invoke is not in this graph")
    if speculate and not invoke.frames:
        raise IRError("cannot speculate without frame state on %r" % (invoke,))
    if speculate and len(targets) == 1:
        return _emit_guarded_monomorphic(graph, invoke, targets[0], program)
    position = block.instrs.index(invoke)
    receiver = invoke.inputs[0]
    returns_value = invoke.stamp.kind != st.Stamp.VOID
    state = list(invoke.state_values)

    # Split the host block after the invoke.
    merge = graph.new_block()
    merge.instrs = block.instrs[position + 1 :]
    for node in merge.instrs:
        node.block = merge
    merge.terminator = block.terminator
    if merge.terminator is not None:
        merge.terminator.block = merge
        for succ in merge.terminator.successors():
            index = succ.pred_index(block)
            succ.preds[index] = merge
    block.instrs = block.instrs[:position]
    block.terminator = None
    merge.frequency = block.frequency

    arm_invokes = {}
    result_inputs = []
    merge_preds = []
    current = block  # block receiving the next type test
    remaining = 1.0
    for type_name, probability, method in targets:
        arm = graph.new_block()
        arm.frequency = block.frequency * probability
        check = graph.register(n.InstanceOfNode(receiver, type_name, exact=True))
        current.append(check)
        # Conditional on the earlier tests having failed. When rounding
        # pushes the covered mass to (or above) 1.0 the residual is
        # clamped to 0 and the test is treated as near-certain.
        conditional = (
            min(0.999, probability / remaining) if remaining > 1e-9 else 0.999
        )
        remaining = max(0.0, remaining - probability)
        next_block = graph.new_block()
        next_block.frequency = block.frequency * remaining
        terminator = graph.register(
            n.IfNode(check, arm, next_block, conditional)
        )
        current.set_terminator(terminator)
        arm.preds = [current]
        next_block.preds = [current]
        # Arm body: refine the receiver, call directly.
        pi = _refined_receiver(graph, receiver, type_name, program)
        arm.append(pi)
        args = [pi] + list(invoke.inputs[1 : invoke.n_args])
        direct = graph.register(
            n.InvokeNode(
                "direct",
                invoke.declared_class,
                invoke.method_name,
                args,
                invoke.stamp,
                target=method,
                bci=invoke.bci,
            )
        )
        direct.frequency = invoke.frequency * probability
        if invoke.frames:
            direct.append_frame_state(state, invoke.frames)
        arm.append(direct)
        goto = graph.register(n.GotoNode(merge))
        arm.set_terminator(goto)
        merge_preds.append(arm)
        if returns_value:
            result_inputs.append(direct)
        arm_invokes[type_name] = direct
        current = next_block

    if speculate:
        # No fallback arm: every speculated check failed means the
        # receiver profile was refuted — abandon compiled execution.
        deopt = graph.register(
            n.DeoptNode(REASON_POLYMORPHIC, frames=invoke.frames, state=state)
        )
        current.set_terminator(deopt)
    else:
        # Fallback: the original dispatched call. Its profile metadata
        # is normalized to the *uncovered* remainder — the cascade has
        # already peeled the speculated types off, so inheriting the
        # full snapshot (or a stale megamorphic bit when coverage is
        # ~100%) would skew downstream size/benefit estimates.
        covered = {type_name for type_name, _, _ in targets}
        fallback_types = [
            (type_name, probability)
            for type_name, probability in invoke.receiver_types
            if type_name not in covered
        ]
        fallback_megamorphic = invoke.megamorphic
        if remaining <= 1e-9 and not fallback_types:
            fallback_megamorphic = False
        fallback = graph.register(
            n.InvokeNode(
                invoke.kind,
                invoke.declared_class,
                invoke.method_name,
                list(invoke.args),
                invoke.stamp,
                receiver_types=fallback_types,
                megamorphic=fallback_megamorphic,
                bci=invoke.bci,
            )
        )
        fallback.frequency = invoke.frequency * remaining
        if invoke.frames:
            fallback.append_frame_state(state, invoke.frames)
        current.append(fallback)
        goto = graph.register(n.GotoNode(merge))
        current.set_terminator(goto)
        merge_preds.append(current)
        if returns_value:
            result_inputs.append(fallback)

    merge.preds = merge_preds
    result = None
    if returns_value:
        if len(result_inputs) == 1:
            result = result_inputs[0]
        else:
            phi = graph.register(n.PhiNode(result_inputs, invoke.stamp))
            merge.add_phi(phi)
            phi.recompute_stamp(program)
            result = phi
        graph.replace_uses(invoke, result)
    elif invoke.uses:
        raise IRError("void invoke has uses")
    invoke.clear_inputs()
    # The original invoke node is gone from the block (it was sliced out
    # of block.instrs when splitting); detach it fully.
    invoke.block = None
    return arm_invokes
