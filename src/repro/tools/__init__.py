"""Command-line tools.

- ``python -m repro.tools.run program.minij`` — compile and run a minij
  program on the tiered VM, with optional inliner selection and
  per-iteration statistics;
- ``python -m repro.tools.trace program.minij Class.method`` — show the
  inlining decisions made while compiling one method;
- ``python -m repro.tools.disasm program.minij`` — dump bytecode, SSA IR
  or machine code for a method;
- ``python -m repro.tools.bench`` — run benchmark × configuration
  sweeps from the command line.
"""
