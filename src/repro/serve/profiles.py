"""Cross-tenant profile aggregation for shared library methods.

When many tenants run the same library code, each tenant's view of a
callsite is sparser than the fleet's: receiver histograms and branch
probabilities converge much faster when pooled. The
:class:`SharedProfileAggregator` keeps one global
:class:`~repro.interp.profiles.MethodProfile` per shared method;
tenant interpreters write through to it (fan-out, reusing the
context-sensitive plumbing) and tenant compilers read the *merged*
profile instead of their local one.

Merge policy, per tenant:

- ``merge="shared"`` (default): the tenant's interpreter contributes to
  the global profile and its compiler reads the pooled data.
- ``merge="isolated"`` (the per-tenant override): the tenant neither
  contributes nor reads — fully private profiles, e.g. for a tenant
  whose traffic shape would pollute the pool (megamorphic saturation is
  contagious: one tenant's 9 receiver types saturate the shared
  histogram for everyone).

What stays tenant-local always: invocation counts used for *compile
triggers* (``hotness``) — one tenant's traffic must not get another
tenant's methods compiled, or tenant A's warmup would charge tenant B's
compile budget.

Which methods are "shared" is a predicate on the qualified method name;
the default shares everything (tenants running the same program pool
all their profiles), and a prefix predicate
(:func:`share_by_class_prefix`) restricts pooling to library classes.
"""

import copy
import threading

from repro.interp.profiles import MethodProfile, ProfileStore, _FanoutProfile


def share_by_class_prefix(*prefixes):
    """A share predicate: pool only methods of classes whose name
    starts with one of *prefixes* (e.g. ``"Lib"``, ``"java."``)."""

    def predicate(qualified_name):
        return qualified_name.startswith(tuple(prefixes))

    return predicate


class SharedProfileAggregator:
    """One global profile table, fed by every sharing tenant."""

    def __init__(self, share=None):
        #: qualified method name -> aggregate MethodProfile
        self._global = {}
        self._lock = threading.Lock()
        self._share = share  # predicate(qualified_name) or None = all

    def shares(self, qualified_name):
        return self._share is None or self._share(qualified_name)

    def global_profile(self, qualified_name):
        """The global profile for one method, created on first use."""
        profile = self._global.get(qualified_name)
        if profile is None:
            with self._lock:
                profile = self._global.setdefault(
                    qualified_name, MethodProfile()
                )
        return profile

    def merged_copy(self, qualified_name):
        """A snapshot copy of the global profile, or None when the pool
        has nothing. Copied because the caller (a compiler) iterates
        its dicts while other tenant threads keep writing."""
        profile = self._global.get(qualified_name)
        if profile is None or profile.invocations == 0:
            return None
        for _ in range(8):
            try:
                return copy.deepcopy(profile)
            except RuntimeError:
                continue
        return None

    def pooled_method_names(self):
        return sorted(self._global)

    def store_for_tenant(self, merge="shared", context_sensitive=False,
                         obs=None):
        """A :class:`TenantProfileStore` wired to this aggregator."""
        return TenantProfileStore(
            self, merge=merge, context_sensitive=context_sensitive, obs=obs
        )


class TenantProfileStore(ProfileStore):
    """A per-tenant profile store that pools shared methods.

    Writes fan out (local + global); compiler reads
    (:meth:`maybe_of`) prefer the pooled profile. Hotness — the compile
    trigger — always reads the tenant-local table.
    """

    def __init__(self, aggregator, merge="shared", context_sensitive=False,
                 obs=None):
        super().__init__(context_sensitive=context_sensitive, obs=obs)
        if merge not in ("shared", "isolated"):
            raise ValueError("unknown merge policy %r" % (merge,))
        self._aggregator = aggregator
        self.merge = merge

    def _pooled(self, qualified_name):
        return (
            self.merge == "shared"
            and self._aggregator.shares(qualified_name)
        )

    def of(self, method, caller=None):
        local = super().of(method, caller)
        if not self._pooled(method.qualified_name):
            return local
        shared = self._aggregator.global_profile(method.qualified_name)
        # Reuse the context-sensitive fan-out proxy: every write lands
        # in the tenant-local profile *and* the global pool.
        return _FanoutProfile(local, shared)

    def maybe_of(self, method):
        local = super().maybe_of(method)
        if not self._pooled(method.qualified_name):
            return local
        merged = self._aggregator.merged_copy(method.qualified_name)
        return merged if merged is not None else local

    def snapshot(self):
        """Deep copy for background compilation: local tables first,
        then pooled methods overlaid with their merged profiles — the
        worker sees exactly what a synchronous compile would."""
        clone = super().snapshot()
        if self.merge != "shared":
            return clone
        for name in self._aggregator.pooled_method_names():
            if not self._aggregator.shares(name):
                continue
            merged = self._aggregator.merged_copy(name)
            if merged is not None:
                clone._methods[name] = merged
        return clone
