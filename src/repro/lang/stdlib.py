'''The minij standard library, written in minij.

The library deliberately mirrors the shape of the Scala collections the
paper's benchmarks exercise: generic traits with *default methods*
(`Seq.foreach` is the paper's `IndexedSeqOptimized.foreach` from
Figure 1 almost verbatim), erased `Object`-typed element access, boxed
integers, and function traits implemented by compiler-generated
anonymous classes. This is the abstraction tax that the incremental
inliner is designed to collapse.
'''

STDLIB_SOURCE = """
// ---------------------------------------------------------------------
// Function traits (lambda targets; one per erased signature).
// ---------------------------------------------------------------------
trait Fn0 { def apply(): Object; }
trait Fn1 { def apply(x: Object): Object; }
trait Fn2 { def apply(x: Object, y: Object): Object; }
trait Pred1 { def apply(x: Object): bool; }
trait Pred2 { def apply(x: Object, y: Object): bool; }
trait Action0 { def apply(): void; }
trait Action1 { def apply(x: Object): void; }
trait ToIntFn { def apply(x: Object): int; }
trait ToIntFn2 { def apply(x: Object, y: Object): int; }
trait IntFn0 { def apply(): int; }
trait IntFn1 { def apply(x: int): int; }
trait IntFn2 { def apply(x: int, y: int): int; }
trait IntPred { def apply(x: int): bool; }
trait IntPred2 { def apply(x: int, y: int): bool; }
trait IntAction { def apply(x: int): void; }
trait IntAction2 { def apply(x: int, y: int): void; }
trait IntToObjFn { def apply(x: int): Object; }
trait ObjIntFn { def apply(x: Object, y: int): Object; }
trait ObjIntAction { def apply(x: Object, y: int): void; }
trait ObjIntToInt { def apply(x: Object, y: int): int; }
trait IntObjFn { def apply(x: int, y: Object): Object; }

// ---------------------------------------------------------------------
// Boxed integer (the erasure tax generic code pays on the JVM).
// ---------------------------------------------------------------------
class Box {
  var value: int;
  def init(v: int): void { this.value = v; }
  @inline def get(): int { return this.value; }
}

// ---------------------------------------------------------------------
// Generic sequences: trait with default combinators (Figure 1's shape).
// ---------------------------------------------------------------------
trait Seq {
  def length(): int;
  def get(i: int): Object;

  def foreach(f: Action1): void {
    var i: int = 0;
    while (i < this.length()) { f.apply(this.get(i)); i = i + 1; }
  }
  def fold(z: Object, f: Fn2): Object {
    var acc: Object = z;
    var i: int = 0;
    while (i < this.length()) { acc = f.apply(acc, this.get(i)); i = i + 1; }
    return acc;
  }
  def count(p: Pred1): int {
    var n: int = 0;
    var i: int = 0;
    while (i < this.length()) {
      if (p.apply(this.get(i))) { n = n + 1; }
      i = i + 1;
    }
    return n;
  }
  def sumBy(f: ToIntFn): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < this.length()) { acc = acc + f.apply(this.get(i)); i = i + 1; }
    return acc;
  }
  def indexWhere(p: Pred1): int {
    var i: int = 0;
    while (i < this.length()) {
      if (p.apply(this.get(i))) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }
}

// A growable array-backed sequence (ArrayBuffer-like).
class ArraySeq implements Seq {
  var data: Object[];
  var size: int;
  def init(capacity: int): void {
    var cap: int = capacity;
    if (cap < 4) { cap = 4; }
    this.data = new Object[cap];
    this.size = 0;
  }
  def length(): int { return this.size; }
  def get(i: int): Object { return this.data[i]; }
  def set(i: int, x: Object): void { this.data[i] = x; }
  def add(x: Object): void {
    if (this.size == this.data.length) { this.grow(); }
    this.data[this.size] = x;
    this.size = this.size + 1;
  }
  @noinline def grow(): void {
    var bigger: Object[] = new Object[this.data.length * 2];
    var i: int = 0;
    while (i < this.size) { bigger[i] = this.data[i]; i = i + 1; }
    this.data = bigger;
  }
}

// An immutable cons list (List-like; get is O(i)).
class List implements Seq {
  var head: Object;
  var tail: List;
  var len: int;
  def init(h: Object, t: List): void {
    this.head = h;
    this.tail = t;
    if (t == null) { this.len = 1; } else { this.len = t.len + 1; }
  }
  def length(): int { return this.len; }
  def get(i: int): Object {
    var node: List = this;
    var j: int = i;
    while (j > 0) { node = node.tail; j = j - 1; }
    return node.head;
  }
}

// ---------------------------------------------------------------------
// Int-specialized sequences (the @specialized escape hatch).
// ---------------------------------------------------------------------
trait IntSeq {
  def length(): int;
  def get(i: int): int;

  def foreach(f: IntAction): void {
    var i: int = 0;
    while (i < this.length()) { f.apply(this.get(i)); i = i + 1; }
  }
  def fold(z: int, f: IntFn2): int {
    var acc: int = z;
    var i: int = 0;
    while (i < this.length()) { acc = f.apply(acc, this.get(i)); i = i + 1; }
    return acc;
  }
  def sum(): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < this.length()) { acc = acc + this.get(i); i = i + 1; }
    return acc;
  }
  def countWhere(p: IntPred): int {
    var n: int = 0;
    var i: int = 0;
    while (i < this.length()) {
      if (p.apply(this.get(i))) { n = n + 1; }
      i = i + 1;
    }
    return n;
  }
}

class IntArraySeq implements IntSeq {
  var data: int[];
  var size: int;
  def init(capacity: int): void {
    var cap: int = capacity;
    if (cap < 4) { cap = 4; }
    this.data = new int[cap];
    this.size = 0;
  }
  def length(): int { return this.size; }
  def get(i: int): int { return this.data[i]; }
  def set(i: int, x: int): void { this.data[i] = x; }
  def add(x: int): void {
    if (this.size == this.data.length) { this.grow(); }
    this.data[this.size] = x;
    this.size = this.size + 1;
  }
  @noinline def grow(): void {
    var bigger: int[] = new int[this.data.length * 2];
    var i: int = 0;
    while (i < this.size) { bigger[i] = this.data[i]; i = i + 1; }
    this.data = bigger;
  }
}

class IntRange implements IntSeq {
  var lo: int;
  var hi: int;
  def init(lo: int, hi: int): void { this.lo = lo; this.hi = hi; }
  def length(): int {
    if (this.hi > this.lo) { return this.hi - this.lo; }
    return 0;
  }
  def get(i: int): int { return this.lo + i; }
}

// ---------------------------------------------------------------------
// An open-addressing int->int hash map (power-of-two capacity).
// ---------------------------------------------------------------------
class IntIntMap {
  var keys: int[];
  var vals: int[];
  var used: int[];
  var cap: int;
  var size: int;
  def init(capacity: int): void {
    var cap: int = 8;
    while (cap < capacity) { cap = cap * 2; }
    this.cap = cap;
    this.keys = new int[cap];
    this.vals = new int[cap];
    this.used = new int[cap];
    this.size = 0;
  }
  @inline def slot(k: int): int { return (k * 40503) & (this.cap - 1); }
  def put(k: int, v: int): void {
    if (this.size * 4 >= this.cap * 3) { this.rehash(); }
    var i: int = this.slot(k);
    while (this.used[i] == 1 && this.keys[i] != k) {
      i = (i + 1) & (this.cap - 1);
    }
    if (this.used[i] == 0) { this.size = this.size + 1; }
    this.used[i] = 1;
    this.keys[i] = k;
    this.vals[i] = v;
  }
  def get(k: int, dflt: int): int {
    var i: int = this.slot(k);
    while (this.used[i] == 1) {
      if (this.keys[i] == k) { return this.vals[i]; }
      i = (i + 1) & (this.cap - 1);
    }
    return dflt;
  }
  def has(k: int): bool { return this.get(k, 0 - 2147483647) != 0 - 2147483647; }
  @noinline def rehash(): void {
    var oldKeys: int[] = this.keys;
    var oldVals: int[] = this.vals;
    var oldUsed: int[] = this.used;
    var oldCap: int = this.cap;
    this.cap = this.cap * 2;
    this.keys = new int[this.cap];
    this.vals = new int[this.cap];
    this.used = new int[this.cap];
    this.size = 0;
    var i: int = 0;
    while (i < oldCap) {
      if (oldUsed[i] == 1) { this.put(oldKeys[i], oldVals[i]); }
      i = i + 1;
    }
  }
}

// ---------------------------------------------------------------------
// Numeric helpers.
// ---------------------------------------------------------------------
object MathX {
  def sqrt(x: int): int {
    if (x <= 0) { return 0; }
    var guess: int = x;
    var next: int = (guess + 1) / 2;
    while (next < guess) {
      guess = next;
      next = (guess + x / guess) / 2;
    }
    return guess;
  }
  def pow(base: int, exp: int): int {
    var result: int = 1;
    var b: int = base;
    var e: int = exp;
    while (e > 0) {
      if ((e & 1) == 1) { result = result * b; }
      b = b * b;
      e = e >> 1;
    }
    return result;
  }
  def gcd(a: int, b: int): int {
    var x: int = abs(a);
    var y: int = abs(b);
    while (y != 0) {
      var t: int = x % y;
      x = y;
      y = t;
    }
    return x;
  }
}

// In-place int array sorting (insertion sort for small, quicksort above).
object Sort {
  def ints(a: int[]): void { Sort.quick(a, 0, a.length - 1); }
  def quick(a: int[], lo: int, hi: int): void {
    if (hi - lo < 12) { Sort.insertion(a, lo, hi); return; }
    var pivot: int = a[(lo + hi) / 2];
    var i: int = lo;
    var j: int = hi;
    while (i <= j) {
      while (a[i] < pivot) { i = i + 1; }
      while (a[j] > pivot) { j = j - 1; }
      if (i <= j) {
        var t: int = a[i];
        a[i] = a[j];
        a[j] = t;
        i = i + 1;
        j = j - 1;
      }
    }
    Sort.quick(a, lo, j);
    Sort.quick(a, i, hi);
  }
  def insertion(a: int[], lo: int, hi: int): void {
    var i: int = lo + 1;
    while (i <= hi) {
      var v: int = a[i];
      var j: int = i - 1;
      while (j >= lo && a[j] > v) {
        a[j + 1] = a[j];
        j = j - 1;
      }
      a[j + 1] = v;
      i = i + 1;
    }
  }
}
"""
