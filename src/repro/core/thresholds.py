"""The adaptive decision thresholds (§IV, Eq. 8 and Eq. 12).

Expansion threshold, Eq. 8 — a cutoff n is worth exploring while::

    B_L(n) / |ir(n)|  >=  exp((S_irn(root) − r1) / r2)

"The relative benefit threshold rises steadily as there are more and
more nodes in the root method" — exploration becomes pickier as the
call tree grows, but smoothly: a very beneficial call can still be
explored past the typical size.

Inlining threshold, Eq. 12 — a cluster with tuple ratio ⟨b|c⟩ is
inlined while::

    ⟨tuple(n)⟩  >=  t1 · 2^((|ir(root)| + |ir(n)|) / (16 · t2))

A note on the exponent: the paper's typesetting of Eq. 12 is ambiguous
("t1 · 2^{|ir(root)|+|ir(n)|}(16 − t2)"). We adopt the reading
``(|ir(root)| + |ir(n)|) / (16 · t2)``, which is the only grouping
consistent with the surrounding prose: the threshold (a) rises with the
root size, (b) is "sensitive to the size of the method due to the
|ir(n)| term in the exponent", i.e. *more forgiving towards small
methods*, and (c) with t1 = 0.005, t2 = 120 yields thresholds of the
same order as observed benefit/cost ratios for root sizes in the
1k–50k range Graal operates in.
"""

import math


def expansion_threshold(root_s_irn, params):
    """Right-hand side of Eq. 8.

    The exponent is clamped so extreme parameter sweeps (tiny r2)
    saturate to "never expand" instead of overflowing floats.
    """
    exponent = (root_s_irn - params.r1) / params.r2
    if exponent > 700.0:
        return math.inf
    return math.exp(exponent)


def should_expand(benefit, size, root_s_irn, params):
    """Eq. 8 as a decision: explore cutoff with (B_L, |ir|)?"""
    return benefit / max(1.0, float(size)) >= expansion_threshold(
        root_s_irn, params
    )


def inline_threshold(root_ir_size, node_ir_size, params):
    """Right-hand side of Eq. 12."""
    exponent = (root_ir_size + node_ir_size) / (16.0 * params.t2)
    # Guard the exponent: pathological parameter sweeps (tiny t2) would
    # otherwise overflow floats; past ~2^60 the decision is "no" anyway.
    if exponent > 60.0:
        return math.inf
    return params.t1 * (2.0 ** exponent)


def should_inline(tuple_ratio, root_ir_size, node_ir_size, params):
    """Eq. 12 as a decision."""
    return tuple_ratio >= inline_threshold(root_ir_size, node_ir_size, params)
