"""Structural IR validation.

The checker is run after construction and after every optimization pass
in tests (and optionally, via a compiler flag, in production pipelines).
It asserts the SSA invariants everything else assumes:

- every block has a terminator and consistent pred/succ edges;
- phi input counts equal predecessor counts;
- def-use links are bidirectional (``a in b.inputs`` ⇔ ``b in a.uses``);
- every definition dominates each of its uses (phi inputs must dominate
  the end of the corresponding predecessor block);
- nodes appear in exactly one block and are registered with the graph.
"""

from repro.errors import IRError
from repro.ir import nodes as n
from repro.ir.dominators import compute_dominators, dominates


def _frame_state_start(node):
    """First input index holding frame state, or None for stateless nodes."""
    if isinstance(node, n.InvokeNode):
        return node.n_args
    if isinstance(node, n.GuardNode):
        return 1
    return None


def check_graph(graph, program=None):
    """Validate *graph*; raises :class:`~repro.errors.IRError` on failure."""
    reachable = set(graph.reverse_postorder())
    _check_membership(graph)
    _check_edges(graph, reachable)
    _check_use_def(graph)
    _check_dominance(graph, reachable)
    return True


def _check_membership(graph):
    seen = set()
    for param in graph.params:
        if param.id < 0:
            raise IRError("unregistered param %r" % (param,))
        seen.add(param.id)
    for block in graph.blocks:
        for node in block.all_nodes():
            if node.id < 0:
                raise IRError("unregistered node %r in B%d" % (node, block.id))
            if node.id in seen:
                raise IRError("node id %d appears twice" % node.id)
            seen.add(node.id)
            if node.block is not block:
                raise IRError(
                    "node %r has wrong block back-reference" % (node,)
                )


def _check_edges(graph, reachable):
    for block in graph.blocks:
        if block in reachable and block.terminator is None:
            raise IRError("reachable block B%d has no terminator" % block.id)
        for phi in block.phis:
            if len(phi.inputs) != len(block.preds):
                raise IRError(
                    "phi %r has %d inputs for %d preds in B%d"
                    % (phi, len(phi.inputs), len(block.preds), block.id)
                )
        for succ in block.successors():
            count = sum(1 for p in succ.preds if p is block)
            expected = sum(1 for s in block.successors() if s is succ)
            if count != expected:
                raise IRError(
                    "edge B%d->B%d recorded %d times in preds, %d in succs"
                    % (block.id, succ.id, count, expected)
                )
        for pred in block.preds:
            if block not in pred.successors():
                raise IRError(
                    "B%d lists pred B%d, which does not target it"
                    % (block.id, pred.id)
                )


def _check_use_def(graph):
    for block in graph.blocks:
        for node in block.all_nodes():
            for input_node in node.inputs:
                if input_node is None:
                    continue
                if node not in input_node.uses:
                    raise IRError(
                        "%r uses %r but is not in its use set"
                        % (node, input_node)
                    )
            for user in node.uses:
                if node not in user.inputs:
                    raise IRError(
                        "%r lists user %r that does not input it"
                        % (node, user)
                    )


def _check_dominance(graph, reachable):
    idom = compute_dominators(graph)
    positions = {}
    for block in graph.blocks:
        for index, node in enumerate(block.all_nodes()):
            positions[node] = index

    def defined_ok(def_node, use_node, use_block, use_is_phi_input, pred):
        def_block = def_node.block
        if def_block is None:  # parameters float above the entry
            return True
        if def_block not in reachable:
            return use_block not in reachable
        if use_is_phi_input:
            return dominates(idom, def_block, pred)
        if def_block is use_block:
            if isinstance(use_node, n.PhiNode):
                return False  # non-edge phi use in same block
            return positions[def_node] < positions[use_node]
        return dominates(idom, def_block, use_block)

    for block in graph.blocks:
        if block not in reachable:
            continue
        for phi in block.phis:
            for index, input_node in enumerate(phi.inputs):
                if input_node is None:
                    continue
                pred = block.preds[index]
                if pred not in reachable:
                    continue
                if not defined_ok(input_node, phi, block, True, pred):
                    raise IRError(
                        "phi input %r does not dominate pred B%d of B%d"
                        % (input_node, pred.id, block.id)
                    )
        for node in block.instrs:
            for index, input_node in enumerate(node.inputs):
                if input_node is None:
                    # Frame-state inputs may be null: a local undefined
                    # along the executed path materializes as NULL at
                    # deopt. Everywhere else a null input is a bug.
                    start = _frame_state_start(node)
                    if start is None or index < start:
                        raise IRError("%r has a null input" % (node,))
                    continue
                if not defined_ok(input_node, node, block, False, None):
                    raise IRError(
                        "def %r does not dominate use %r" % (input_node, node)
                    )
        term = block.terminator
        if term is not None:
            for input_node in term.inputs:
                if input_node is None:
                    if not isinstance(term, n.DeoptNode):
                        raise IRError("%r has a null input" % (term,))
                    continue
                if not defined_ok(input_node, term, block, False, None):
                    raise IRError(
                        "def %r does not dominate terminator use %r"
                        % (input_node, term)
                    )
