"""Human-readable dumps of methods and programs."""


def disassemble_method(method):
    """Return a textual listing of *method*, one instruction per line."""
    header = "%smethod %s(%s) -> %s  [locals=%d]" % (
        "static " if method.is_static else "",
        method.name,
        ", ".join(method.param_types),
        method.return_type,
        method.max_locals,
    )
    lines = [header]
    if method.is_abstract:
        lines.append("  <abstract>")
        return "\n".join(lines)
    targets = set()
    for instr in method.code:
        if instr.op in ("IF", "GOTO"):
            targets.add(instr.target)
    for index, instr in enumerate(method.code):
        mark = "=>" if index in targets else "  "
        operands = " ".join(str(a) for a in instr.args)
        lines.append("%s %4d: %-15s %s" % (mark, index, instr.op, operands))
    return "\n".join(lines)


def disassemble_program(program):
    """Return a listing of every class and method in *program*."""
    chunks = []
    for name in sorted(program.classes):
        klass = program.classes[name]
        kind = "interface" if klass.is_interface else "class"
        sup = (" extends " + klass.superclass) if klass.superclass else ""
        impl = (
            " implements " + ", ".join(klass.interfaces) if klass.interfaces else ""
        )
        chunks.append("%s %s%s%s {" % (kind, name, sup, impl))
        for fname in sorted(klass.fields):
            field = klass.fields[fname]
            chunks.append(
                "  %sfield %s: %s" % (
                    "static " if field.is_static else "",
                    field.name,
                    field.type,
                )
            )
        for mname in sorted(klass.methods):
            body = disassemble_method(klass.methods[mname])
            chunks.append("\n".join("  " + line for line in body.splitlines()))
        chunks.append("}")
    return "\n".join(chunks)
