"""avrora — AVR microcontroller simulation.

The real avrora interprets AVR machine code: a tight dispatch loop over
instruction objects mutating a register file. We model exactly that: a
polymorphic ``Instr.exec`` hierarchy with more concrete subclasses than
the typeswitch budget (3 targets at ≥10%), so the inliner must pick the
hot targets and leave a virtual fallback — avrora is a benchmark where
the paper reports only modest differences between inliners.
"""

DESCRIPTION = "instruction-dispatch simulator loop over a register machine"
ITERATIONS = 12

SOURCE = """
trait Instr {
  def exec(m: Machine): void;
}

class Machine {
  var regs: int[];
  var mem: int[];
  var pc: int;
  var cycles: int;
  def init(): void {
    this.regs = new int[32];
    this.mem = new int[256];
    this.pc = 0;
    this.cycles = 0;
  }
}

class AddI implements Instr {
  var d: int; var a: int; var b: int;
  def init(d: int, a: int, b: int): void { this.d = d; this.a = a; this.b = b; }
  def exec(m: Machine): void {
    m.regs[this.d] = m.regs[this.a] + m.regs[this.b];
    m.pc = m.pc + 1;
    m.cycles = m.cycles + 1;
  }
}

class SubI implements Instr {
  var d: int; var a: int; var b: int;
  def init(d: int, a: int, b: int): void { this.d = d; this.a = a; this.b = b; }
  def exec(m: Machine): void {
    m.regs[this.d] = m.regs[this.a] - m.regs[this.b];
    m.pc = m.pc + 1;
    m.cycles = m.cycles + 1;
  }
}

class LdI implements Instr {
  var d: int; var addr: int;
  def init(d: int, addr: int): void { this.d = d; this.addr = addr; }
  def exec(m: Machine): void {
    m.regs[this.d] = m.mem[this.addr];
    m.pc = m.pc + 1;
    m.cycles = m.cycles + 2;
  }
}

class StI implements Instr {
  var s: int; var addr: int;
  def init(s: int, addr: int): void { this.s = s; this.addr = addr; }
  def exec(m: Machine): void {
    m.mem[this.addr] = m.regs[this.s];
    m.pc = m.pc + 1;
    m.cycles = m.cycles + 2;
  }
}

class BrNz implements Instr {
  var r: int; var target: int;
  def init(r: int, target: int): void { this.r = r; this.target = target; }
  def exec(m: Machine): void {
    if (m.regs[this.r] != 0) { m.pc = this.target; } else { m.pc = m.pc + 1; }
    m.cycles = m.cycles + 1;
  }
}

class Halt implements Instr {
  def exec(m: Machine): void { m.pc = 0 - 1; }
}

object Main {
  static var rom: Instr[];

  def setup(): void {
    // A countdown kernel: r1 = 120; loop { mem ops; r1 -= 1 } until 0.
    var rom: Instr[] = new Instr[12];
    rom[0] = new LdI(1, 0);
    rom[1] = new AddI(2, 2, 1);
    rom[2] = new StI(2, 1);
    rom[3] = new LdI(3, 1);
    rom[4] = new AddI(4, 3, 2);
    rom[5] = new SubI(1, 1, 5);
    rom[6] = new StI(4, 2);
    rom[7] = new AddI(6, 6, 4);
    rom[8] = new BrNz(1, 1);
    rom[9] = new Halt();
    Main.rom = rom;
  }

  def run(): int {
    if (Main.rom == null) { Main.setup(); }
    var m: Machine = new Machine();
    var rounds: int = 0;
    var sum: int = 0;
    while (rounds < 3) {
      m.pc = 0;
      m.mem[0] = 80 + rounds;
      m.regs[5] = 1;
      var steps: int = 0;
      while (m.pc >= 0 && steps < 1500) {
        Main.rom[m.pc].exec(m);
        steps = steps + 1;
      }
      sum = sum + m.regs[6] + m.cycles;
      rounds = rounds + 1;
    }
    return sum;
  }
}
"""
