"""The evaluation harness (§V).

- :mod:`programs <repro.bench.programs>` — 28 minij benchmark programs
  named after the paper's suites (DaCapo, Scala DaCapo, Spark-Perf,
  Neo4J, Dotty, STMBench7), each modelled on the dominant workload
  shape of its namesake;
- :mod:`measurement <repro.bench.measurement>` — the paper's protocol:
  several fresh VM instances per data point, steady-state mean of the
  last 40% (at most 20) of the iterations, mean ± std, installed code
  size;
- :mod:`configs <repro.bench.configs>` — the inliner configurations the
  figures compare;
- :mod:`harness <repro.bench.harness>` — benchmark × configuration
  sweeps with table rendering for each figure.
"""

from repro.bench.suite import all_benchmarks, get_benchmark, BenchmarkSpec
from repro.bench.measurement import measure_benchmark, Measurement
from repro.bench.configs import CONFIG_FACTORIES, make_config
from repro.bench.harness import run_matrix, format_table

__all__ = [
    "all_benchmarks",
    "get_benchmark",
    "BenchmarkSpec",
    "measure_benchmark",
    "Measurement",
    "CONFIG_FACTORIES",
    "make_config",
    "run_matrix",
    "format_table",
]
