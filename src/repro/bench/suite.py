"""Benchmark registry.

Each benchmark is a minij program in :mod:`repro.bench.programs` named
after one of the paper's benchmarks, with a workload modelled on its
namesake's dominant shape (the suites are described in §V). Loading is
cached — the bytecode is immutable, so one compiled program serves
every engine instance.
"""

import importlib

from repro.lang.loader import compile_source

#: name -> (module basename, suite)
_REGISTRY = {
    # DaCapo (Java-flavoured: moderate abstraction).
    "avrora": ("avrora", "dacapo"),
    "batik": ("batik", "dacapo"),
    "fop": ("fop", "dacapo"),
    "h2": ("h2", "dacapo"),
    "jython": ("jython", "dacapo"),
    "luindex": ("luindex", "dacapo"),
    "lusearch": ("lusearch", "dacapo"),
    "pmd": ("pmd", "dacapo"),
    "sunflow": ("sunflow", "dacapo"),
    "xalan": ("xalan", "dacapo"),
    # Scala DaCapo (abstraction-heavy: traits, lambdas, boxing).
    "actors": ("actors", "scala-dacapo"),
    "apparat": ("apparat", "scala-dacapo"),
    "factorie": ("factorie", "scala-dacapo"),
    "kiama": ("kiama", "scala-dacapo"),
    "scalac": ("scalac", "scala-dacapo"),
    "scaladoc": ("scaladoc", "scala-dacapo"),
    "scalap": ("scalap", "scala-dacapo"),
    "scalariform": ("scalariform", "scala-dacapo"),
    "scalatest": ("scalatest", "scala-dacapo"),
    "scalaxb": ("scalaxb", "scala-dacapo"),
    "specs": ("specs", "scala-dacapo"),
    "tmt": ("tmt", "scala-dacapo"),
    # Spark-Perf MLLib workloads.
    "gauss-mix": ("gauss_mix", "spark-perf"),
    "dec-tree": ("dec_tree", "spark-perf"),
    "naive-bayes": ("naive_bayes", "spark-perf"),
    # Others.
    "dotty": ("dotty", "other"),
    "neo4j": ("neo4j", "other"),
    "stmbench7": ("stmbench7", "other"),
}


class BenchmarkSpec:
    """A registered benchmark: metadata plus a cached loader."""

    def __init__(self, name, module_name, suite):
        self.name = name
        self.module_name = module_name
        self.suite = suite
        self._module = None
        self._program = None

    def _load_module(self):
        if self._module is None:
            self._module = importlib.import_module(
                "repro.bench.programs." + self.module_name
            )
        return self._module

    @property
    def source(self):
        return self._load_module().SOURCE

    @property
    def iterations(self):
        return getattr(self._load_module(), "ITERATIONS", 12)

    @property
    def description(self):
        return self._load_module().DESCRIPTION

    def jit_config_factory(self):
        """Per-benchmark JIT configuration (default settings unless the
        program module overrides ``make_jit_config``)."""
        module = self._load_module()
        factory = getattr(module, "make_jit_config", None)
        if factory is not None:
            return factory()
        from repro.jit.config import JitConfig

        return JitConfig(hot_threshold=25)

    def load(self):
        """Compile (once) and return the benchmark's program."""
        if self._program is None:
            self._program = compile_source(self.source)
        return self._program

    def __repr__(self):
        return "<BenchmarkSpec %s (%s)>" % (self.name, self.suite)


_SPECS = {
    name: BenchmarkSpec(name, module_name, suite)
    for name, (module_name, suite) in _REGISTRY.items()
}


def all_benchmarks():
    """Every benchmark, in the paper's listing order."""
    return list(_SPECS.values())


def get_benchmark(name):
    return _SPECS[name]


def benchmarks_in_suite(suite):
    return [spec for spec in _SPECS.values() if spec.suite == suite]
