"""Differential property tests over random *object-oriented* programs.

Extends the scalar random-program generator with arrays, objects,
fields and method calls — the surface where inlining bugs would
actually hide (argument wiring, receiver stamps, memory effects).
Every generated program must behave identically in the interpreter and
under the full JIT with the incremental inliner.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import tuned_inliner
from repro.interp import Interpreter
from repro.jit import Engine, JitConfig
from repro.lang import compile_source
from repro.runtime import VMState

_FIELD_EXPRS = [
    "c.a + c.b",
    "c.a * 2 - c.b",
    "c.sum()",
    "c.scaled(3)",
    "arr[i % %ARR%] + c.a",
    "c.b - arr[(i * 2) % %ARR%]",
]

_MUTATIONS = [
    "c.a = c.a + %d;",
    "c.b = c.b ^ %d;",
    "arr[i %% %%ARR%%] = arr[i %% %%ARR%%] + %d;",
    "c.bump(%d);",
]


@st.composite
def oo_programs(draw):
    array_len = draw(st.integers(2, 6))
    init_a = draw(st.integers(-10, 10))
    init_b = draw(st.integers(1, 10))
    loop = draw(st.integers(5, 25))
    statements = []
    for _ in range(draw(st.integers(1, 4))):
        template = draw(st.sampled_from(_MUTATIONS)) % draw(st.integers(1, 7))
        statements.append(template.replace("%ARR%", str(array_len)))
    expr = draw(st.sampled_from(_FIELD_EXPRS)).replace("%ARR%", str(array_len))
    return """
    class Cell {
      var a: int;
      var b: int;
      def init(a: int, b: int): void { this.a = a; this.b = b; }
      def sum(): int { return this.a + this.b; }
      def scaled(k: int): int { return this.a * k + this.b; }
      def bump(d: int): void { this.a = this.a + d; }
    }
    object Main {
      def run(): int {
        var c: Cell = new Cell(%d, %d);
        var arr: int[] = new int[%d];
        var acc: int = 0;
        var i: int = 0;
        while (i < %d) {
          %s
          acc = acc + (%s);
          i = i + 1;
        }
        return acc * 31 + c.sum();
      }
    }
    """ % (init_a, init_b, array_len, loop, " ".join(statements), expr)


class TestOoPrograms:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(oo_programs())
    def test_jit_matches_interpreter(self, source):
        program = compile_source(source)
        vm = VMState(program)
        expected = Interpreter(vm).call_static("Main", "run")
        engine = Engine(
            program, JitConfig(hot_threshold=2), inliner=tuned_inliner(0.1)
        )
        for _ in range(4):
            result = engine.run_iteration("Main", "run")
            assert result.value == expected
