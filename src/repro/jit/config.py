"""VM-level configuration."""

import os

from repro.backend.costmodel import CostModel
from repro.backend.icache import ICacheModel
from repro.opts.pipeline import OptimizerConfig


class JitConfig:
    """Configuration for one VM instance.

    Attributes:
        hot_threshold: profile hotness (invocations + backedge/8) at
            which a method is compiled.
        compile_enabled: False gives a pure-interpreter VM (the C1-less
            baseline used in code-size comparisons).
        cost_model: the :class:`~repro.backend.costmodel.CostModel`.
        icache: the :class:`~repro.backend.icache.ICacheModel`.
        optimizer: the :class:`~repro.opts.pipeline.OptimizerConfig`.
        max_compiled_methods: safety valve for runaway configurations.
        context_sensitive_profiles: record one-level-context receiver
            and branch profiles alongside the aggregates (the §VI
            extension); the inliner then specializes call-tree nodes
            with caller-specific profiles.
        interp_predecode: selects the interpreter executor. ``True``
            uses the pre-decoded handler-table tier
            (:mod:`repro.interp.predecode`), ``False`` the classic
            reference loop, ``None`` defers to the ``REPRO_INTERP``
            environment knob. Semantics are bit-identical either way;
            only host wall-clock changes.
        enable_trial_memo: memoize inlining-trial results per
            compilation, keyed by (method, caller context, argument
            stamp signature), so repeated identical specializations of
            the same callee are cloned instead of re-built and
            re-simplified. Deterministically result-identical; exposed
            as a flag so differential configs can pin it off.
        speculate: speculative devirtualization with deoptimization.
            ``True`` lets the inliner replace well-predicted virtual
            fallbacks with guard/deopt (:mod:`repro.deopt`); ``False``
            keeps the conservative typeswitch; ``None`` (default)
            defers to the ``REPRO_SPECULATE`` environment knob.
            ``REPRO_SPECULATE=off`` is a hard pin that overrides even
            an explicit ``True``, so differential harnesses can force
            the non-speculative configuration from the outside.
        speculation_min_coverage: minimum receiver-profile coverage
            (summed target probabilities) to drop the fallback.
        speculation_max_targets: speculate only through mono/bimorphic
            sites by default.
        speculation_deopt_limit: deopts tolerated per compiled root
            before the engine stops speculating in that method
            entirely (bounds deopt/recompile churn).
        typespec: profile-guided type-check speculation. ``True`` lets
            the graph builder replace a profile-monomorphic
            ``INSTANCEOF``/``CHECKCAST`` with an exact-type guard plus
            a Pi that pins the operand's type, so the canonicalizer
            folds the check (and every dominated check downstream);
            refuted guards deopt through the same frame-state path as
            speculative devirtualization. Requires speculation to be
            on (frame capture); ``False`` keeps every type check as a
            runtime test; ``None`` (default) defers to the
            ``REPRO_TYPESPEC`` environment knob. ``REPRO_TYPESPEC=off``
            is a hard pin that overrides even an explicit ``True``,
            mirroring ``REPRO_SPECULATE``.
        osr: on-stack replacement at loop backedges. ``True`` lets the
            interpreter transfer a running frame into compiled code
            when a backedge counter crosses ``osr_threshold``;
            ``False`` keeps frames in the interpreter until the next
            dispatch; ``None`` (default) defers to the ``REPRO_OSR``
            environment knob. ``REPRO_OSR=off`` is a hard pin that
            overrides even an explicit ``True``, mirroring
            ``REPRO_SPECULATE``.
        osr_threshold: taken-backedge count at a single branch pc at
            which the interpreter requests an OSR compilation for that
            ``(method, backedge bci)`` pair. Independent of
            ``hot_threshold``: OSR exists precisely for frames that
            never reach another dispatch boundary.
        flight_dump: path the engine dumps the flight-recorder ring to
            (as JSONL) when a compilation fails or a trap escapes the
            dispatch — the dump-on-crash hook. ``None`` defers to the
            ``REPRO_FLIGHT_DUMP`` environment knob; no-op when the
            engine's observability has no live flight recorder.
        compile_mode: how compilation requests are served. ``"sync"``
            compiles on the dispatching thread (the classic engine —
            compile cycles are charged to the running iteration, the
            paper's single-threaded JIT model). ``"async"`` enqueues a
            request on a background compile pipeline
            (:mod:`repro.serve.scheduler`) and keeps interpreting until
            the code installs — the paper's *online* setting made real.
            ``None`` (default) defers to the ``REPRO_COMPILE``
            environment knob, which defaults to sync.
            ``REPRO_COMPILE=sync`` is a hard pin that overrides even an
            explicit ``"async"``, so differential harnesses can force
            the deterministic fallback from the outside.
        backend: which executor runs compiled roots. ``"machine"`` is
            the deterministic cycle-model register machine
            (:mod:`repro.backend.machine`) — the differential oracle.
            ``"py"`` additionally lowers each optimized graph to a live
            Python closure (:mod:`repro.backend.pycodegen`) and runs
            that instead; values, trap kinds, printed output, cycles
            and deopt frames are bit-identical by construction, only
            host wall-clock changes. ``None`` (default) defers to the
            ``REPRO_BACKEND`` environment knob, which defaults to
            machine. ``REPRO_BACKEND=machine`` is a hard pin that
            overrides even an explicit ``backend="py"``, so
            differential harnesses can force the oracle backend from
            the outside — mirroring ``REPRO_SPECULATE=off``.
        compile_workers: worker threads of the engine-private
            background pipeline (only used when the engine runs async
            *without* an externally attached compile service — a
            multi-tenant :class:`~repro.serve.service.VMService` shares
            one pipeline across all tenant engines instead).
        compile_queue_capacity: bound of the engine-private compile
            queue; a full queue rejects the request (backpressure) and
            the method stays interpreted until a later hot dispatch
            retries.
    """

    def __init__(
        self,
        hot_threshold=40,
        compile_enabled=True,
        cost_model=None,
        icache=None,
        optimizer=None,
        max_compiled_methods=2000,
        context_sensitive_profiles=False,
        interp_predecode=None,
        enable_trial_memo=True,
        speculate=None,
        speculation_min_coverage=0.95,
        speculation_max_targets=2,
        speculation_deopt_limit=3,
        typespec=None,
        osr=None,
        osr_threshold=400,
        flight_dump=None,
        backend=None,
        compile_mode=None,
        compile_workers=1,
        compile_queue_capacity=32,
    ):
        self.hot_threshold = hot_threshold
        self.compile_enabled = compile_enabled
        self.cost_model = cost_model or CostModel()
        self.icache = icache or ICacheModel()
        self.optimizer = optimizer or OptimizerConfig()
        self.max_compiled_methods = max_compiled_methods
        self.context_sensitive_profiles = context_sensitive_profiles
        self.interp_predecode = interp_predecode
        self.enable_trial_memo = enable_trial_memo
        self.speculate = speculate
        self.speculation_min_coverage = speculation_min_coverage
        self.speculation_max_targets = speculation_max_targets
        self.speculation_deopt_limit = speculation_deopt_limit
        self.typespec = typespec
        self.osr = osr
        self.osr_threshold = osr_threshold
        self.flight_dump = flight_dump
        self.backend = backend
        self.compile_mode = compile_mode
        self.compile_workers = compile_workers
        self.compile_queue_capacity = compile_queue_capacity

    def flight_dump_path(self):
        """Resolve the dump-on-crash path against ``REPRO_FLIGHT_DUMP``."""
        if self.flight_dump is not None:
            return self.flight_dump
        return os.environ.get("REPRO_FLIGHT_DUMP", "").strip() or None

    def speculation_enabled(self):
        """Resolve the speculate knob against ``REPRO_SPECULATE``.

        ``off`` pins speculation off regardless of the config; ``on``
        (or ``1``/``true``) turns it on when the config leaves the
        choice open (``speculate=None``).
        """
        env = os.environ.get("REPRO_SPECULATE", "").strip().lower()
        if env == "off":
            return False
        if self.speculate is None:
            return env in ("on", "1", "true")
        return bool(self.speculate)

    def typespec_enabled(self):
        """Resolve the type-check-speculation knob against ``REPRO_TYPESPEC``.

        Same contract as :meth:`speculation_enabled`: ``off`` pins
        type-check speculation off regardless of the config, ``on`` (or
        ``1``/``true``) turns it on when the config leaves the choice
        open (``typespec=None``). The builder additionally requires
        speculation itself to be enabled — type-check guards need the
        same frame-state capture.
        """
        env = os.environ.get("REPRO_TYPESPEC", "").strip().lower()
        if env == "off":
            return False
        if self.typespec is None:
            return env in ("on", "1", "true")
        return bool(self.typespec)

    def backend_resolved(self):
        """Resolve the backend knob against ``REPRO_BACKEND``.

        Returns ``"machine"`` or ``"py"``. ``REPRO_BACKEND=machine`` is
        a hard pin back to the oracle backend that overrides even an
        explicit ``backend="py"``; ``REPRO_BACKEND=py`` turns the
        Python tier on when the config leaves the choice open
        (``backend=None``).
        """
        env = os.environ.get("REPRO_BACKEND", "").strip().lower()
        if env == "machine":
            return "machine"
        if self.backend is None:
            return "py" if env == "py" else "machine"
        return (
            "py"
            if str(self.backend).strip().lower() == "py"
            else "machine"
        )

    def compile_mode_resolved(self):
        """Resolve the compile mode against ``REPRO_COMPILE``.

        Returns ``"sync"`` or ``"async"``. ``REPRO_COMPILE=sync`` is a
        hard pin (the deterministic fallback) that overrides even an
        explicit ``compile_mode="async"``; ``REPRO_COMPILE=async``
        turns background compilation on when the config leaves the
        choice open (``compile_mode=None``). Pure interpreters
        (``compile_enabled=False``) are always sync — there is nothing
        to enqueue.
        """
        if not self.compile_enabled:
            return "sync"
        env = os.environ.get("REPRO_COMPILE", "").strip().lower()
        if env == "sync":
            return "sync"
        if self.compile_mode is None:
            return "async" if env == "async" else "sync"
        return (
            "async"
            if str(self.compile_mode).strip().lower() == "async"
            else "sync"
        )

    def osr_enabled(self):
        """Resolve the OSR knob against ``REPRO_OSR``.

        Same contract as :meth:`speculation_enabled`: ``off`` pins OSR
        off regardless of the config, ``on`` (or ``1``/``true``) turns
        it on when the config leaves the choice open (``osr=None``).
        """
        if not self.compile_enabled:
            return False
        env = os.environ.get("REPRO_OSR", "").strip().lower()
        if env == "off":
            return False
        if self.osr is None:
            return env in ("on", "1", "true")
        return bool(self.osr)
