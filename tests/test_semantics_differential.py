"""Pin the guest-integer edge cases across all three executors.

Every case in :data:`EDGE_CASES` is executed three ways:

- the profiling **interpreter** running a two-argument bytecode method;
- the lowered register **machine** running the same method compiled
  (no optimization — the op under test must actually execute);
- the canonicalizer's **constant folder** (``_fold_binop``), wrapped
  the same way ``_new_const`` wraps it.

The table is the contract: if any executor drifts on MIN_INT64
division, shift masking, REM sign, or NEG overflow, exactly one of
these tests fails and names the disagreeing pair.
"""

import pytest

from repro.bytecode import MethodBuilder
from repro.bytecode.opcodes import Op
from repro.interp import Interpreter
from repro.ir import build_graph
from repro.opts.canonicalize import _fold_binop
from repro.runtime import VMState
from repro.runtime.int64 import INT64_MAX, INT64_MIN, wrap64
from tests.execution import execute_graph
from tests.helpers import single_method_program

# (op, a, b, expected) — expected values are the JVM's long semantics.
EDGE_CASES = [
    # MIN_INT64 / -1 overflows back to MIN_INT64 (the JVM idiv quirk).
    (Op.DIV, INT64_MIN, -1, INT64_MIN),
    (Op.DIV, INT64_MIN, 1, INT64_MIN),
    (Op.DIV, INT64_MIN, 2, INT64_MIN // 2),
    # Division truncates toward zero, not toward -inf.
    (Op.DIV, -7, 2, -3),
    (Op.DIV, 7, -2, -3),
    (Op.DIV, -7, -2, 3),
    # REM takes the sign of the dividend.
    (Op.REM, -7, 3, -1),
    (Op.REM, 7, -3, 1),
    (Op.REM, -7, -3, -1),
    (Op.REM, INT64_MIN, -1, 0),
    (Op.REM, INT64_MIN, 3, -2),
    # Shift counts are masked to six bits (x << 64 == x << 0).
    (Op.SHL, 1, 64, 1),
    (Op.SHL, 1, 65, 2),
    (Op.SHL, 1, 63, INT64_MIN),
    (Op.SHL, 3, 62, INT64_MIN + (1 << 62)),
    (Op.SHL, 1, -1, INT64_MIN),  # -1 & 63 == 63
    (Op.SHR, INT64_MIN, 1, INT64_MIN >> 1),
    (Op.SHR, -1, 63, -1),  # arithmetic shift keeps the sign
    (Op.SHR, 1, 64, 1),
    (Op.SHR, INT64_MAX, 65, INT64_MAX >> 1),
    # Wrapping arithmetic at the boundary.
    (Op.ADD, INT64_MAX, 1, INT64_MIN),
    (Op.ADD, INT64_MIN, -1, INT64_MAX),
    (Op.SUB, INT64_MIN, 1, INT64_MAX),
    (Op.MUL, INT64_MAX, 2, -2),
    (Op.MUL, INT64_MIN, -1, INT64_MIN),
    (Op.MUL, 1 << 32, 1 << 32, 0),
    # Bitwise ops are closed over wrapped values.
    (Op.AND, INT64_MIN, -1, INT64_MIN),
    (Op.XOR, INT64_MIN, -1, INT64_MAX),
]

_IDS = ["%s_%d_%d" % (op, a, b) for op, a, b, _ in EDGE_CASES]


def _binop_program(op):
    return single_method_program(
        lambda b: b.load(0).load(1).emit(op).retv(), params=("int", "int")
    )


@pytest.mark.parametrize("op,a,b,expected", EDGE_CASES, ids=_IDS)
def test_interpreter(op, a, b, expected):
    program = _binop_program(op)
    method = program.lookup_method("T", "f")
    result = Interpreter(VMState(program)).execute(method, [a, b])
    assert result == expected


@pytest.mark.parametrize("op,a,b,expected", EDGE_CASES, ids=_IDS)
def test_machine(op, a, b, expected):
    program = _binop_program(op)
    method = program.lookup_method("T", "f")
    graph = build_graph(method, program)  # unoptimized: the op executes
    result, _ = execute_graph(graph, program, [a, b])
    assert result == expected


@pytest.mark.parametrize("op,a,b,expected", EDGE_CASES, ids=_IDS)
def test_constant_folder(op, a, b, expected):
    folded = _fold_binop(op, a, b)
    assert folded is not None
    # _new_const is the folder's single wrapping point; mirror it.
    assert wrap64(folded) == expected


class TestNegation:
    def test_neg_min_int64_everywhere(self):
        program = single_method_program(
            lambda b: b.load(0).neg().retv(), params=("int",)
        )
        method = program.lookup_method("T", "f")
        interp = Interpreter(VMState(program)).execute(method, [INT64_MIN])
        graph = build_graph(method, program)
        machine, _ = execute_graph(graph, program, [INT64_MIN])
        assert interp == INT64_MIN  # -MIN overflows back to MIN
        assert machine == INT64_MIN
        assert wrap64(-INT64_MIN) == INT64_MIN

    def test_abs_min_int64_is_min(self):
        # Math.abs(Long.MIN_VALUE) == Long.MIN_VALUE on the JVM.
        from repro.runtime.intrinsics import intrinsic_function

        assert intrinsic_function("abs")(None, INT64_MIN) == INT64_MIN


class TestDivisionByZeroAgreement:
    def test_interpreter_and_machine_trap_alike(self):
        from repro.errors import TrapError

        program = _binop_program(Op.DIV)
        method = program.lookup_method("T", "f")
        with pytest.raises(TrapError) as interp_trap:
            Interpreter(VMState(program)).execute(method, [1, 0])
        graph = build_graph(method, program)
        with pytest.raises(TrapError) as machine_trap:
            execute_graph(graph, program, [1, 0])
        assert interp_trap.value.kind == machine_trap.value.kind

    def test_folder_refuses_zero_divisor(self):
        assert _fold_binop(Op.DIV, 1, 0) is None
        assert _fold_binop(Op.REM, 1, 0) is None


# ----------------------------------------------------------------------
# Type-check semantics: INSTANCEOF / CHECKCAST across every tier
# ----------------------------------------------------------------------

# (id, operand kind, checked type, instanceof result, cast passes).
# Operand kinds: "null", a class name (fresh instance), or "T[]"
# (fresh array of element type T). Covers arrays (covariant in their
# element type, primitive arrays invariant), interfaces, self-type,
# Object, and null.
TYPECHECK_CASES = [
    ("null_iface", "null", "Shape", 0, True),
    ("null_array", "null", "int[]", 0, True),
    ("obj_iface", "Square", "Shape", 1, True),
    ("obj_self", "Square", "Square", 1, True),
    ("obj_wrong", "Square", "Circle", 0, False),
    ("obj_object", "Square", "Object", 1, True),
    ("intarr_self", "int[]", "int[]", 1, True),
    ("intarr_object", "int[]", "Object", 1, True),
    ("intarr_iface", "int[]", "Shape", 0, False),
    ("refarr_covariant", "Square[]", "Shape[]", 1, True),
    ("refarr_contra", "Shape[]", "Square[]", 0, False),
    ("mixed_arr", "int[]", "Shape[]", 0, False),
]

#: The oracle configurations the type-check table runs under: classic
#: reference interpreter (implicit), predecode tier, machine-model JIT
#: and the Python-codegen backend.
_TYPECHECK_CONFIGS = ["interp-predecode", "jit", "jit-py"]


def _push_operand(b, kind):
    if kind == "null":
        b.null()
    elif kind.endswith("[]"):
        b.const(2).newarray(kind[:-2])
    else:
        b.new(kind)


def _typecheck_case_program(kind, check_type):
    from tests.helpers import shapes_program

    program = shapes_program()
    main = program.klass("Main")
    b = MethodBuilder("io", [], "int", is_static=True)
    _push_operand(b, kind)
    b.instanceof(check_type).retv()
    main.add_method(b.build())
    b = MethodBuilder("cc", [], "int", is_static=True)
    _push_operand(b, kind)
    b.checkcast(check_type).instanceof(check_type).retv()
    main.add_method(b.build())
    return program


@pytest.mark.parametrize(
    "case_id,kind,check,expected,cast_ok",
    TYPECHECK_CASES,
    ids=[c[0] for c in TYPECHECK_CASES],
)
def test_typecheck_differential(case_id, kind, check, expected, cast_ok):
    from repro.errors import TrapError
    from repro.fuzz.oracle import check_program

    program = _typecheck_case_program(kind, check)
    vm = VMState(program)
    assert Interpreter(vm).call_static("Main", "io", ()) == expected
    if not cast_ok:
        with pytest.raises(TrapError) as trap:
            Interpreter(VMState(program)).call_static("Main", "cc", ())
        assert trap.value.kind == "ClassCast"
    assert check_program(program, ("Main", "io"), _TYPECHECK_CONFIGS) is None
    assert check_program(program, ("Main", "cc"), _TYPECHECK_CONFIGS) is None


def test_typecheck_nullable_merge_differential():
    """The operand alternates null/Square across iterations via a
    static counter: the canonicalizer's nullable-match fold
    (instanceof of a provably-matching-but-maybe-null value becomes a
    null test) must preserve semantics on both paths in every tier."""
    from repro.bytecode.klass import FieldDef
    from repro.fuzz.oracle import check_program
    from tests.helpers import shapes_program

    program = shapes_program()
    main = program.klass("Main")
    main.add_field(FieldDef("tick", "int", is_static=True))
    b = MethodBuilder("flip", [], "int", is_static=True)
    slot = b.alloc_local()
    use = b.new_label()
    done = b.new_label()
    b.getstatic("Main", "tick").const(1).add().putstatic("Main", "tick")
    b.null().store(slot)
    b.getstatic("Main", "tick").const(2).rem().if_true(use)
    b.goto(done)
    b.place(use).new("Square").store(slot)
    b.place(done).load(slot).instanceof("Square").retv()
    main.add_method(b.build())
    assert (
        check_program(
            program, ("Main", "flip"), _TYPECHECK_CONFIGS, iterations=8
        )
        is None
    )
