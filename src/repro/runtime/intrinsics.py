"""Intrinsic ("native") methods available to every guest program.

Intrinsics live on a synthetic ``Builtins`` class that
:func:`install_builtins` injects into a :class:`~repro.bytecode.program.Program`.
They are implemented by host Python functions registered in
:data:`INTRINSIC_TABLE` and are never inlined by any compiler
configuration (their :class:`Method` carries ``never_inline``).

The set is intentionally small — just enough for benchmark programs to
produce checkable output and deterministic pseudo-random inputs:

===============  =======================================================
``print``        append an integer to the VM output buffer
``abs``          integer absolute value
``imin``/``imax`` two-argument min / max
``rand``         next value of the VM's deterministic LCG, in [0, bound)
``seed``         reseed the LCG (lets one VM instance differ from another)
``ticks``        a monotonically increasing counter (virtual time)
===============  =======================================================
"""

from repro.bytecode.klass import ClassDef
from repro.bytecode.method import Method
from repro.errors import TrapError
from repro.runtime.int64 import wrap64

#: Name of the synthetic class that carries all intrinsics.
BUILTINS_CLASS = "Builtins"


def _print(vm, value):
    vm.output.append(value)
    return None


def _abs(vm, value):
    # wrap64 keeps abs(INT64_MIN) == INT64_MIN (JVM Math.abs overflow)
    # instead of leaking an unrepresentable value into the guest.
    return wrap64(-value) if value < 0 else value


def _imin(vm, a, b):
    return a if a < b else b


def _imax(vm, a, b):
    return a if a > b else b


def _rand(vm, bound):
    if bound <= 0:
        raise TrapError("BadRandomBound", str(bound))
    return vm.next_random() % bound


def _seed(vm, value):
    vm.reseed(value)
    return None


def _ticks(vm):
    vm.tick_counter += 1
    return vm.tick_counter


#: name -> (param_types, return_type, host function)
INTRINSIC_TABLE = {
    "print": (["int"], "void", _print),
    "abs": (["int"], "int", _abs),
    "imin": (["int", "int"], "int", _imin),
    "imax": (["int", "int"], "int", _imax),
    "rand": (["int"], "int", _rand),
    "seed": (["int"], "void", _seed),
    "ticks": ([], "int", _ticks),
}


def install_builtins(program):
    """Add the ``Builtins`` class to *program* (idempotent)."""
    if program.has_class(BUILTINS_CLASS):
        return program.klass(BUILTINS_CLASS)
    klass = ClassDef(BUILTINS_CLASS, is_abstract=True)
    for name, (params, ret, _fn) in sorted(INTRINSIC_TABLE.items()):
        klass.add_method(
            Method(name, params, ret, is_static=True, is_native=True)
        )
    program.add_class(klass)
    return klass


def intrinsic_function(name):
    """The host implementation of intrinsic *name*."""
    return INTRINSIC_TABLE[name][2]
