"""scalac — the Scala compiler.

scalac is a multi-phase pipeline over trees and symbol tables. We model
three phases on a synthetic token stream: parsing into expression trees
(allocation-heavy), a symbol-resolution pass against a hash map, and a
constant-typing pass — each phase behind a ``Phase`` trait driven by a
pipeline loop, as compiler infrastructures do.
"""

DESCRIPTION = "multi-phase compile pipeline: parse, resolve, type"
ITERATIONS = 14

SOURCE = """
class Tree {
  var kind: int;      // 0 num, 1 ident, 2 binop
  var value: int;
  var left: Tree;
  var right: Tree;
  var tpe: int;
  def init(kind: int, value: int, left: Tree, right: Tree): void {
    this.kind = kind; this.value = value; this.left = left; this.right = right;
    this.tpe = 0 - 1;
  }
}

class Unit {
  var tokens: int[];
  var pos: int;
  var tree: Tree;
  var errors: int;
  def init(tokens: int[]): void {
    this.tokens = tokens; this.pos = 0; this.tree = null; this.errors = 0;
  }
}

trait Phase {
  def apply(u: Unit, symtab: IntIntMap): void;
}

class ParsePhase implements Phase {
  def apply(u: Unit, symtab: IntIntMap): void {
    u.pos = 0;
    u.errors = 0;
    var t: Tree = this.expr(u, 0);
    while (u.pos < u.tokens.length) {
      t = new Tree(2, 0, t, this.expr(u, 0));
    }
    u.tree = t;
  }
  def expr(u: Unit, depth: int): Tree {
    var t: Tree = this.atom(u, depth);
    while (u.pos < u.tokens.length && u.tokens[u.pos] == 0 - 1 && depth < 12) {
      u.pos = u.pos + 1;
      var rhs: Tree = this.atom(u, depth + 1);
      t = new Tree(2, 0, t, rhs);
    }
    return t;
  }
  def atom(u: Unit, depth: int): Tree {
    if (u.pos >= u.tokens.length) { return new Tree(0, 0, null, null); }
    var tok: int = u.tokens[u.pos];
    u.pos = u.pos + 1;
    if (tok >= 0 && tok < 100) { return new Tree(0, tok, null, null); }
    if (tok >= 100) { return new Tree(1, tok - 100, null, null); }
    return this.expr(u, depth + 1);
  }
}

class ResolvePhase implements Phase {
  def apply(u: Unit, symtab: IntIntMap): void {
    this.walk(u.tree, u, symtab);
  }
  def walk(t: Tree, u: Unit, symtab: IntIntMap): void {
    if (t == null) { return; }
    if (t.kind == 1) {
      if (!symtab.has(t.value)) {
        symtab.put(t.value, symtab.size);
      }
      t.value = symtab.get(t.value, 0);
    }
    this.walk(t.left, u, symtab);
    this.walk(t.right, u, symtab);
  }
}

class TypePhase implements Phase {
  def apply(u: Unit, symtab: IntIntMap): void {
    u.errors = u.errors + this.typeOf(u.tree);
  }
  def typeOf(t: Tree): int {
    if (t == null) { return 0; }
    if (t.kind == 0) { t.tpe = 1; return 0; }
    if (t.kind == 1) { t.tpe = 2; return 0; }
    var e: int = this.typeOf(t.left) + this.typeOf(t.right);
    if (t.left.tpe == t.right.tpe) { t.tpe = t.left.tpe; } else { t.tpe = 2; e = e + 1; }
    return e;
  }
}

object Main {
  static var phases: ArraySeq;
  static var sources: ArraySeq;

  def setup(): void {
    var phases: ArraySeq = new ArraySeq(4);
    phases.add(new ParsePhase());
    phases.add(new ResolvePhase());
    phases.add(new TypePhase());
    Main.phases = phases;
    var sources: ArraySeq = new ArraySeq(4);
    var f: int = 0;
    while (f < 2) {
      var toks: int[] = new int[160];
      var x: int = 13 + f;
      var i: int = 0;
      while (i < 160) {
        x = (x * 29 + 7) % 163;
        if (x % 3 == 0) { toks[i] = 0 - 1; }
        else { if (x % 3 == 1) { toks[i] = x % 100; } else { toks[i] = 100 + x % 40; } }
        i = i + 1;
      }
      sources.add(new Unit(toks));
      f = f + 1;
    }
    Main.sources = sources;
  }

  def run(): int {
    if (Main.phases == null) { Main.setup(); }
    var symtab: IntIntMap = new IntIntMap(64);
    var check: int = 0;
    var s: int = 0;
    while (s < Main.sources.length()) {
      var u: Unit = Main.sources.get(s) as Unit;
      var p: int = 0;
      while (p < Main.phases.length()) {
        var phase: Phase = Main.phases.get(p) as Phase;
        phase.apply(u, symtab);
        p = p + 1;
      }
      check = check + u.errors + symtab.size;
      s = s + 1;
    }
    return check;
  }
}
"""
