"""tmt — topic modelling toolkit (Scala).

tmt spends its time in Gibbs-sampling-style sweeps over sparse count
matrices, written against generic numeric abstractions. We model a
collapsed-sampler sweep: per-token topic scores computed through an
``IntSeq.fold`` with lambdas over count rows, then a deterministic
re-assignment. (Paper: ≈1.5× over C2.)
"""

DESCRIPTION = "topic-sampling sweeps via int-sequence folds"
ITERATIONS = 14

SOURCE = """
class Corpus {
  var tokens: int[];       // word id per token
  var topics: int[];       // current topic per token
  var wordTopic: int[];    // [word * K + k] counts
  var topicTotal: int[];
  var words: int;
  var k: int;
  def init(n: int, words: int, k: int): void {
    this.tokens = new int[n];
    this.topics = new int[n];
    this.wordTopic = new int[words * k];
    this.topicTotal = new int[k];
    this.words = words;
    this.k = k;
  }
}

object Main {
  static var corpus: Corpus;

  def setup(): void {
    var n: int = 120;
    var c: Corpus = new Corpus(n, 30, 4);
    var x: int = 5;
    var i: int = 0;
    while (i < n) {
      x = (x * 21 + 3) % 193;
      c.tokens[i] = x % 30;
      c.topics[i] = x % 4;
      c.wordTopic[c.tokens[i] * 4 + c.topics[i]] =
          c.wordTopic[c.tokens[i] * 4 + c.topics[i]] + 1;
      c.topicTotal[c.topics[i]] = c.topicTotal[c.topics[i]] + 1;
      i = i + 1;
    }
    Main.corpus = c;
  }

  def scoreTopic(c: Corpus, word: int, topic: int): int {
    var wt: int = c.wordTopic[word * c.k + topic];
    var tt: int = c.topicTotal[topic];
    return ((wt * 64 + 8) << 6) / (tt + c.k);
  }

  def sweep(c: Corpus): int {
    var moved: int = 0;
    var i: int = 0;
    while (i < c.tokens.length) {
      var word: int = c.tokens[i];
      var old: int = c.topics[i];
      c.wordTopic[word * c.k + old] = c.wordTopic[word * c.k + old] - 1;
      c.topicTotal[old] = c.topicTotal[old] - 1;
      var range: IntRange = new IntRange(0, c.k);
      var best: int = range.fold(0, fun (acc: int, t: int): int {
        if (Main.scoreTopic(c, word, t) > Main.scoreTopic(c, word, acc)) {
          return t;
        }
        return acc;
      });
      c.topics[i] = best;
      c.wordTopic[word * c.k + best] = c.wordTopic[word * c.k + best] + 1;
      c.topicTotal[best] = c.topicTotal[best] + 1;
      if (best != old) { moved = moved + 1; }
      i = i + 1;
    }
    return moved;
  }

  def run(): int {
    if (Main.corpus == null) { Main.setup(); }
    var moved: int = 0;
    var s: int = 0;
    while (s < 2) {
      moved = moved + Main.sweep(Main.corpus);
      s = s + 1;
    }
    var check: int = 0;
    var t: int = 0;
    while (t < Main.corpus.k) {
      check = check + Main.corpus.topicTotal[t] * (t + 1);
      t = t + 1;
    }
    return moved * 10000 + check;
  }
}
"""
