"""Front-end driver: source text → verified bytecode program."""

from repro.bytecode.program import Program
from repro.bytecode.verifier import verify_program
from repro.lang.codegen import CodeGen
from repro.lang.parser import parse_module
from repro.lang.resolver import Resolver
from repro.lang.stdlib import STDLIB_SOURCE
from repro.runtime.intrinsics import install_builtins


def compile_source(source, include_stdlib=True, verify=True):
    """Compile minij *source* (plus the stdlib) into a
    :class:`~repro.bytecode.program.Program`."""
    modules = []
    if include_stdlib:
        modules.append(parse_module(STDLIB_SOURCE))
    modules.append(parse_module(source))
    resolver = Resolver(modules)
    table = resolver.run()
    program = Program()
    install_builtins(program)
    CodeGen(table, resolver.lambdas, program).run()
    if verify:
        verify_program(program)
    return program


def load_program(source, **kwargs):
    """Alias of :func:`compile_source` (reads better at call sites that
    load benchmark programs)."""
    return compile_source(source, **kwargs)
