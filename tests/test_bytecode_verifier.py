"""Verifier acceptance and rejection tests."""

import pytest

from repro.bytecode import Instr, MethodBuilder, Op, verify_method, verify_program
from repro.bytecode.method import Method
from repro.errors import VerifyError
from tests.helpers import fresh_program, shapes_program


def _method_of(code, params=("int",), ret="int", program=None, max_locals=None):
    program = program or fresh_program()
    holder = program.define_class("V", is_abstract=True)
    method = Method(
        "f", list(params), ret, code=code, is_static=True, max_locals=max_locals
    )
    holder.add_method(method)
    return method, program


class TestVerifierRejections:
    def test_empty_body(self):
        method, program = _method_of([])
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_run_off_the_end(self):
        method, program = _method_of([Instr(Op.CONST, 1)])
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_bad_branch_target(self):
        method, program = _method_of([Instr(Op.GOTO, 99), Instr(Op.RET)], ret="void")
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_stack_underflow(self):
        method, program = _method_of([Instr(Op.ADD), Instr(Op.RETV)])
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_inconsistent_merge_depth(self):
        # Path A pushes one value, path B pushes two, both merge at 5.
        code = [
            Instr(Op.LOAD, 0),
            Instr(Op.IF, 4),
            Instr(Op.CONST, 1),
            Instr(Op.GOTO, 6),
            Instr(Op.CONST, 1),
            Instr(Op.CONST, 2),
            Instr(Op.RETV),
        ]
        method, program = _method_of(code)
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_local_slot_out_of_range(self):
        method, program = _method_of(
            [Instr(Op.LOAD, 9), Instr(Op.RETV)], max_locals=2
        )
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_ret_in_value_method(self):
        method, program = _method_of([Instr(Op.RET)])
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_retv_in_void_method(self):
        method, program = _method_of(
            [Instr(Op.CONST, 1), Instr(Op.RETV)], ret="void"
        )
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_unknown_class_in_new(self):
        method, program = _method_of(
            [Instr(Op.NEW, "Ghost"), Instr(Op.POP), Instr(Op.RET)], ret="void"
        )
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_new_of_abstract_class(self):
        program = fresh_program()
        program.define_class("Abs", is_abstract=True)
        method, program = _method_of(
            [Instr(Op.NEW, "Abs"), Instr(Op.POP), Instr(Op.RET)],
            ret="void",
            program=program,
        )
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_static_invoke_of_instance_method(self):
        program = fresh_program()
        target = program.define_class("T2")
        target.add_method(Method("m", [], "void", code=[Instr(Op.RET)]))
        method, program = _method_of(
            [Instr(Op.INVOKESTATIC, "T2", "m"), Instr(Op.RET)],
            ret="void",
            program=program,
        )
        with pytest.raises(VerifyError):
            verify_method(method, program)

    def test_static_field_mismatch(self):
        from repro.bytecode.klass import FieldDef

        program = fresh_program()
        holder = program.define_class("F")
        holder.add_field(FieldDef("x", "int", is_static=False))
        method, program = _method_of(
            [Instr(Op.GETSTATIC, "F", "x"), Instr(Op.RETV)], program=program
        )
        with pytest.raises(VerifyError):
            verify_method(method, program)


class TestVerifierAcceptance:
    def test_shapes_program_verifies(self):
        assert verify_program(shapes_program()) > 0

    def test_loop_with_consistent_depths(self):
        b = MethodBuilder("f", ["int"], "int", is_static=True)
        loop = b.new_label()
        done = b.new_label()
        acc = b.alloc_local()
        b.const(0).store(acc)
        b.place(loop).load(0).const(0).le().if_true(done)
        b.load(acc).load(0).add().store(acc)
        b.load(0).const(1).sub().store(0)
        b.goto(loop)
        b.place(done).load(acc).retv()
        method = b.build()
        program = fresh_program()
        program.define_class("W", is_abstract=True).add_method(method)
        verify_method(method, program)

    def test_natives_and_abstracts_skipped(self):
        program = fresh_program()  # Builtins natives present
        assert verify_program(program) == 0
