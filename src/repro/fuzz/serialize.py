"""Serialize reproducers as assembler text, and load them back.

Corpus files in ``tests/corpus/`` are ordinary ``.asm`` programs in the
:mod:`repro.bytecode.assembler` dialect, prefixed with a comment header
carrying the entry point and any provenance notes::

    # entry: Main.main
    # found-by: fuzz seed=1234 config=jit-incremental
    abstract class Main {
      static method main() -> int {
        ...
      }
    }

Serialization + reassembly is also the last step of a shrink: checking
the reduced case in via its *textual* form guarantees the corpus replay
test exercises exactly what a developer will read.
"""

import os

from repro.bytecode import assemble_program, verify_program
from repro.bytecode.opcodes import BRANCH_OPS
from repro.runtime.intrinsics import BUILTINS_CLASS, install_builtins

#: Classes never serialized: re-created by the loader instead.
_SYNTHETIC = (BUILTINS_CLASS, "Object")

DEFAULT_ENTRY = ("Main", "main")


def _method_header(method):
    mods = ""
    if method.is_static:
        mods += "static "
    if method.is_abstract:
        mods += "abstract "
    return "%smethod %s(%s) -> %s" % (
        mods,
        method.name,
        ", ".join(method.param_types),
        method.return_type,
    )


def _method_lines(method):
    """Body lines with symbolic ``Lnn`` labels for branch targets."""
    targets = sorted(
        {
            instr.target
            for instr in method.code
            if instr.op in BRANCH_OPS
        }
    )
    labels = {target: "L%d" % index for index, target in enumerate(targets)}
    lines = []
    for index, instr in enumerate(method.code):
        if index in labels:
            lines.append("  %s:" % labels[index])
        if instr.op in BRANCH_OPS:
            lines.append("    %s %s" % (instr.op, labels[instr.target]))
        elif instr.args:
            lines.append(
                "    %s %s" % (instr.op, " ".join(str(a) for a in instr.args))
            )
        else:
            lines.append("    %s" % instr.op)
    # A label may target the position one past the last instruction
    # only if code falls through the end, which RET/RETV-terminated
    # methods never do — but guard anyway.
    end = len(method.code)
    if end in labels:
        lines.append("  %s:" % labels[end])
    return lines


def program_to_asm(program, entry=DEFAULT_ENTRY, notes=()):
    """Render *program* as assembler text the loader round-trips."""
    lines = ["# entry: %s.%s" % entry]
    for note in notes:
        lines.append("# %s" % note)
    for name, klass in program.classes.items():
        if name in _SYNTHETIC:
            continue
        head = "interface %s" % name if klass.is_interface else (
            ("abstract class %s" if klass.is_abstract else "class %s") % name
        )
        if klass.superclass and klass.superclass != "Object":
            head += " extends %s" % klass.superclass
        if klass.interfaces:
            head += " implements %s" % ", ".join(klass.interfaces)
        lines.append(head + " {")
        for field in klass.fields.values():
            lines.append(
                "  %sfield %s: %s"
                % ("static " if field.is_static else "", field.name, field.type)
            )
        for method in klass.methods.values():
            if method.is_native:
                continue
            if method.is_abstract:
                lines.append("  %s" % _method_header(method))
                continue
            lines.append("  %s {" % _method_header(method))
            lines.extend(_method_lines(method))
            lines.append("  }")
        lines.append("}")
    return "\n".join(lines) + "\n"


def _parse_entry(text):
    for raw in text.splitlines():
        line = raw.strip()
        if not line.startswith("#"):
            break
        body = line.lstrip("#").strip()
        if body.startswith("entry:"):
            spec = body[len("entry:") :].strip()
            class_name, method_name = spec.rsplit(".", 1)
            return class_name, method_name
    return DEFAULT_ENTRY


def load_corpus_text(text):
    """Assemble corpus text; returns ``(program, entry)``, verified."""
    entry = _parse_entry(text)
    program = assemble_program(text)
    install_builtins(program)
    verify_program(program)
    return program, entry


def load_corpus_file(path):
    """Load one ``.asm`` reproducer from disk."""
    with open(path) as handle:
        return load_corpus_text(handle.read())


def corpus_files(directory):
    """Sorted ``.asm`` paths under *directory* (empty if absent)."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".asm")
    )
