"""The differential oracle: run one program everywhere, compare.

The reference semantics is the pure profiling interpreter on a fresh
:class:`~repro.runtime.vmstate.VMState`.  Every other executor is an
:class:`~repro.jit.engine.Engine` under some :class:`JitConfig` /
inliner combination with an aggressive ``hot_threshold`` so the entry
method (and everything it calls) is compiled within the first couple of
iterations.  All executors observe:

- the **outcome** of each iteration — either ``("value", v)`` or
  ``("trap", kind)``; trap *kinds* are comparable across tiers, trap
  detail strings intentionally are not;
- the cumulative **printed output** after all iterations (the ``print``
  intrinsic appends to ``vm.output`` in every tier).

A trap aborts only its own iteration; the oracle keeps running the
remaining iterations against the same VM state.  This matters twice
over: always-trapping programs still exercise the compiled tiers (the
method gets hot from the attempts), and statics mutated before a trap
persist into later iterations, so precise-exception bugs — state
diverging at the trap point — become observable.
"""

from repro.baselines import C2Inliner, GreedyInliner, tuned_inliner
from repro.errors import TrapError, VMError
from repro.interp import Interpreter
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.opts.pipeline import OptimizerConfig
from repro.runtime import VMState

#: Iterations per executor: enough for hot_threshold=2 compilation to
#: kick in and for post-compilation state to be re-observed.
DEFAULT_ITERATIONS = 5

_HOT = 2


def _cfg(**kw):
    kw.setdefault("hot_threshold", _HOT)
    return JitConfig(**kw)


def _opt(**kw):
    return OptimizerConfig(**kw)


#: name -> factory returning a fresh ``(JitConfig, inliner)`` pair.
#: Factories (not instances) because inliners and configs carry state.
ORACLE_CONFIGS = {
    # Compilation with no inlining: lowering + full pass pipeline.
    "jit": lambda: (_cfg(), None),
    # The paper's inliners, exercising substitution + reoptimization.
    "jit-incremental": lambda: (_cfg(), tuned_inliner(0.1)),
    "jit-greedy": lambda: (_cfg(), GreedyInliner()),
    "jit-c2": lambda: (_cfg(), C2Inliner()),
    # Compilation with the optimizer effectively off: isolates the
    # bytecode->IR->machine translation itself.
    "opt-none": lambda: (
        _cfg(
            optimizer=_opt(
                max_iterations=0,
                enable_peeling=False,
                enable_rwe=False,
                enable_devirtualization=False,
            )
        ),
        None,
    ),
    # One pass toggled off at a time (with inlining on, so pass/inline
    # interactions are covered): a divergence that disappears under
    # exactly one of these fingers the guilty pass directly.
    "no-peel": lambda: (
        _cfg(optimizer=_opt(enable_peeling=False)),
        tuned_inliner(0.1),
    ),
    "no-rwe": lambda: (
        _cfg(optimizer=_opt(enable_rwe=False)),
        tuned_inliner(0.1),
    ),
    "no-devirt": lambda: (
        _cfg(optimizer=_opt(enable_devirtualization=False)),
        tuned_inliner(0.1),
    ),
    # Context-sensitive profiles feed different data to the inliner.
    "ctx-profiles": lambda: (
        _cfg(context_sensitive_profiles=True),
        tuned_inliner(0.1),
    ),
    # The pre-decoded interpreter tier, alone and under the JIT: both
    # must be bit-identical to the classic reference loop.
    "interp-predecode": lambda: (
        _cfg(compile_enabled=False, interp_predecode=True),
        None,
    ),
    "jit-predecode": lambda: (
        _cfg(interp_predecode=True),
        tuned_inliner(0.1),
    ),
    # Speculative devirtualization with deoptimization: guard/deopt
    # replaces well-predicted virtual fallbacks, and a failed guard
    # must resume in the interpreter with identical observable
    # behavior (values, output, traps).  REPRO_SPECULATE=off still
    # pins this configuration non-speculative by design.
    "jit-speculate": lambda: (
        _cfg(speculate=True),
        tuned_inliner(0.1),
    ),
    # Profile-guided type-check speculation on top of guard/deopt:
    # profile-monomorphic INSTANCEOF/CHECKCAST operands get pinned with
    # an exact-type guard so dominated checks fold; a refuted guard
    # must resume in the interpreter bit-identically.
    # REPRO_TYPESPEC=off still pins this configuration back to runtime
    # type checks by design.
    "jit-typespec": lambda: (
        _cfg(speculate=True, typespec=True),
        tuned_inliner(0.1),
    ),
    # On-stack replacement at loop backedges: a tiny OSR threshold
    # forces mid-method transfers into compiled continuations on every
    # generated loop, and deopt out of OSR code must fall back through
    # the same resume path. REPRO_OSR=off still pins this
    # configuration OSR-free by design.
    "osr": lambda: (
        _cfg(osr=True, osr_threshold=6, speculate=True),
        tuned_inliner(0.1),
    ),
    # Background compilation: requests queue behind a worker thread and
    # install between iterations (the oracle drains the queue at each
    # iteration edge, so compiled tiers are reached deterministically).
    # Values, trap kinds, and output must stay bit-identical to sync —
    # only cycle attribution may differ. REPRO_COMPILE=sync still pins
    # this configuration synchronous by design.
    "jit-async": lambda: (
        _cfg(compile_mode="async", osr=True, osr_threshold=6,
             speculate=True),
        tuned_inliner(0.1),
    ),
    # The Python-codegen top tier: optimized graphs run as generated
    # Python closures instead of the machine model. Values, trap kinds
    # and output must stay bit-identical to every other tier — the
    # machine model remains the oracle. REPRO_BACKEND=machine still
    # pins these configurations back to the machine executor by design.
    "jit-py": lambda: (
        _cfg(backend="py"),
        tuned_inliner(0.1),
    ),
    # ... and with speculation + OSR on top, so guard/deopt raises and
    # OSR continuations generated by the py tier cross the same resume
    # paths the machine tier uses.
    "jit-py-speculate": lambda: (
        _cfg(backend="py", speculate=True, osr=True, osr_threshold=6),
        tuned_inliner(0.1),
    ),
}


def oracle_config_names():
    """All known oracle configuration names, in a stable order."""
    return list(ORACLE_CONFIGS)


class ExecutionRecord:
    """What one executor observed over a whole run."""

    __slots__ = ("outcomes", "output")

    def __init__(self, outcomes, output):
        self.outcomes = list(outcomes)
        self.output = list(output)

    def __eq__(self, other):
        return (
            self.outcomes == other.outcomes and self.output == other.output
        )


class Divergence:
    """A disagreement between the interpreter and one configuration."""

    __slots__ = ("config", "kind", "iteration", "expected", "actual")

    def __init__(self, config, kind, iteration, expected, actual):
        self.config = config
        self.kind = kind  # "outcome" | "output"
        self.iteration = iteration  # int for outcomes, None for output
        self.expected = expected
        self.actual = actual

    def describe(self):
        where = (
            "iteration %d" % self.iteration
            if self.iteration is not None
            else "printed output"
        )
        return "config=%s %s (%s): interpreter=%r, engine=%r" % (
            self.config,
            self.kind,
            where,
            self.expected,
            self.actual,
        )

    def as_dict(self):
        return {
            "config": self.config,
            "kind": self.kind,
            "iteration": self.iteration,
            "expected": repr(self.expected),
            "actual": repr(self.actual),
        }

    def __repr__(self):
        return "<Divergence %s>" % self.describe()


def _observe(call):
    """Run one iteration thunk; normalize its outcome."""
    try:
        return ("value", call())
    except TrapError as trap:
        return ("trap", trap.kind)
    except VMError as crash:  # a tier blew up: still comparable
        return ("crash", type(crash).__name__)
    except RecursionError:
        return ("crash", "RecursionError")


def run_interpreter(program, entry, iterations=DEFAULT_ITERATIONS, vm_seed=0x5EED):
    """Reference execution: the pure interpreter, no compilation."""
    class_name, method_name = entry
    vm = VMState(program, seed=vm_seed)
    # Pin the classic loop: the reference must stay the reference even
    # when REPRO_INTERP=predecode is set in the environment.
    interp = Interpreter(vm, predecode=False)
    outcomes = [
        _observe(lambda: interp.call_static(class_name, method_name, ()))
        for _ in range(iterations)
    ]
    return ExecutionRecord(outcomes, vm.output)


def run_config(program, entry, name, iterations=DEFAULT_ITERATIONS, vm_seed=0x5EED):
    """Execute under oracle configuration *name* with a fresh engine."""
    class_name, method_name = entry
    config, inliner = ORACLE_CONFIGS[name]()
    engine = Engine(program, config, inliner, seed=vm_seed)
    try:
        outcomes = []
        for _ in range(iterations):
            outcomes.append(_observe(
                lambda: engine.run_iteration(class_name, method_name).value
            ))
            # Under async compilation, settle the queue at the iteration
            # edge so later iterations deterministically reach compiled
            # code — same coverage as sync, same required behavior.
            engine.drain_compiles()
        return ExecutionRecord(outcomes, engine.vm.output)
    finally:
        engine.shutdown()


def compare_records(config, reference, record):
    """First :class:`Divergence` between two records, or ``None``."""
    for index, (expected, actual) in enumerate(
        zip(reference.outcomes, record.outcomes)
    ):
        if expected != actual:
            return Divergence(config, "outcome", index, expected, actual)
    if reference.output != record.output:
        return Divergence(
            config, "output", None, reference.output, record.output
        )
    return None


def check_program(
    program,
    entry,
    config_names=None,
    iterations=DEFAULT_ITERATIONS,
    vm_seed=0x5EED,
):
    """Run *program* under the interpreter and every configuration.

    Returns the first :class:`Divergence`, or ``None`` when all
    configurations agree with the interpreter.
    """
    names = config_names if config_names is not None else oracle_config_names()
    reference = run_interpreter(program, entry, iterations, vm_seed)
    for name in names:
        record = run_config(program, entry, name, iterations, vm_seed)
        divergence = compare_records(name, reference, record)
        if divergence is not None:
            return divergence
    return None
