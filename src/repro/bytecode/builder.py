"""A fluent emitter for method bodies with symbolic labels.

Both the minij code generator and hand-written tests use this builder;
it owns the label bookkeeping so that no caller ever computes raw
instruction indices.
"""

from repro.bytecode.instr import Instr
from repro.bytecode.method import Method
from repro.bytecode.opcodes import Op
from repro.errors import BytecodeError


class Label:
    """A forward-referencable position in the code being built."""

    __slots__ = ("name", "position")

    def __init__(self, name):
        self.name = name
        self.position = None

    def __repr__(self):
        return "<Label %s @%s>" % (self.name, self.position)


class MethodBuilder:
    """Builds a :class:`Method` one instruction at a time.

    Usage::

        b = MethodBuilder("fact", ["int"], "int", is_static=True)
        done = b.new_label("done")
        b.load(0).const(2).lt().if_true(done)
        b.load(0).load(0).const(1).sub()
        b.invokestatic("Math", "fact").mul().retv()
        b.place(done).load(0).retv()
        method = b.build()
    """

    def __init__(self, name, param_types, return_type, is_static=False):
        self.name = name
        self.param_types = list(param_types)
        self.return_type = return_type
        self.is_static = is_static
        self._code = []
        self._labels = []
        self._fixups = []  # (instr index, label)
        self._max_locals = (0 if is_static else 1) + len(self.param_types)
        self.force_inline = False
        self.never_inline = False
        self._label_counter = 0

    # -- labels ---------------------------------------------------------

    def new_label(self, name=None):
        if name is None:
            name = "L%d" % self._label_counter
            self._label_counter += 1
        label = Label(name)
        self._labels.append(label)
        return label

    def place(self, label):
        """Bind *label* to the next instruction's position."""
        if label.position is not None:
            raise BytecodeError("label %s placed twice" % label.name)
        label.position = len(self._code)
        return self

    # -- raw emission -----------------------------------------------------

    def emit(self, op, *args):
        self._code.append(Instr(op, *args))
        return self

    def _emit_branch(self, op, label):
        self._fixups.append((len(self._code), label))
        self._code.append(Instr(op, -1))
        return self

    # -- constants, locals, stack ----------------------------------------

    def const(self, value):
        return self.emit(Op.CONST, int(value))

    def null(self):
        return self.emit(Op.NULL)

    def pop(self):
        return self.emit(Op.POP)

    def dup(self):
        return self.emit(Op.DUP)

    def load(self, slot):
        self._note_local(slot)
        return self.emit(Op.LOAD, slot)

    def store(self, slot):
        self._note_local(slot)
        return self.emit(Op.STORE, slot)

    def _note_local(self, slot):
        if slot + 1 > self._max_locals:
            self._max_locals = slot + 1

    def alloc_local(self):
        """Reserve and return a fresh local slot index."""
        slot = self._max_locals
        self._max_locals += 1
        return slot

    # -- arithmetic and comparisons ----------------------------------------

    def add(self):
        return self.emit(Op.ADD)

    def sub(self):
        return self.emit(Op.SUB)

    def mul(self):
        return self.emit(Op.MUL)

    def div(self):
        return self.emit(Op.DIV)

    def rem(self):
        return self.emit(Op.REM)

    def neg(self):
        return self.emit(Op.NEG)

    def and_(self):
        return self.emit(Op.AND)

    def or_(self):
        return self.emit(Op.OR)

    def xor(self):
        return self.emit(Op.XOR)

    def shl(self):
        return self.emit(Op.SHL)

    def shr(self):
        return self.emit(Op.SHR)

    def eq(self):
        return self.emit(Op.EQ)

    def ne(self):
        return self.emit(Op.NE)

    def lt(self):
        return self.emit(Op.LT)

    def le(self):
        return self.emit(Op.LE)

    def gt(self):
        return self.emit(Op.GT)

    def ge(self):
        return self.emit(Op.GE)

    def ref_eq(self):
        return self.emit(Op.REF_EQ)

    def ref_ne(self):
        return self.emit(Op.REF_NE)

    # -- control flow ------------------------------------------------------

    def if_true(self, label):
        return self._emit_branch(Op.IF, label)

    def goto(self, label):
        return self._emit_branch(Op.GOTO, label)

    def ret(self):
        return self.emit(Op.RET)

    def retv(self):
        return self.emit(Op.RETV)

    # -- objects -----------------------------------------------------------

    def new(self, class_name):
        return self.emit(Op.NEW, class_name)

    def newarray(self, elem_type):
        return self.emit(Op.NEWARRAY, elem_type)

    def aload(self, elem_type=None):
        """Array load; *elem_type* (e.g. ``"int"``, ``"Foo"``) is an
        optional static hint consumed by the SSA builder for stamping."""
        if elem_type is None:
            return self.emit(Op.ALOAD)
        return self.emit(Op.ALOAD, elem_type)

    def astore(self):
        return self.emit(Op.ASTORE)

    def arraylen(self):
        return self.emit(Op.ARRAYLEN)

    def getfield(self, class_name, field_name):
        return self.emit(Op.GETFIELD, class_name, field_name)

    def putfield(self, class_name, field_name):
        return self.emit(Op.PUTFIELD, class_name, field_name)

    def getstatic(self, class_name, field_name):
        return self.emit(Op.GETSTATIC, class_name, field_name)

    def putstatic(self, class_name, field_name):
        return self.emit(Op.PUTSTATIC, class_name, field_name)

    def instanceof(self, class_name):
        return self.emit(Op.INSTANCEOF, class_name)

    def checkcast(self, class_name):
        return self.emit(Op.CHECKCAST, class_name)

    # -- calls ---------------------------------------------------------------

    def invokestatic(self, class_name, method_name):
        return self.emit(Op.INVOKESTATIC, class_name, method_name)

    def invokevirtual(self, class_name, method_name):
        return self.emit(Op.INVOKEVIRTUAL, class_name, method_name)

    def invokeinterface(self, class_name, method_name):
        return self.emit(Op.INVOKEINTERFACE, class_name, method_name)

    def invokespecial(self, class_name, method_name):
        return self.emit(Op.INVOKESPECIAL, class_name, method_name)

    # -- finishing -------------------------------------------------------------

    def build(self):
        """Resolve labels and produce the finished :class:`Method`."""
        code = list(self._code)
        for index, label in self._fixups:
            if label.position is None:
                raise BytecodeError("label %s never placed" % label.name)
            code[index] = code[index].with_target(label.position)
        return Method(
            self.name,
            self.param_types,
            self.return_type,
            code=code,
            is_static=self.is_static,
            max_locals=self._max_locals,
            force_inline=self.force_inline,
            never_inline=self.never_inline,
        )
