"""Behavioral tests of generated code: run minij programs and check
results in the interpreter."""

from repro.lang import compile_source
from tests.helpers import run_static


def run_main(source, entry="run"):
    program = compile_source(source)
    result, vm, _ = run_static(program, "Main", entry)
    return result, vm


class TestExpressions:
    def test_arithmetic_and_precedence(self):
        result, _ = run_main(
            "object Main { def run(): int { return 2 + 3 * 4 - 10 / 2; } }"
        )
        assert result == 9

    def test_short_circuit_and(self):
        source = """
        object Main {
          static var calls: int;
          def side(v: bool): bool { Main.calls = Main.calls + 1; return v; }
          def run(): int {
            var r: bool = Main.side(false) && Main.side(true);
            if (r) { return 0 - Main.calls; }
            return Main.calls;
          }
        }
        """
        result, _ = run_main(source)
        assert result == 1  # right side never evaluated

    def test_short_circuit_or(self):
        source = """
        object Main {
          static var calls: int;
          def side(v: bool): bool { Main.calls = Main.calls + 1; return v; }
          def run(): int {
            var r: bool = Main.side(true) || Main.side(false);
            if (r) { return Main.calls; }
            return 0 - 1;
          }
        }
        """
        result, _ = run_main(source)
        assert result == 1

    def test_not_and_negation(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var b: bool = !(1 > 2);
                if (b) { return -(3 - 10); }
                return 0;
              }
            }
            """
        )
        assert result == 7

    def test_is_and_as(self):
        result, _ = run_main(
            """
            class P { var v: int; }
            object Main {
              def run(): int {
                var o: Object = new P;
                if (o is P) { var p: P = o as P; p.v = 9; return p.v; }
                return 0;
              }
            }
            """
        )
        assert result == 9


class TestStatementsAndState:
    def test_while_loop(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var acc: int = 0;
                var i: int = 1;
                while (i <= 10) { acc = acc + i; i = i + 1; }
                return acc;
              }
            }
            """
        )
        assert result == 55

    def test_nested_scopes_shadowing(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var x: int = 1;
                if (true) { var y: int = 10; x = x + y; }
                if (true) { var y: int = 100; x = x + y; }
                return x;
              }
            }
            """
        )
        assert result == 111

    def test_statics_persist_within_vm(self):
        source = """
        object Main {
          static var counter: int;
          def run(): int {
            counter = counter + 1;
            return counter;
          }
        }
        """
        program = compile_source(source)
        from repro.runtime import VMState
        from repro.interp import Interpreter

        vm = VMState(program)
        interp = Interpreter(vm)
        assert interp.call_static("Main", "run") == 1
        assert interp.call_static("Main", "run") == 2

    def test_print_builtin(self):
        _, vm = run_main(
            "object Main { def run(): int { print(3); print(4); return 0; } }"
        )
        assert vm.output == [3, 4]


class TestObjects:
    def test_constructor_and_fields(self):
        result, _ = run_main(
            """
            class Point {
              var x: int;
              var y: int;
              def init(x: int, y: int): void { this.x = x; this.y = y; }
              def dist2(): int { return this.x * this.x + this.y * this.y; }
            }
            object Main {
              def run(): int { return new Point(3, 4).dist2(); }
            }
            """
        )
        assert result == 25

    def test_inheritance_and_super(self):
        result, _ = run_main(
            """
            class Base {
              def describe(): int { return 10; }
            }
            class Sub extends Base {
              def describe(): int { return super.describe() + 1; }
            }
            object Main {
              def run(): int {
                var b: Base = new Sub;
                return b.describe();
              }
            }
            """
        )
        assert result == 11

    def test_trait_default_method(self):
        result, _ = run_main(
            """
            trait Greeter {
              def id(): int;
              def twice(): int { return this.id() * 2; }
            }
            class G implements Greeter {
              def id(): int { return 21; }
            }
            object Main {
              def run(): int { return new G().twice(); }
            }
            """
        )
        assert result == 42

    def test_implicit_field_access(self):
        result, _ = run_main(
            """
            class C {
              var v: int;
              def bump(): int { v = v + 5; return v; }
            }
            object Main {
              def run(): int { var c: C = new C; c.bump(); return c.bump(); }
            }
            """
        )
        assert result == 10

    def test_arrays_of_objects(self):
        result, _ = run_main(
            """
            class Cell { var v: int; }
            object Main {
              def run(): int {
                var cells: Cell[] = new Cell[3];
                var i: int = 0;
                while (i < 3) { cells[i] = new Cell; cells[i].v = i * i; i = i + 1; }
                return cells[0].v + cells[1].v + cells[2].v;
              }
            }
            """
        )
        assert result == 5


class TestLambdas:
    def test_capture_local(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var k: int = 10;
                var f: IntFn1 = fun (x: int): int => x + k;
                return f.apply(5);
              }
            }
            """
        )
        assert result == 15

    def test_capture_this(self):
        result, _ = run_main(
            """
            class Holder {
              var base: int;
              def init(b: int): void { this.base = b; }
              def adder(): IntFn1 { return fun (x: int): int => x + this.base; }
            }
            object Main {
              def run(): int { return new Holder(100).adder().apply(5); }
            }
            """
        )
        assert result == 105

    def test_implicit_field_in_lambda(self):
        result, _ = run_main(
            """
            class Holder {
              var base: int;
              def init(b: int): void { this.base = b; }
              def adder(): IntFn1 { return fun (x: int): int => x + base; }
            }
            object Main {
              def run(): int { return new Holder(7).adder().apply(1); }
            }
            """
        )
        assert result == 8

    def test_nested_lambda_transitive_capture(self):
        result, _ = run_main(
            """
            object Main {
              def run(): int {
                var a: int = 3;
                var outer: IntFn1 = fun (x: int): int {
                  var inner: IntFn1 = fun (y: int): int => y + a + x;
                  return inner.apply(10);
                };
                return outer.apply(100);
              }
            }
            """
        )
        assert result == 113

    def test_erased_ref_lambda_with_cast(self):
        result, _ = run_main(
            """
            class BoxX { var v: int; def init(v: int): void { this.v = v; } }
            object Main {
              def run(): int {
                var f: ToIntFn = fun (b: BoxX): int => b.v * 2;
                return f.apply(new BoxX(21));
              }
            }
            """
        )
        assert result == 42

    def test_lambda_object_identity_per_evaluation(self):
        result, _ = run_main(
            """
            object Main {
              def mk(k: int): IntFn1 { return fun (x: int): int => x * k; }
              def run(): int {
                var double: IntFn1 = Main.mk(2);
                var triple: IntFn1 = Main.mk(3);
                return double.apply(10) + triple.apply(10);
              }
            }
            """
        )
        assert result == 50


class TestAnnotations:
    def test_inline_flags_reach_methods(self):
        program = compile_source(
            """
            object Main {
              @inline def a(): int { return 1; }
              @noinline def b(): int { return 2; }
              def run(): int { return Main.a() + Main.b(); }
            }
            """
        )
        assert program.lookup_method("Main", "a").force_inline
        assert program.lookup_method("Main", "b").never_inline
