"""A HotSpot-C2-shaped inlining policy.

The paper describes C2's approach (§V): "inlines a single-method at a
time (first only trivial methods during bytecode parsing, and larger
methods in a separate, later phase), with a greedy heuristic that is
similar to the one used in basic Graal". C2's budgets are famously
tighter than Graal EE's — it installs noticeably less code (Table I) —
and its devirtualization speculates at most two receiver types
(bimorphic inline cache).

Phase 1 (parse-time stand-in): inline every trivial callee
(≤ ``trivial_size``) transitively. Phase 2: one pass over the surviving
hot callsites, inlining callees up to ``max_callee_size`` while the
root stays under a firm budget.
"""

from repro.baselines.common import inline_direct_call, speculate_dispatch
from repro.core.inliner import InlineReport
from repro.ir.frequency import annotate_frequencies


class C2Inliner:
    """Two-phase trivial-then-hot inliner with tight budgets."""

    name = "c2"

    def __init__(
        self,
        trivial_size=8,
        max_callee_size=35,
        hot_frequency=3.0,
        max_root_size=350,
        max_depth=9,
        max_targets=2,
        min_probability=0.85,
    ):
        self.trivial_size = trivial_size
        self.max_callee_size = max_callee_size
        self.hot_frequency = hot_frequency
        self.max_root_size = max_root_size
        self.max_depth = max_depth
        self.max_targets = max_targets
        self.min_probability = min_probability

    def run(self, graph, context):
        report = InlineReport()
        self._parse_phase(graph, context, report)
        context.pipeline.simplify_only(graph)
        annotate_frequencies(graph)
        self._late_phase(graph, context, report)
        context.pipeline.simplify_only(graph)
        annotate_frequencies(graph)
        report.rounds = 2
        report.final_root_size = graph.node_count()
        return report

    # ------------------------------------------------------------------

    def _parse_phase(self, graph, context, report):
        """Trivial inlining, transitively, as the bytecode parser would."""
        work = [(invoke, 0) for invoke in graph.invokes()]
        while work:
            invoke, depth = work.pop()
            if invoke.block is None or depth >= self.max_depth:
                continue
            target = invoke.target
            if invoke.is_dispatched or target is None:
                continue
            if target.is_native or target.is_abstract or target.never_inline:
                continue
            if len(target.code) > self.trivial_size and not target.force_inline:
                continue
            before = {id(i) for i in graph.invokes()}
            inline_direct_call(graph, invoke, context, report)
            for new_invoke in graph.invokes():
                if id(new_invoke) not in before:
                    work.append((new_invoke, depth + 1))

    def _late_phase(self, graph, context, report):
        """Hot-callsite inlining with a firm root budget."""
        work = [(invoke, 0) for invoke in graph.invokes()]
        while work:
            invoke, depth = work.pop()
            if invoke.block is None or depth >= self.max_depth:
                continue
            if graph.node_count() >= self.max_root_size:
                break
            if invoke.is_dispatched:
                if invoke.frequency >= 1.0:
                    arms = speculate_dispatch(
                        graph,
                        invoke,
                        context,
                        self.max_targets,
                        self.min_probability,
                        report,
                    )
                    work.extend((arm, depth) for arm in arms)
                continue
            target = invoke.target
            if target is None or target.is_native or target.is_abstract:
                continue
            if target.never_inline:
                continue
            hot = invoke.frequency >= self.hot_frequency
            limit = self.max_callee_size if hot else self.trivial_size
            if len(target.code) > limit and not target.force_inline:
                continue
            before = {id(i) for i in graph.invokes()}
            inline_direct_call(graph, invoke, context, report)
            for new_invoke in graph.invokes():
                if id(new_invoke) not in before:
                    work.append((new_invoke, depth + 1))
