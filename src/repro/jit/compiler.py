"""The JIT compiler driver: front end → inliner → optimizer → backend.

The inlining policy is pluggable: anything with a
``run(graph, context) -> InlineReport`` method works. The paper's
algorithm lives in :mod:`repro.core`; the comparison baselines in
:mod:`repro.baselines`. ``context`` is a :class:`CompileContext` giving
the policy exactly what an online inliner is allowed to see: the program
(for resolution), profiles, graph building for callees, and the
optimizer (for inlining trials).

With observability enabled (``obs=Observability()``) every compilation
is recorded as a ``compile`` span with ``build`` / ``inline`` /
``optimize`` / ``lower`` child spans, per-pass node deltas from the
pipeline, and the inliner's decision trace bridged in as
``inline.<kind>`` events — the stream behind
``python -m repro.tools.stats``.
"""

from repro.backend.lowering import lower_graph
from repro.backend.pycodegen import PyCodegenBailout, generate as generate_py
from repro.errors import CompileError
from repro.ir.builder import build_graph
from repro.ir.frequency import annotate_frequencies
from repro.obs import NULL_OBS, ProvenanceTracer
from repro.obs.provenance import emit_trace_event, record_trace_event
from repro.opts.pipeline import OptimizationPipeline


class CompileContext:
    """Everything an inlining policy may consult during a compilation."""

    def __init__(self, program, profiles, pipeline, cost_model):
        self.program = program
        self.profiles = profiles
        self.pipeline = pipeline
        self.cost_model = cost_model
        #: Optional :class:`~repro.core.trials.TrialMemo`; attached by
        #: the JIT driver when ``JitConfig.enable_trial_memo`` is set
        #: and reset at the start of every compilation.
        self.trial_memo = None
        #: Optional :class:`~repro.deopt.SpeculationPolicy`; when set
        #: and enabled, graphs are built with frame-state capture and
        #: the inliner may emit guard/deopt typeswitches.
        self.speculation = None
        #: Type-check speculation decisions from callee graphs built
        #: during the current compilation (the root graph keeps its own
        #: on ``graph.typecheck_decisions``); reset per compilation and
        #: drained into the event stream by the compiler.
        self.typecheck_decisions = []

    @property
    def speculate(self):
        return self.speculation is not None and self.speculation.enabled

    def build_callee_graph(self, method, caller=None):
        """A fresh profiled graph for *method* (one per call-tree node,
        so each copy can be specialized independently).

        When the profile store runs in context-sensitive mode and a
        *caller* is given, branch probabilities and receiver histograms
        come from the profile observed *from that caller* (falling back
        to the aggregate) — the §VI extension the paper left to future
        work.
        """
        profiles = self.profiles
        if (
            profiles is not None
            and caller is not None
            and getattr(profiles, "context_sensitive", False)
        ):
            profiles = profiles.view_for_caller(caller)
        graph = build_graph(
            method,
            self.program,
            profiles,
            speculate=self.speculate,
            speculation=self.speculation,
        )
        decisions = getattr(graph, "typecheck_decisions", None)
        if decisions:
            self.typecheck_decisions.extend(decisions)
        annotate_frequencies(graph)
        return graph

    def can_build(self, method):
        return not (method.is_abstract or method.is_native)


class CompilationRecord:
    """Outcome of one compilation, kept for evaluation reporting."""

    __slots__ = (
        "method",
        "code",
        "graph_nodes",
        "inline_report",
        "compile_cycles",
    )

    def __init__(self, method, code, graph_nodes, inline_report, compile_cycles):
        self.method = method
        self.code = code
        self.graph_nodes = graph_nodes
        self.inline_report = inline_report
        self.compile_cycles = compile_cycles


class JitCompiler:
    """Compiles single methods with a configurable inlining policy."""

    def __init__(
        self, program, profiles, config, inliner=None, obs=None,
        speculation_log=None,
    ):
        self.program = program
        self.profiles = profiles
        self.config = config
        self.inliner = inliner
        #: Resolved once per compiler so every compilation of this VM
        #: instance (sync or background pipeline) uses one backend.
        self.backend = config.backend_resolved()
        self.obs = obs if obs is not None else NULL_OBS
        self.pipeline = OptimizationPipeline(
            program, config.optimizer, obs=self.obs
        )
        self.context = CompileContext(
            program, profiles, self.pipeline, config.cost_model
        )
        from repro.deopt import SpeculationLog, SpeculationPolicy

        self.context.speculation = SpeculationPolicy(
            enabled=config.speculation_enabled(),
            min_coverage=config.speculation_min_coverage,
            max_targets=config.speculation_max_targets,
            log=speculation_log
            if speculation_log is not None
            else SpeculationLog(),
            typecheck=config.typespec_enabled(),
        )
        if config.enable_trial_memo:
            from repro.core.trials import TrialMemo

            self.context.trial_memo = TrialMemo(
                context_sensitive=getattr(
                    profiles, "context_sensitive", False
                )
            )
        self.records = []
        if self.obs.enabled and inliner is not None:
            # Bridge inlining decisions into the event stream: give a
            # tracer-less incremental inliner a span-scoped tracer.
            # Policies with a user-supplied tracer keep it and are
            # drained into the stream after each run (see compile()).
            if (
                getattr(inliner, "tracer", None) is None
                and hasattr(inliner, "attach_tracer")
            ):
                inliner.attach_tracer(
                    ProvenanceTracer(self.obs.events, self.obs.flight)
                )

    def compile(self, method):
        """Compile *method*; returns a :class:`CompilationRecord`."""
        return self._compile(method, None, None, 0)

    def compile_osr(self, method, backedge_bci, target_bci, osr_stack_depth=0):
        """Compile an OSR continuation of *method*.

        The graph is entered at the loop header *target_bci* (the
        target of the backedge at *backedge_bci* that triggered the
        request) with the interpreter's locals and *osr_stack_depth*
        operand-stack slots as parameters (see
        :func:`~repro.ir.builder.build_graph`). The record's ``code``
        expects exactly those ``max_locals + osr_stack_depth`` argument
        values. The same inline/optimize/lower pipeline runs on the
        continuation graph; the compilation is named
        ``Method@osr<backedge bci>`` — matching the engine's cache key
        — so provenance streams keep OSR roots distinct from
        whole-method roots.
        """
        return self._compile(method, backedge_bci, target_bci, osr_stack_depth)

    def _compile(self, method, osr_bci, osr_target, osr_stack_depth):
        if method.is_abstract or method.is_native:
            raise CompileError("cannot compile %s" % method.qualified_name)
        obs = self.obs
        events = obs.events
        memo = self.context.trial_memo
        if memo is not None:
            # Profiles mutate between compilations; memoized trial
            # results are only sound within one.
            memo.reset()
        self.context.typecheck_decisions = []
        hotness = None
        if obs.enabled and hasattr(self.profiles, "hotness"):
            hotness = self.profiles.hotness(method)
        timers = obs.timers
        span_kwargs = {"method": method.qualified_name, "hotness": hotness}
        if osr_bci is not None:
            # Only OSR spans carry the attribute — whole-method compile
            # records keep their PR 1 shape.
            span_kwargs["osr_bci"] = osr_bci
        with events.span(
            "compile", **span_kwargs
        ) as compile_span, timers.span("compile"):
            with events.span("build"), timers.span("compile.build"):
                graph = build_graph(
                    method,
                    self.program,
                    self.profiles,
                    speculate=self.context.speculate,
                    speculation=self.context.speculation,
                    osr_bci=osr_target,
                    osr_stack_depth=osr_stack_depth,
                )
                if osr_bci is not None:
                    graph.name = "%s@osr%d" % (
                        method.qualified_name,
                        osr_bci,
                    )
                annotate_frequencies(graph)
            with events.span("optimize", stage="pre-inline"), \
                    timers.span("compile.optimize"):
                self.pipeline.run(graph, peel=False, rwe=False)
            inline_report = None
            if self.inliner is not None:
                with timers.span("compile.inline"):
                    inline_report = self._run_inliner(graph, obs)
            self._emit_typecheck_decisions(graph, obs)
            with events.span("optimize", stage="post-inline"), \
                    timers.span("compile.optimize"):
                self.pipeline.run(graph)
            work_units = graph.node_count()
            with events.span("lower"), timers.span("compile.lower"):
                code = lower_graph(graph, self.config.cost_model)
            backend = "machine"
            if self.backend == "py":
                backend = self._attach_py_tier(graph, code, obs)
            compile_cycles = self.config.cost_model.compile_cost(
                work_units, passes=self.config.optimizer.max_iterations
            )
            if inline_report is not None:
                compile_cycles += self.config.cost_model.compile_cost(
                    inline_report.explored_nodes
                )
            compile_span.set(
                nodes=work_units,
                code_size=code.size,
                compile_cycles=compile_cycles,
                backend=backend,
            )
            if obs.enabled and memo is not None:
                obs.metrics.gauge("inline.trial_memo.hits").set(memo.hits)
                obs.metrics.gauge("inline.trial_memo.misses").set(memo.misses)
        record = CompilationRecord(
            method, code, work_units, inline_report, compile_cycles
        )
        self.records.append(record)
        return record

    def _emit_typecheck_decisions(self, graph, obs):
        """Mirror the builder's type-check speculation decisions into
        the event stream and flight ring.

        Emitted after the inliner ran so ``explain`` attributes them to
        the compilation opened by its ``inline.begin``. Positive
        decisions feed the ``inline.type_speculations`` counter.
        """
        decisions = list(getattr(graph, "typecheck_decisions", ()) or ())
        # Callee graphs built (and usually inlined) during this
        # compilation decided their own sites; surface them too, one
        # entry per distinct decision (the trial memo may rebuild the
        # same specialization).
        seen = {
            tuple(sorted(d.items())) for d in decisions
        }
        for decision in self.context.typecheck_decisions:
            key = tuple(sorted(decision.items()))
            if key not in seen:
                seen.add(key)
                decisions.append(decision)
        if not decisions or not obs.enabled:
            return
        speculated = sum(1 for d in decisions if d["speculate"])
        if speculated:
            obs.metrics.counter("inline.type_speculations").inc(speculated)
        flight = obs.flight
        for decision in decisions:
            obs.events.emit("inline.typecheck", **decision)
            if flight.enabled:
                flight.record("inline.typecheck", **decision)

    def _attach_py_tier(self, graph, code, obs):
        """Lower *graph* to a Python closure and attach it to *code*.

        Returns the backend that will actually execute this root:
        ``"py"`` on success, ``"machine"`` when the generator bails out
        (unsupported shape) — the machine code is always present, so a
        bailout degrades to the oracle tier, never to a wrong answer.
        """
        events = obs.events
        try:
            with events.span("pycodegen"), \
                    obs.timers.span("compile.pycodegen"):
                factory, source = generate_py(
                    graph, self.config.cost_model
                )
        except PyCodegenBailout as bailout:
            if obs.enabled:
                metrics = obs.metrics
                metrics.counter("backend.py.bailouts").inc()
                metrics.counter(
                    "backend.py.bailouts.%s" % bailout.reason
                ).inc()
                events.emit(
                    "backend.bailout",
                    method=graph.name,
                    reason=bailout.reason,
                    detail=bailout.detail,
                )
                if obs.flight.enabled:
                    obs.flight.record(
                        "backend.bailout",
                        method=graph.name,
                        reason=bailout.reason,
                        detail=bailout.detail,
                    )
            return "machine"
        code.py_factory = factory
        code.py_source = source
        if obs.enabled:
            obs.metrics.counter("backend.py.compiles").inc()
        return "py"

    def _run_inliner(self, graph, obs):
        """Run the inlining policy inside an ``inline`` span, mirroring
        its decision trace into the event stream."""
        tracer = getattr(self.inliner, "tracer", None)
        drain_from = None
        if (
            obs.enabled
            and tracer is not None
            and not isinstance(tracer, ProvenanceTracer)
        ):
            drain_from = len(tracer.events)
        with obs.events.span("inline") as inline_span:
            inline_report = self.inliner.run(graph, self.context)
            annotate_frequencies(graph)
            if drain_from is not None:
                flight = obs.flight
                for event in tracer.events[drain_from:]:
                    emit_trace_event(obs.events, event)
                    if flight.enabled:
                        record_trace_event(flight, event)
            if obs.enabled and inline_report is not None:
                inline_span.set(
                    rounds=inline_report.rounds,
                    expansions=inline_report.expansions,
                    inlined=inline_report.inline_count,
                    typeswitches=inline_report.typeswitch_count,
                    speculations=getattr(
                        inline_report, "speculation_count", 0
                    ),
                    explored_nodes=inline_report.explored_nodes,
                )
                metrics = obs.metrics
                metrics.counter("inline.expansions").inc(
                    inline_report.expansions
                )
                metrics.counter("inline.inlined").inc(
                    inline_report.inline_count
                )
                metrics.counter("inline.typeswitches").inc(
                    inline_report.typeswitch_count
                )
                metrics.counter("inline.speculations").inc(
                    getattr(inline_report, "speculation_count", 0)
                )
                metrics.counter("inline.explored_nodes").inc(
                    inline_report.explored_nodes
                )
        return inline_report
