"""Opcode definitions and static metadata for the bytecode ISA.

Every opcode is a short uppercase string (readable in dumps and traces).
The tables in this module give, for each opcode, its operand shape and
its stack effect, which the verifier and the SSA builder both rely on.

Operand encodings (the ``args`` tuple of an :class:`~repro.bytecode.instr.Instr`):

========= ==============================================================
CONST     ``(int_value,)``
LOAD      ``(local_slot,)``
STORE     ``(local_slot,)``
IF        ``(target_index,)`` — branch if popped int is non-zero
GOTO      ``(target_index,)``
NEW       ``(class_name,)``
NEWARRAY  ``(elem_type,)`` — ``"int"`` or a class name; pops length
GETFIELD  ``(class_name, field_name)``
PUTFIELD  ``(class_name, field_name)``
GETSTATIC ``(class_name, field_name)``
PUTSTATIC ``(class_name, field_name)``
INVOKE*   ``(class_name, method_name)``
INSTANCEOF``(class_name,)``
CHECKCAST ``(class_name,)``
others    ``()``
========= ==============================================================
"""


class Op:
    """Namespace of opcode mnemonics.

    Grouped by function; the values are their own names so that an
    instruction dump is self-describing.
    """

    # Constants and stack shuffling.
    CONST = "CONST"
    NULL = "NULL"
    POP = "POP"
    DUP = "DUP"

    # Local variables.
    LOAD = "LOAD"
    STORE = "STORE"

    # Integer arithmetic (operates on the int stack kind).
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    DIV = "DIV"
    REM = "REM"
    NEG = "NEG"
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    SHL = "SHL"
    SHR = "SHR"

    # Integer comparisons; push 1 or 0.
    EQ = "EQ"
    NE = "NE"
    LT = "LT"
    LE = "LE"
    GT = "GT"
    GE = "GE"

    # Reference comparisons; push 1 or 0.
    REF_EQ = "REF_EQ"
    REF_NE = "REF_NE"

    # Control flow.
    IF = "IF"
    GOTO = "GOTO"
    RET = "RET"
    RETV = "RETV"

    # Objects and arrays.
    NEW = "NEW"
    NEWARRAY = "NEWARRAY"
    ALOAD = "ALOAD"
    ASTORE = "ASTORE"
    ARRAYLEN = "ARRAYLEN"
    GETFIELD = "GETFIELD"
    PUTFIELD = "PUTFIELD"
    GETSTATIC = "GETSTATIC"
    PUTSTATIC = "PUTSTATIC"
    INSTANCEOF = "INSTANCEOF"
    CHECKCAST = "CHECKCAST"

    # Calls.
    INVOKESTATIC = "INVOKESTATIC"
    INVOKEVIRTUAL = "INVOKEVIRTUAL"
    INVOKEINTERFACE = "INVOKEINTERFACE"
    INVOKESPECIAL = "INVOKESPECIAL"


#: Opcodes that transfer control to an explicit target.
BRANCH_OPS = frozenset({Op.IF, Op.GOTO})

#: Opcodes that end a basic block (no fall-through except IF).
TERMINATOR_OPS = frozenset({Op.GOTO, Op.RET, Op.RETV})

#: Opcodes that invoke another method.
INVOKE_OPS = frozenset(
    {Op.INVOKESTATIC, Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE, Op.INVOKESPECIAL}
)

#: Invokes with a receiver on the stack below the arguments.
RECEIVER_INVOKE_OPS = frozenset(
    {Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE, Op.INVOKESPECIAL}
)

BINARY_INT_OPS = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR}
)

COMPARE_INT_OPS = frozenset({Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE})

COMPARE_REF_OPS = frozenset({Op.REF_EQ, Op.REF_NE})

#: Fixed (pop, push) stack effects for opcodes whose effect does not
#: depend on the surrounding program. Invokes are handled separately.
_FIXED_EFFECTS = {
    Op.CONST: (0, 1),
    Op.NULL: (0, 1),
    Op.POP: (1, 0),
    Op.DUP: (1, 2),
    Op.LOAD: (0, 1),
    Op.STORE: (1, 0),
    Op.NEG: (1, 1),
    Op.IF: (1, 0),
    Op.GOTO: (0, 0),
    Op.RET: (0, 0),
    Op.RETV: (1, 0),
    Op.NEW: (0, 1),
    Op.NEWARRAY: (1, 1),
    Op.ALOAD: (2, 1),
    Op.ASTORE: (3, 0),
    Op.ARRAYLEN: (1, 1),
    Op.GETFIELD: (1, 1),
    Op.PUTFIELD: (2, 0),
    Op.GETSTATIC: (0, 1),
    Op.PUTSTATIC: (1, 0),
    Op.INSTANCEOF: (1, 1),
    Op.CHECKCAST: (1, 1),
}

for _op in BINARY_INT_OPS | COMPARE_INT_OPS | COMPARE_REF_OPS:
    _FIXED_EFFECTS[_op] = (2, 1)


ALL_OPS = frozenset(
    value for name, value in vars(Op).items() if not name.startswith("_")
)


def is_branch(op):
    """Return True if *op* takes an explicit jump target operand."""
    return op in BRANCH_OPS


def is_terminator(op):
    """Return True if control never falls through past *op*."""
    return op in TERMINATOR_OPS


def is_invoke(op):
    """Return True if *op* calls another method."""
    return op in INVOKE_OPS


def has_receiver(op):
    """Return True if *op* is an invoke with a receiver object."""
    return op in RECEIVER_INVOKE_OPS


def stack_effect(op, instr=None, program=None):
    """Return the ``(pops, pushes)`` stack effect of an instruction.

    For invoke opcodes the effect depends on the callee's signature, so
    *instr* and *program* must be supplied to resolve it.
    """
    effect = _FIXED_EFFECTS.get(op)
    if effect is not None:
        return effect
    if op in INVOKE_OPS:
        if instr is None or program is None:
            raise ValueError("invoke stack effect needs instr and program")
        cname, mname = instr.args
        method = program.lookup_method(cname, mname)
        pops = len(method.param_types)
        if op in RECEIVER_INVOKE_OPS:
            pops += 1
        pushes = 0 if method.return_type == "void" else 1
        return (pops, pushes)
    raise ValueError("unknown opcode: %r" % (op,))
