"""Structural-validity stress: compile every benchmark's hot methods
under the incremental inliner with the IR checker enabled after
inlining and after the final pipeline.

This is the deepest structural net in the suite: every graph the
inliner produces across all 28 workloads must satisfy full SSA
invariants (dominance, edge/phi consistency, use-def symmetry).
"""

import pytest

from repro.baselines import tuned_inliner
from repro.bench.suite import all_benchmarks
from repro.ir.checker import check_graph
from repro.jit import Engine, JitConfig


@pytest.mark.slow
@pytest.mark.parametrize("name", [spec.name for spec in all_benchmarks()])
def test_checked_compilation(name):
    from repro.bench.suite import get_benchmark
    from repro.backend.lowering import lower_graph
    from repro.ir.builder import build_graph
    from repro.ir.frequency import annotate_frequencies
    from repro.errors import CompileError

    spec = get_benchmark(name)
    program = spec.load()
    engine = Engine(
        program, JitConfig(hot_threshold=20), inliner=tuned_inliner(0.1)
    )

    compiler = engine.compiler
    original_compile = compiler.compile
    checked = {"count": 0}

    def checked_compile(method):
        # Re-run the compiler's stages with checks interleaved.
        graph = build_graph(method, program, engine.profiles)
        annotate_frequencies(graph)
        compiler.pipeline.run(graph, peel=False, rwe=False)
        check_graph(graph, program)
        compiler.inliner.run(graph, compiler.context)
        check_graph(graph, program)
        annotate_frequencies(graph)
        compiler.pipeline.run(graph)
        check_graph(graph, program)
        checked["count"] += 1
        # Delegate the actual installation to the real compiler (it
        # rebuilds; determinism makes the result equivalent).
        return original_compile(method)

    compiler.compile = checked_compile
    values = set()
    for _ in range(5):
        values.add(engine.run_iteration("Main", "run").value)
    assert checked["count"] > 0, "nothing got hot on %s" % name
    # And the benchmark still computed consistently.
    vm_values = len(values)
    assert vm_values <= 2  # setup iteration may differ; steady must not
