"""Extra ablations (§IV heuristics) beyond the paper's figures.

DESIGN.md's E8: each mechanism the implementation section describes is
exercised on a targeted micro-workload where its absence is measurable:

- the exploration penalty ψ (Eq. 7) keeps one deep subtree from
  monopolizing expansion;
- the recursion penalty ψ_r (Eq. 14) keeps recursive methods from
  exploding the root graph;
- polymorphic inlining (typeswitch) beats leaving dispatched callsites
  virtual;
- the optimizer budget (§II.3 non-linearity) actually reduces
  optimization effort on oversized graphs.
"""

from repro.baselines import tuned_inliner
from repro.bench.suite import get_benchmark
from repro.core import IncrementalInliner, InlinerParams
from repro.jit import Engine, JitConfig
from repro.opts.pipeline import OptimizerConfig


def _steady(program, inliner, iterations=10, jit_config=None):
    engine = Engine(program, jit_config or JitConfig(hot_threshold=25), inliner=inliner)
    last = None
    for _ in range(iterations):
        last = engine.run_iteration("Main", "run")
    return last, engine


class TestRecursionPenalty:
    def test_recursion_bounded(self, benchmark):
        """kiama's strategies recurse; without ψ_r the call tree would
        chase the recursion. With it, compilation stays bounded."""
        spec = get_benchmark("kiama")
        program = spec.load()
        result, engine = _steady(program, tuned_inliner(0.1))
        for record in engine.compiler.records:
            assert record.graph_nodes < InlinerParams.scaled(0.1).max_root_size
        engine2 = Engine(program, spec.jit_config_factory(), inliner=tuned_inliner(0.1))
        for _ in range(8):
            engine2.run_iteration("Main", "run")
        benchmark(engine2.run_iteration, "Main", "run")


class TestTypeswitchValue:
    def test_polymorphic_inlining_helps(self, benchmark):
        """Disabling typeswitch speculation (max 0 targets) on a
        dispatch-heavy benchmark costs performance."""
        spec = get_benchmark("factorie")
        program = spec.load()
        with_ts, _ = _steady(program, tuned_inliner(0.1))
        no_ts_params = InlinerParams.scaled(0.1)
        no_ts_params.max_typeswitch_targets = 0
        without_ts, _ = _steady(program, IncrementalInliner(no_ts_params))
        print(
            "\nfactorie steady cycles: with typeswitch %d, without %d"
            % (with_ts.total_cycles, without_ts.total_cycles)
        )
        assert with_ts.value == without_ts.value
        assert with_ts.total_cycles <= without_ts.total_cycles * 1.02
        engine = Engine(program, spec.jit_config_factory(), inliner=tuned_inliner(0.1))
        for _ in range(8):
            engine.run_iteration("Main", "run")
        benchmark(engine.run_iteration, "Main", "run")


class TestOptimizerBudget:
    def test_budget_shrinks_effort(self, benchmark):
        config = OptimizerConfig(max_iterations=3, budget_nodes=100)
        assert config.iterations_for(50) == 3
        assert config.iterations_for(150) == 2
        assert config.iterations_for(350) == 1
        assert config.iterations_for(10_000) == 1

        # And a tiny budget measurably changes compilation behaviour on
        # a real benchmark (less optimization on big inlined roots).
        spec = get_benchmark("scalariform")
        program = spec.load()
        generous, _ = _steady(program, tuned_inliner(0.1))
        starved_config = JitConfig(
            hot_threshold=25,
            optimizer=OptimizerConfig(max_iterations=1, budget_nodes=16),
        )
        starved, _ = _steady(
            program, tuned_inliner(0.1), jit_config=starved_config
        )
        print(
            "\nscalariform steady: generous optimizer %d, starved %d"
            % (generous.total_cycles, starved.total_cycles)
        )
        assert generous.value == starved.value
        assert generous.total_cycles <= starved.total_cycles * 1.05
        engine = Engine(program, spec.jit_config_factory(), inliner=tuned_inliner(0.1))
        for _ in range(8):
            engine.run_iteration("Main", "run")
        benchmark(engine.run_iteration, "Main", "run")


class TestExplorationPenalty:
    def test_psi_spreads_exploration(self, benchmark):
        """With ψ disabled (p1 = p2 = 0, no cutoff bonus), expansion can
        sink its whole budget into one subtree; the tuned ψ must not be
        slower than that degenerate policy on a wide-call-tree workload."""
        spec = get_benchmark("scalac")
        program = spec.load()
        tuned, _ = _steady(program, tuned_inliner(0.1))
        flat_params = InlinerParams.scaled(0.1)
        flat_params.p1 = 0.0
        flat_params.p2 = 0.0
        flat_params.b1 = 0.0
        flat, _ = _steady(program, IncrementalInliner(flat_params))
        print(
            "\nscalac steady: tuned psi %d, disabled psi %d"
            % (tuned.total_cycles, flat.total_cycles)
        )
        assert tuned.value == flat.value
        assert tuned.total_cycles <= flat.total_cycles * 1.10
        engine = Engine(program, spec.jit_config_factory(), inliner=tuned_inliner(0.1))
        for _ in range(8):
            engine.run_iteration("Main", "run")
        benchmark(engine.run_iteration, "Main", "run")


TYPECHECK_SOURCE = """
trait Shape { def tag(): int; }
class Square implements Shape {
  var side: int;
  def init(s: int): void { this.side = s; }
  def tag(): int { return 1; }
}
class Circle implements Shape {
  var r: int;
  def init(r: int): void { this.r = r; }
  def tag(): int { return 2; }
}
object Main {
  var cur: Shape;
  def classify(s: Shape): int {
    if (s is Square) { return (s as Square).side; }
    return 7;
  }
  def run(): int {
    if (Main.cur == null) { Main.cur = new Square(8); }
    var acc: int = 0;
    var i: int = 0;
    while (i < 200) { acc = acc + Main.classify(Main.cur); i = i + 1; }
    return acc;
  }
}
"""


class TestTypeCheckSpeculation:
    def test_typespec_folds_profiled_checks(self, benchmark):
        """Profile-guided type-check speculation: the operand comes out
        of a field, so its stamp stays inexact and only the profile can
        justify pinning it — with ``typespec`` the instanceof and the
        dominated checkcast fold out of the hot loop."""
        from repro.lang import compile_source
        from repro.obs import Observability

        def steady(typespec):
            program = compile_source(TYPECHECK_SOURCE)
            obs = Observability()
            engine = Engine(
                program,
                JitConfig(hot_threshold=3, speculate=True, typespec=typespec),
                inliner=tuned_inliner(0.1),
                obs=obs,
            )
            last = None
            for _ in range(12):
                last = engine.run_iteration("Main", "run")
            snap = obs.metrics.snapshot()
            folds = snap.get("opt.type_check_folds", {"value": 0})["value"]
            specs = snap.get(
                "inline.type_speculations", {"value": 0}
            )["value"]
            return last, folds, specs, engine

        off, off_folds, off_specs, _ = steady(False)
        on, on_folds, on_specs, engine = steady(True)
        print(
            "\ntypespec steady cycles: off %d, on %d (folds %d->%d)"
            % (off.total_cycles, on.total_cycles, off_folds, on_folds)
        )
        assert off.value == on.value
        assert off_specs == 0
        assert on_specs > 0
        assert on_folds > off_folds
        assert on.total_cycles < off.total_cycles
        assert engine.deopt_count == 0
        benchmark(engine.run_iteration, "Main", "run")
