"""Shared fixtures and program builders for the test suite."""

from repro.bytecode import MethodBuilder, Program, verify_program
from repro.bytecode.klass import FieldDef
from repro.bytecode.method import Method
from repro.interp import Interpreter
from repro.runtime import VMState, install_builtins


def fresh_program():
    """An empty program with builtins installed."""
    program = Program()
    install_builtins(program)
    return program


def run_static(program, class_name, method_name, args=()):
    """Interpret one call in a fresh VM; returns (result, vm, interp)."""
    vm = VMState(program)
    interp = Interpreter(vm)
    result = interp.call_static(class_name, method_name, args)
    return result, vm, interp


def single_method_program(build_fn, name="f", params=("int",), ret="int"):
    """A program with one static method built by *build_fn(builder)*."""
    program = fresh_program()
    holder = program.define_class("T", is_abstract=True)
    builder = MethodBuilder(name, list(params), ret, is_static=True)
    build_fn(builder)
    holder.add_method(builder.build())
    verify_program(program)
    return program


def shapes_program():
    """The recurring polymorphic test program: Shape / Square / Circle.

    - ``Shape`` is an interface with abstract ``area``;
    - ``Square.area`` = side²; ``Circle.area`` = 3r²;
    - ``Main.total(s, n)`` = n * s.area() via interface dispatch;
    - ``Main.run()`` loops ``total`` over a Square and a Circle.
    """
    program = fresh_program()
    shape = program.define_class("Shape", is_interface=True)
    shape.add_method(Method("area", [], "int", is_abstract=True))

    square = program.define_class("Square", interfaces=["Shape"])
    square.add_field(FieldDef("side", "int"))
    b = MethodBuilder("area", [], "int")
    b.load(0).getfield("Square", "side")
    b.load(0).getfield("Square", "side").mul().retv()
    square.add_method(b.build())

    circle = program.define_class("Circle", interfaces=["Shape"])
    circle.add_field(FieldDef("r", "int"))
    b = MethodBuilder("area", [], "int")
    b.load(0).getfield("Circle", "r")
    b.load(0).getfield("Circle", "r").mul().const(3).mul().retv()
    circle.add_method(b.build())

    main = program.define_class("Main", is_abstract=True)
    b = MethodBuilder("total", ["Shape", "int"], "int", is_static=True)
    b.load(1).load(0).invokeinterface("Shape", "area").mul().retv()
    main.add_method(b.build())

    b = MethodBuilder("run", [], "int", is_static=True)
    b.new("Square").dup().const(4).putfield("Square", "side")
    square_slot = b.alloc_local()
    b.store(square_slot)
    b.new("Circle").dup().const(3).putfield("Circle", "r")
    circle_slot = b.alloc_local()
    b.store(circle_slot)
    acc = b.alloc_local()
    b.const(0).store(acc)
    i = b.alloc_local()
    b.const(0).store(i)
    loop = b.new_label()
    done = b.new_label()
    use_circle = b.new_label()
    join = b.new_label()
    b.place(loop).load(i).const(120).ge().if_true(done)
    b.load(i).const(3).and_().const(0).eq().if_true(use_circle)
    b.load(acc).load(square_slot).const(2).invokestatic("Main", "total")
    b.add().store(acc).goto(join)
    b.place(use_circle)
    b.load(acc).load(circle_slot).const(2).invokestatic("Main", "total")
    b.add().store(acc)
    b.place(join)
    b.load(i).const(1).add().store(i).goto(loop)
    b.place(done).load(acc).retv()
    main.add_method(b.build())
    verify_program(program)
    return program


#: Expected Main.run() result of shapes_program():
#: 30 circle iterations (i%4==0 -> 2*27) and 90 square ones (2*16).
SHAPES_RESULT = 30 * 2 * 27 + 90 * 2 * 16
