"""``PrintCompilation``-style reports built from an event stream.

:func:`build_report` folds a list of event records (the in-memory
stream of an :class:`~repro.obs.events.EventLog`, or a JSONL file read
back with :meth:`EventLog.read_jsonl`) into a plain-dict report:

- one entry per ``compile`` span (method, hotness at trigger, node and
  code sizes, modelled compile cycles, wall time per phase, inlining
  outcome counts),
- aggregate phase timings,
- pass-effectiveness totals from the pipeline's per-pass node deltas,
- an inlining outcome rollup with the most-inlined callees,
- per-iteration cycle breakdowns when the engine emitted them.

:func:`render_report` renders that dict as the aligned text report the
``repro.tools.stats`` CLI prints.
"""

#: Child spans of ``compile`` whose wall time is reported per phase.
#: ``pycodegen`` only appears when the Python-codegen backend runs.
PHASES = ("build", "inline", "optimize", "lower", "pycodegen")

#: Phases omitted from per-compile phase listings when they took no
#: time (they don't exist in every configuration).
OPTIONAL_PHASES = ("inline", "pycodegen")

#: Inline decision kinds surfaced in the rollup, in display order.
INLINE_KINDS = ("expand", "decline", "cluster", "inline", "reject", "typeswitch")


def build_report(records):
    """Fold event *records* into a report dict (see module docstring)."""
    spans = {}  # sid -> {"name", "parent"}
    compiles = []
    compile_by_sid = {}
    pending_hotness = {}  # method -> hotness from the last jit.trigger
    phase_totals = dict.fromkeys(PHASES, 0.0)
    pass_stats = {}  # pass name -> {"runs", "removed", "added"}
    rollup = dict.fromkeys(INLINE_KINDS, 0)
    inlined_methods = {}
    iterations = []
    failures = []
    deopts = []  # {"method", "reason", "site"}
    invalidations = []
    backend_bailouts = []  # {"method", "reason", "detail"}

    def enclosing_compile(sid):
        while sid is not None:
            entry = compile_by_sid.get(sid)
            if entry is not None:
                return entry
            info = spans.get(sid)
            sid = info["parent"] if info else None
        return None

    for record in records:
        rtype = record.get("type")
        name = record.get("name")
        attrs = record.get("attrs") or {}
        sid = record.get("span")
        if rtype == "begin":
            spans[sid] = {"name": name, "parent": record.get("parent")}
            if name == "compile":
                method = attrs.get("method")
                entry = {
                    "index": len(compiles) + 1,
                    "method": method,
                    "hotness": attrs.get("hotness"),
                    "nodes": None,
                    "code_size": None,
                    "compile_cycles": None,
                    "backend": None,
                    "bailout": None,
                    "duration": None,
                    "phases": dict.fromkeys(PHASES, 0.0),
                    "inline": dict.fromkeys(INLINE_KINDS, 0),
                    "inline_rounds": 0,
                }
                if entry["hotness"] is None:
                    entry["hotness"] = pending_hotness.pop(method, None)
                compiles.append(entry)
                compile_by_sid[sid] = entry
        elif rtype == "event":
            if name == "pass":
                stats = pass_stats.setdefault(
                    attrs.get("name", "?"), {"runs": 0, "removed": 0, "added": 0}
                )
                stats["runs"] += 1
                delta = attrs.get("before", 0) - attrs.get("after", 0)
                if delta >= 0:
                    stats["removed"] += delta
                else:
                    stats["added"] += -delta
            elif name and name.startswith("inline."):
                kind = name[len("inline."):]
                if kind in rollup:
                    rollup[kind] += 1
                    entry = enclosing_compile(sid)
                    if entry is not None:
                        entry["inline"][kind] += 1
                    if kind == "inline":
                        callee = attrs.get("method")
                        if callee:
                            inlined_methods[callee] = (
                                inlined_methods.get(callee, 0) + 1
                            )
                elif kind == "round":
                    entry = enclosing_compile(sid)
                    if entry is not None:
                        entry["inline_rounds"] += 1
            elif name == "jit.trigger":
                if attrs.get("method") is not None:
                    pending_hotness[attrs["method"]] = attrs.get("hotness")
            elif name == "jit.compile_failed":
                failures.append(attrs.get("method"))
            elif name == "deopt":
                deopts.append(
                    {
                        "method": attrs.get("method"),
                        "reason": attrs.get("reason"),
                        "site": attrs.get("site"),
                    }
                )
            elif name == "jit.invalidate":
                invalidations.append(attrs.get("method"))
            elif name == "backend.bailout":
                backend_bailouts.append(
                    {
                        "method": attrs.get("method"),
                        "reason": attrs.get("reason"),
                        "detail": attrs.get("detail"),
                    }
                )
                # The compilation fell back to the machine backend; the
                # compile end-record already reports backend=machine.
                entry = enclosing_compile(sid)
                if entry is not None:
                    entry["bailout"] = attrs.get("reason")
            elif name == "iteration":
                iterations.append(attrs)
        elif rtype == "end":
            info = spans.get(sid)
            duration = record.get("dur") or 0.0
            if name == "compile":
                entry = compile_by_sid.get(sid)
                if entry is not None:
                    entry["duration"] = duration
                    for key in ("nodes", "code_size", "compile_cycles",
                                "backend"):
                        if attrs.get(key) is not None:
                            entry[key] = attrs[key]
            elif name in phase_totals:
                phase_totals[name] += duration
                parent = info["parent"] if info else None
                entry = enclosing_compile(parent)
                if entry is not None:
                    entry["phases"][name] += duration

    top_inlined = sorted(
        inlined_methods.items(), key=lambda item: (-item[1], item[0])
    )
    return {
        "compiles": compiles,
        "phase_totals": phase_totals,
        "pass_stats": pass_stats,
        "inline_rollup": rollup,
        "top_inlined": top_inlined,
        "iterations": iterations,
        "failures": failures,
        "deopts": deopts,
        "invalidations": invalidations,
        "backend_bailouts": backend_bailouts,
    }


def _ms(seconds):
    return "%.1fms" % (seconds * 1000.0)


def _table(rows, header, align_left=()):
    widths = [
        max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))
    ]
    lines = []
    for row in [header] + rows:
        cells = []
        for i, cell in enumerate(row):
            text = str(cell)
            cells.append(
                text.ljust(widths[i]) if i in align_left else text.rjust(widths[i])
            )
        lines.append("  ".join(cells).rstrip())
    return lines


def render_report(report, top=10, hottest=None, metrics_snapshot=None):
    """Render a report dict as the aligned text report.

    Args:
        report: the output of :func:`build_report`.
        top: how many rows to show in the top-N sections.
        hottest: optional ``[(method, hotness)]`` (live runs pass the
            profile store's view; replays fall back to trigger hotness).
        metrics_snapshot: optional metrics snapshot to append.
    """
    lines = []
    compiles = report["compiles"]

    lines.append("== compilations (%d) ==" % len(compiles))
    if compiles:
        rows = []
        for entry in compiles:
            rows.append(
                (
                    entry["index"],
                    entry["method"] or "?",
                    entry["hotness"] if entry["hotness"] is not None else "-",
                    entry["nodes"] if entry["nodes"] is not None else "-",
                    entry["code_size"] if entry["code_size"] is not None else "-",
                    entry["compile_cycles"]
                    if entry["compile_cycles"] is not None
                    else "-",
                    (entry["backend"] or "-")
                    + ("!" if entry["bailout"] else ""),
                    " ".join(
                        "%s=%s" % (phase, _ms(entry["phases"][phase]))
                        for phase in PHASES
                        if entry["phases"][phase]
                        or phase not in OPTIONAL_PHASES
                    ),
                    entry["inline"]["inline"],
                    entry["inline"]["typeswitch"],
                )
            )
        lines.extend(
            _table(
                rows,
                ("#", "method", "hotness", "nodes", "code", "jit-cycles",
                 "backend", "phase wall time", "inl", "ts"),
                align_left=(1, 6, 7),
            )
        )
    else:
        lines.append("  (no compilations recorded)")
    for method in report["failures"]:
        lines.append("  FAILED %s" % method)

    bailouts = report.get("backend_bailouts") or []
    if bailouts:
        lines.append("")
        lines.append(
            "== py-backend bailouts (%d; '!' above marks the compiles) =="
            % len(bailouts)
        )
        by_reason = {}
        for bailout in bailouts:
            reason = bailout.get("reason") or "?"
            by_reason[reason] = by_reason.get(reason, 0) + 1
        lines.append(
            "  by reason: "
            + ", ".join(
                "%s ×%d" % (reason, count)
                for reason, count in sorted(by_reason.items())
            )
        )
        for bailout in bailouts[:top]:
            lines.append(
                "  %s: %s (%s)"
                % (bailout.get("method") or "?",
                   bailout.get("reason") or "?",
                   bailout.get("detail") or "")
            )

    lines.append("")
    lines.append("== phase totals (wall time; telemetry only) ==")
    lines.append(
        "  "
        + "   ".join(
            "%s %s" % (phase, _ms(report["phase_totals"][phase]))
            for phase in PHASES
        )
    )

    lines.append("")
    lines.append("== pass effectiveness (IR node deltas) ==")
    if report["pass_stats"]:
        rows = [
            (name, stats["runs"], stats["removed"], stats["added"])
            for name, stats in sorted(report["pass_stats"].items())
        ]
        lines.extend(
            _table(rows, ("pass", "runs", "nodes-", "nodes+"), align_left=(0,))
        )
    else:
        lines.append("  (no pass events recorded)")

    lines.append("")
    lines.append("== inlining rollup ==")
    rollup = report["inline_rollup"]
    lines.append(
        "  expansions %d (declined %d), clusters %d, inlined %d, "
        "kept %d, typeswitches %d"
        % (
            rollup["expand"],
            rollup["decline"],
            rollup["cluster"],
            rollup["inline"],
            rollup["reject"],
            rollup["typeswitch"],
        )
    )
    if report["top_inlined"]:
        shown = report["top_inlined"][:top]
        lines.append(
            "  top inlined: "
            + ", ".join("%s ×%d" % (name, count) for name, count in shown)
        )

    hot_rows = hottest
    if hot_rows is None:
        hot_rows = [
            (entry["method"], entry["hotness"])
            for entry in compiles
            if entry["hotness"] is not None
        ]
        hot_rows.sort(key=lambda item: (-item[1], item[0]))
    if hot_rows:
        lines.append("")
        lines.append("== hottest methods (top %d) ==" % top)
        rows = [
            (name, "%d" % hotness) for name, hotness in hot_rows[:top]
        ]
        lines.extend(_table(rows, ("method", "hotness"), align_left=(0,)))

    deopts = report.get("deopts") or []
    if deopts:
        lines.append("")
        lines.append("== deoptimizations (%d) ==" % len(deopts))
        by_reason = {}
        by_site = {}
        for deopt in deopts:
            reason = deopt.get("reason") or "?"
            by_reason[reason] = by_reason.get(reason, 0) + 1
            site = "%s [%s]" % (deopt.get("site") or "?",
                                deopt.get("method") or "?")
            by_site[site] = by_site.get(site, 0) + 1
        lines.append(
            "  by reason: "
            + ", ".join(
                "%s ×%d" % (reason, count)
                for reason, count in sorted(by_reason.items())
            )
        )
        rows = sorted(by_site.items(), key=lambda item: (-item[1], item[0]))
        lines.extend(
            _table(
                [(site, count) for site, count in rows[:top]],
                ("site [compiled root]", "deopts"),
                align_left=(0,),
            )
        )
        invalidations = report.get("invalidations") or []
        if invalidations:
            lines.append(
                "  invalidations: %d (%s)"
                % (
                    len(invalidations),
                    ", ".join(sorted(set(filter(None, invalidations)))),
                )
            )

    iterations = report["iterations"]
    if iterations:
        lines.append("")
        lines.append("== iterations (%d) ==" % len(iterations))
        total = sum(it.get("total_cycles", 0) for it in iterations)
        compile_cycles = sum(it.get("compile_cycles", 0) for it in iterations)
        lines.append(
            "  total %d cycles (%d spent compiling), steady %d cycles/iteration"
            % (total, compile_cycles, iterations[-1].get("total_cycles", 0))
        )

    if metrics_snapshot:
        lines.append("")
        lines.append("== metrics ==")
        for name, data in sorted(metrics_snapshot.items()):
            if data.get("type") == "histogram":
                lines.append(
                    "  %-32s n=%d p50=%.0f p90=%.0f p99=%.0f max=%s"
                    % (name, data["count"], data["p50"], data["p90"],
                       data["p99"], data["max"])
                )
            else:
                lines.append("  %-32s %s" % (name, data.get("value")))
    return "\n".join(lines)
