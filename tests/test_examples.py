"""Smoke tests: every example script runs and prints what it promises."""

import io
import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run_example(name, argv=None):
    path = os.path.join(EXAMPLES, name)
    captured = io.StringIO()
    old_stdout, old_argv = sys.stdout, sys.argv
    sys.stdout = captured
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.stdout = old_stdout
        sys.argv = old_argv
    return captured.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = _run_example("quickstart.py")
        assert "result: %d" % (sum(x * x for x in range(100)) + 50) in out
        assert "inlined" in out

    def test_figure1(self):
        out = _run_example("figure1_foreach.py")
        assert "program result: %d" % sum(range(50)) in out
        assert "call tree" in out
        assert "E Seq.foreach" in out or "P Seq.foreach" in out
        assert "incremental (the paper)" in out

    def test_custom_policy(self):
        out = _run_example("custom_policy.py")
        assert out.count("value=99812") == 3
        assert "custom hottest-callsite policy" in out

    @pytest.mark.slow
    def test_compare_inliners(self):
        out = _run_example("compare_inliners.py", ["pmd"])
        assert "steady cycles" in out
        assert "pmd" in out
