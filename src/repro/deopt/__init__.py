"""Deoptimization support: frame states, speculation log, resume driver.

Speculative devirtualization (guards and deopts emitted by
``repro.core.polymorphic``) needs a way to abandon compiled code
mid-method and fall back to the profiling interpreter without changing
observable behaviour.  This package holds the pieces shared between the
IR, the machine backend and the engine:

- :class:`FrameDescriptor` — compile-time description of one
  interpreter frame attached to IR nodes (which locals/stack slots the
  appended state inputs populate, and how to resume);
- :class:`FrameTemplate` — the lowered, register-level form stored in a
  :class:`~repro.backend.machine.MachineCode` deopt table;
- :class:`MaterializedFrame` / :class:`DeoptSignal` — runtime values
  produced when a guard fails;
- :class:`SpeculationLog` — records refuted speculations so
  recompilation never repeats a failed guess (and never loops);
- :func:`resume_frames` — re-enters the interpreter, innermost frame
  first, reconstructing the virtual call stack the inliner flattened.

Nothing here imports the backend or the engine, so both can depend on
this module without cycles.
"""

from repro.runtime.values import NULL


class FrameDescriptor:
    """Compile-time description of one interpreter frame.

    A node carrying frame state appends the live values as extra SSA
    inputs, grouped per frame (innermost first); each group holds the
    defined locals followed by the operand stack, bottom to top.  The
    descriptor records how to unpack one group:

    - ``method`` / ``bci``: where the frame resumes.  The *innermost*
      frame re-executes the instruction at ``bci`` (the speculated
      dispatch, none of whose effects have happened when a guard
      fails).  Every *outer* frame represents an inlined call that the
      inner frame has since completed: it pops ``argc`` operands,
      pushes the inner frame's return value when ``pushes_result``,
      and resumes at ``bci + 1``.
    - ``local_slots``: indices of the locals present in the state
      values (builder locals can be undefined mid-method; absent slots
      materialize as NULL rather than becoming null IR inputs).
    - ``n_stack``: operand-stack depth captured *including* the call's
      arguments, so re-executing the dispatch finds them in place.
    """

    __slots__ = ("method", "bci", "local_slots", "n_stack", "argc", "pushes_result")

    def __init__(self, method, bci, local_slots, n_stack, argc, pushes_result):
        self.method = method
        self.bci = bci
        self.local_slots = tuple(local_slots)
        self.n_stack = n_stack
        self.argc = argc
        self.pushes_result = pushes_result

    @property
    def n_values(self):
        """Number of state inputs this frame consumes."""
        return len(self.local_slots) + self.n_stack

    @property
    def site(self):
        """(qualified method name, bci) — the speculation site key."""
        return (self.method.qualified_name, self.bci)

    def __repr__(self):
        return "FrameDescriptor(%s@%d, locals=%r, stack=%d)" % (
            self.method.qualified_name,
            self.bci,
            self.local_slots,
            self.n_stack,
        )


class FrameTemplate:
    """Register-level frame layout stored in a machine deopt table."""

    __slots__ = ("method", "bci", "local_map", "stack_regs", "argc", "pushes_result")

    def __init__(self, method, bci, local_map, stack_regs, argc, pushes_result):
        self.method = method
        self.bci = bci
        self.local_map = tuple(local_map)  # ((local slot, register), ...)
        self.stack_regs = tuple(stack_regs)
        self.argc = argc
        self.pushes_result = pushes_result


class MaterializedFrame:
    """A concrete interpreter frame rebuilt from machine registers."""

    __slots__ = ("method", "bci", "locals", "stack", "argc", "pushes_result")

    def __init__(self, method, bci, locals_, stack, argc, pushes_result):
        self.method = method
        self.bci = bci
        self.locals = locals_
        self.stack = stack
        self.argc = argc
        self.pushes_result = pushes_result


def materialize_frames(templates, regs):
    """Turn a deopt-table entry into concrete frames (innermost first).

    Register ``-1`` is the "undefined on this path" sentinel: the slot
    materializes as NULL (verified bytecode never reads it).
    """
    frames = []
    for template in templates:
        locals_ = [NULL] * template.method.max_locals
        for slot, reg in template.local_map:
            locals_[slot] = NULL if reg < 0 else regs[reg]
        stack = [
            NULL if reg < 0 else regs[reg] for reg in template.stack_regs
        ]
        frames.append(
            MaterializedFrame(
                template.method,
                template.bci,
                locals_,
                stack,
                template.argc,
                template.pushes_result,
            )
        )
    return frames


class DeoptSignal(Exception):
    """Raised by the machine executor when a guard fails.

    Deliberately *not* a :class:`~repro.errors.VMError`: a signal that
    escapes the engine's dispatch boundary is a harness bug and should
    surface loudly, not be folded into trap handling.
    """

    def __init__(self, method, reason, site, frames):
        super().__init__("deopt in %s: %s" % (method.qualified_name, reason))
        self.method = method  # compiled root being abandoned
        self.reason = reason
        self.site = site  # (qualified name, bci) of the refuted guess
        self.frames = frames  # MaterializedFrames, innermost first


class SpeculationLog:
    """Failed speculations, keyed by (qualified method name, bci).

    The compiler consults the log before speculating; the engine
    records every taken deopt.  Because each deopt refutes at least one
    site and refuted sites are never retried, the deopt/recompile cycle
    terminates.  ``disable`` additionally blacklists a whole root
    method once it exceeds the engine's deopt budget.
    """

    def __init__(self):
        self._refuted = {}
        self._disabled = set()

    def record(self, site, reason):
        self._refuted[site] = reason

    def refuted(self, site):
        return site in self._refuted

    def disable(self, qualified_name):
        self._disabled.add(qualified_name)

    def is_disabled(self, qualified_name):
        return qualified_name in self._disabled

    def __len__(self):
        return len(self._refuted)

    def entries(self):
        return sorted(self._refuted.items())


class SpeculationPolicy:
    """Per-compilation speculation knobs handed to the inliner.

    ``typecheck`` additionally lets the graph builder speculate on
    profile-monomorphic INSTANCEOF/CHECKCAST operands (guard + Pi
    pinning the exact type); it rides on the same log and frame-state
    machinery, so it only has effect when ``enabled`` is also set.
    """

    __slots__ = ("enabled", "min_coverage", "max_targets", "log", "typecheck")

    def __init__(self, enabled, min_coverage, max_targets, log,
                 typecheck=False):
        self.enabled = enabled
        self.min_coverage = min_coverage
        self.max_targets = max_targets
        self.log = log
        self.typecheck = typecheck


def resume_frames(interpreter, frames):
    """Resume materialized frames in the interpreter, innermost first.

    The innermost frame re-executes the speculated dispatch at its bci;
    each outer frame then consumes the completed inner call — pop the
    arguments the inlined invoke would have popped, push its result,
    continue at the following instruction.  Returns the value of the
    outermost frame (the compiled root's return value).
    """
    value = None
    for index, frame in enumerate(frames):
        stack = list(frame.stack)
        if index == 0:
            pc = frame.bci
        else:
            del stack[len(stack) - frame.argc :]
            if frame.pushes_result:
                stack.append(value)
            pc = frame.bci + 1
        value = interpreter.resume(frame.method, list(frame.locals), stack, pc)
    return value
