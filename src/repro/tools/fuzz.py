"""Differential fuzzing campaigns from the command line.

Generates seeded random programs, runs each under the pure interpreter
and a matrix of JIT configurations, and reports any divergence after
bisecting the guilty pass and shrinking the program to a minimal
reproducer (see :mod:`repro.fuzz`).

Examples::

    python -m repro.tools.fuzz --seed 0 --runs 500
    python -m repro.tools.fuzz --seed 7 --runs 100 --time-budget 60
    python -m repro.tools.fuzz --configs jit,jit-incremental,no-rwe
    python -m repro.tools.fuzz --runs 200 --corpus-dir tests/corpus \\
        --report campaign.jsonl

Exit status is 0 for a clean campaign and 1 when any divergence was
found — CI runs a fixed-seed campaign and fails on regressions.
"""

import argparse
import sys

from repro.fuzz import run_campaign
from repro.fuzz.oracle import DEFAULT_ITERATIONS, oracle_config_names
from repro.obs import Observability


def _config_list(value):
    names = [name.strip() for name in value.split(",") if name.strip()]
    known = set(oracle_config_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise argparse.ArgumentTypeError(
            "unknown config(s) %s; choose from %s"
            % (", ".join(unknown), ", ".join(sorted(known)))
        )
    return names


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.fuzz", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="master seed; per-case seeds derive from it (default 0)",
    )
    parser.add_argument(
        "--runs", type=int, default=100,
        help="number of programs to generate (default 100)",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop the campaign after this many seconds",
    )
    parser.add_argument(
        "--configs", type=_config_list, default=None,
        help="comma-separated oracle configurations (default: all: %s)"
        % ", ".join(oracle_config_names()),
    )
    parser.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="write one .asm reproducer per divergence into DIR",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the campaign event stream to PATH as JSONL",
    )
    parser.add_argument(
        "--flight-out", default=None, metavar="PATH",
        help="write the flight-recorder ring (bounded recent campaign "
             "history) to PATH as JSONL after the run",
    )
    parser.add_argument(
        "--iterations", type=int, default=DEFAULT_ITERATIONS,
        help="iterations per executor per program (default %d)"
        % DEFAULT_ITERATIONS,
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report raw divergences without minimizing them",
    )
    args = parser.parse_args(argv)

    obs = Observability()
    result = run_campaign(
        master_seed=args.seed,
        runs=args.runs,
        time_budget=args.time_budget,
        config_names=args.configs,
        corpus_dir=args.corpus_dir,
        obs=obs,
        iterations=args.iterations,
        shrink=not args.no_shrink,
    )
    if args.report:
        obs.events.save(args.report)
    if args.flight_out:
        obs.flight.save(args.flight_out)

    print(
        "fuzz: seed=%d runs=%d/%d generator-errors=%d divergences=%d "
        "elapsed=%.1fs%s"
        % (
            result.master_seed,
            result.runs_executed,
            result.runs_requested,
            result.generator_errors,
            result.divergence_count,
            result.elapsed,
            " (stopped by time budget)" if result.stopped_by_budget else "",
        )
    )
    for finding in result.findings:
        print()
        print(
            "divergence: seed=%d kind=%s culprit=%s reverified=%s"
            % (
                finding.seed,
                finding.case_kind,
                finding.culprit,
                finding.reverified,
            )
        )
        print("  %s" % finding.divergence.describe())
        if finding.corpus_path:
            print("  reproducer: %s" % finding.corpus_path)
        else:
            print("  reproducer (pass --corpus-dir to save):")
            for line in finding.asm.splitlines():
                print("    %s" % line)
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
