"""Inlining-decision provenance: one tracer, one coherent stream.

This module folds the old ``repro.obs.tracebridge`` shim into the
flight-recorder path.  :class:`ProvenanceTracer` is a drop-in
:class:`~repro.core.tracing.InlineTracer` that mirrors every decision
the inliner makes, the moment it happens, into *both* halves of the
observability layer:

- the :class:`~repro.obs.events.EventLog`, as ``inline.<kind>`` point
  events nested inside the enclosing ``compile``/``inline`` span
  (exactly what the old ``SpanInlineTracer`` did), and
- the :class:`~repro.obs.flight.FlightRecorder`, as bounded ring
  records that survive after the event log would have grown unwieldy —
  the store behind ``repro.tools.explain``.

So ``repro.core.tracing`` and ``repro.obs`` emit **one** stream: the
tracer's structured :class:`~repro.core.tracing.TraceEvent` details
(method, callsite path and bci, Eq. 8 / Eq. 12 numbers, decline and
speculation reasons, budget state) are the single source of truth, and
every consumer — the stats CLI, the explain CLI, a saved JSONL
recording — sees the same records.

The compiler installs one automatically (via
``IncrementalInliner.attach_tracer``) when observability is enabled and
the policy has no tracer of its own; a user-supplied plain
:class:`InlineTracer` keeps working and is drained into the stream
after each inliner run instead (see :meth:`JitCompiler.compile`).
"""

from repro.core.tracing import InlineTracer
from repro.obs.flight import NULL_FLIGHT


def emit_trace_event(events, trace_event):
    """Forward one :class:`TraceEvent` into *events* as ``inline.<kind>``."""
    events.emit(
        "inline." + trace_event.kind,
        round=trace_event.round_index,
        **trace_event.detail
    )


def record_trace_event(flight, trace_event):
    """Forward one :class:`TraceEvent` into the flight ring."""
    flight.record(
        "inline." + trace_event.kind,
        round=trace_event.round_index,
        **trace_event.detail
    )


class ProvenanceTracer(InlineTracer):
    """An :class:`InlineTracer` that mirrors every decision into the
    event log and the flight recorder as it is made."""

    def __init__(self, events, flight=NULL_FLIGHT):
        InlineTracer.__init__(self)
        self.event_log = events
        self.flight = flight

    def _emit(self, kind, detail):
        event = InlineTracer._emit(self, kind, detail)
        emit_trace_event(self.event_log, event)
        if self.flight.enabled:
            record_trace_event(self.flight, event)
        return event


#: Backwards-compatible name for the event-log-only PR 1 bridge; the
#: class now also feeds the flight recorder when one is attached.
SpanInlineTracer = ProvenanceTracer
