"""The campaign driver behind ``python -m repro.tools.fuzz``.

One campaign = one master seed.  Per-case seeds are drawn from a
``random.Random(master_seed)`` stream, so ``--seed N --runs K`` is
exactly reproducible and any single case can be regenerated from its
logged seed alone.  For each case the driver:

1. generates and builds the program (generator bugs — programs that
   fail to build — are counted, logged and skipped, never fatal);
2. runs the differential oracle across the configuration matrix;
3. on divergence: bisects the pipeline to name the guilty pass,
   shrinks the case, re-verifies the divergence on the *reassembled*
   serialized text, and (optionally) writes the reproducer into the
   corpus directory.

Progress and findings stream through :mod:`repro.obs` events
(``fuzz.case`` / ``fuzz.divergence`` / ``fuzz.campaign``), so
``--report out.jsonl`` gives a machine-readable campaign record.
"""

import time

from repro.fuzz.bisect import bisect_passes
from repro.fuzz.generator import generate_case
from repro.fuzz.oracle import (
    DEFAULT_ITERATIONS,
    check_program,
    oracle_config_names,
)
from repro.fuzz.reduce import shrink_case
from repro.fuzz.serialize import load_corpus_text, program_to_asm
from repro.obs import NULL_OBS


class Finding:
    """One divergence, fully processed."""

    __slots__ = (
        "seed",
        "case_kind",
        "divergence",
        "culprit",
        "asm",
        "reverified",
        "shrink_checks",
        "corpus_path",
    )

    def __init__(self, seed, case_kind, divergence, culprit, asm,
                 reverified, shrink_checks, corpus_path=None):
        self.seed = seed
        self.case_kind = case_kind
        self.divergence = divergence
        self.culprit = culprit
        self.asm = asm
        self.reverified = reverified
        self.shrink_checks = shrink_checks
        self.corpus_path = corpus_path

    def as_dict(self):
        record = {
            "seed": self.seed,
            "case_kind": self.case_kind,
            "culprit": self.culprit,
            "reverified": self.reverified,
            "shrink_checks": self.shrink_checks,
            "corpus_path": self.corpus_path,
        }
        record.update(self.divergence.as_dict())
        return record


class CampaignResult:
    """Aggregate outcome of one fuzzing campaign."""

    __slots__ = (
        "master_seed",
        "runs_requested",
        "runs_executed",
        "generator_errors",
        "findings",
        "elapsed",
        "stopped_by_budget",
    )

    def __init__(self, master_seed, runs_requested):
        self.master_seed = master_seed
        self.runs_requested = runs_requested
        self.runs_executed = 0
        self.generator_errors = 0
        self.findings = []
        self.elapsed = 0.0
        self.stopped_by_budget = False

    @property
    def divergence_count(self):
        return len(self.findings)

    def as_dict(self):
        return {
            "master_seed": self.master_seed,
            "runs_requested": self.runs_requested,
            "runs_executed": self.runs_executed,
            "generator_errors": self.generator_errors,
            "divergences": self.divergence_count,
            "elapsed_seconds": round(self.elapsed, 3),
            "stopped_by_budget": self.stopped_by_budget,
        }


def _case_seeds(master_seed, runs):
    import random

    rng = random.Random(master_seed)
    return [rng.getrandbits(32) for _ in range(runs)]


def _slug(finding):
    kind = finding.divergence.kind
    return "fuzz_seed%d_%s_%s" % (
        finding.seed,
        finding.divergence.config.replace("-", "_"),
        kind,
    )


def _emit(obs, name, **attrs):
    """Mirror one campaign event into the event log *and* the flight
    ring, so a fuzz run leaves a bounded JSONL-dumpable recording."""
    obs.events.emit(name, **attrs)
    if obs.flight.enabled:
        obs.flight.record(name, **attrs)


def run_campaign(
    master_seed=0,
    runs=100,
    time_budget=None,
    config_names=None,
    corpus_dir=None,
    obs=None,
    iterations=DEFAULT_ITERATIONS,
    vm_seed=0x5EED,
    shrink=True,
):
    """Fuzz *runs* programs; returns a :class:`CampaignResult`.

    *time_budget* (seconds) stops the campaign early; *corpus_dir*
    (path or None) receives one ``.asm`` reproducer per finding.
    """
    obs = obs if obs is not None else NULL_OBS
    names = config_names if config_names is not None else oracle_config_names()
    result = CampaignResult(master_seed, runs)
    started = time.monotonic()

    for seed in _case_seeds(master_seed, runs):
        if time_budget is not None and time.monotonic() - started > time_budget:
            result.stopped_by_budget = True
            break
        try:
            case = generate_case(seed)
            program, entry = case.build()
        except Exception as error:
            result.generator_errors += 1
            _emit(
                obs, "fuzz.generator_error", seed=seed, error=repr(error)
            )
            continue
        result.runs_executed += 1
        divergence = check_program(program, entry, names, iterations, vm_seed)
        if divergence is None:
            _emit(
                obs, "fuzz.case", seed=seed, kind=case.kind, status="agree"
            )
            continue
        finding = _process_divergence(
            case, divergence, names, iterations, vm_seed, shrink, obs
        )
        result.findings.append(finding)
        if corpus_dir is not None:
            finding.corpus_path = _write_corpus(corpus_dir, finding)
        _emit(obs, "fuzz.divergence", **finding.as_dict())

    result.elapsed = time.monotonic() - started
    _emit(obs, "fuzz.campaign", **result.as_dict())
    return result


def _process_divergence(case, divergence, names, iterations, vm_seed, shrink, obs):
    _emit(
        obs,
        "fuzz.case",
        seed=case.seed,
        kind=case.kind,
        status="diverged",
        config=divergence.config,
        detail=divergence.describe(),
    )
    checks = 0
    if shrink:
        case, divergence, checks = shrink_case(
            case, divergence, iterations=iterations, vm_seed=vm_seed
        )
    program, entry = case.build()
    report = bisect_passes(
        program, entry, divergence.config, iterations, vm_seed
    )
    asm = program_to_asm(
        program,
        entry,
        notes=[
            "found-by: fuzz seed=%d kind=%s" % (case.seed, case.kind),
            "diverges: %s" % divergence.describe(),
            "culprit: %s" % report.culprit,
        ],
    )
    # The corpus must reproduce from its textual form alone.
    try:
        reloaded, reloaded_entry = load_corpus_text(asm)
        reverified = (
            check_program(reloaded, reloaded_entry, names, iterations, vm_seed)
            is not None
        )
    except Exception:
        reverified = False
    return Finding(
        case.seed,
        case.kind,
        divergence,
        report.culprit,
        asm,
        reverified,
        checks,
    )


def _write_corpus(corpus_dir, finding):
    import os

    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, _slug(finding) + ".asm")
    with open(path, "w") as handle:
        handle.write(finding.asm)
    return path
