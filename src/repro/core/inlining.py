"""The inlining phase (§III-D, Listing 5).

A queue initially holds the clusters addressable from the root (nodes
whose callsites live directly in the root graph). ``bestCluster``
repeatedly picks the cluster with the highest benefit-to-cost ratio;
``canInline`` applies the adaptive threshold (Eq. 12); and
``inlineCluster`` substitutes the cluster's bodies — parent before
child, so each child's callsite has already been transplanted into the
root graph when its turn comes. The cluster's front (descendants not in
the cluster) then enters the queue as future candidates.
"""

from repro.core.analysis import tuple_ratio
from repro.core.calltree import NodeKind
from repro.core.polymorphic import emit_typeswitch
from repro.core.thresholds import should_inline
from repro.core.tracing import REASON_BUDGET, REASON_THRESHOLD
from repro.core.trials import (
    apply_argument_stamps,
    discover_children,
    normalize_node,
)

_INLINEABLE = (NodeKind.CUTOFF, NodeKind.EXPANDED, NodeKind.POLYMORPHIC)


class InliningPhase:
    """One policy object, reused across rounds.

    Args:
        params: :class:`~repro.core.params.InlinerParams`.
        adaptive: use Eq. 12; when False, inlining continues while the
            root graph has fewer than ``fixed_ti`` nodes (the
            fixed-threshold baseline of Figure 7).
        fixed_ti: the fixed inlining threshold T_i.
    """

    def __init__(self, params, adaptive=True, fixed_ti=3000, tracer=None):
        self.params = params
        self.adaptive = adaptive
        self.fixed_ti = fixed_ti
        self.tracer = tracer

    # ------------------------------------------------------------------

    def run(self, root, context, report, cluster_roots):
        """Run one inlining phase; returns the number of clusters inlined."""
        queue = [
            node
            for node in cluster_roots
            if not node.check_deleted() and node.kind in _INLINEABLE
        ]
        inlined_clusters = 0
        while queue:
            best = max(queue, key=tuple_ratio)
            queue.remove(best)
            if best.check_deleted():
                continue
            if root.graph.node_count() >= self.params.max_root_size:
                if self.tracer is not None:
                    self.tracer.rejected(
                        best,
                        tuple_ratio(best),
                        float(self.params.max_root_size),
                        reason=REASON_BUDGET,
                    )
                break
            if not self._can_inline(best, root):
                if self.tracer is not None:
                    self.tracer.rejected(
                        best,
                        tuple_ratio(best),
                        self._threshold_value(best, root),
                        reason=(
                            REASON_THRESHOLD if self.adaptive else REASON_BUDGET
                        ),
                    )
                continue
            if self.tracer is not None:
                members = [
                    node.method.qualified_name
                    for node in best.subtree()
                    if (node is best or node.inlined_flag)
                    and node.method is not None
                ]
                self.tracer.cluster(best, members, tuple_ratio(best))
                self.tracer.inlined(
                    best, tuple_ratio(best), self._threshold_value(best, root)
                )
            boundary = self._inline_cluster(best, root, context, report)
            queue.extend(
                node
                for node in boundary
                if not node.check_deleted() and node.kind in _INLINEABLE
            )
            inlined_clusters += 1
        return inlined_clusters

    # ------------------------------------------------------------------

    def _can_inline(self, node, root):
        if node.method is not None and node.method.force_inline:
            return True
        if self.adaptive:
            # Eq. 12's |ir(n)| is the *candidate node's* size — the
            # threshold is "more forgiving towards small methods" (the
            # println example), even when the node roots a large
            # cluster whose aggregate benefit/cost is what ⟨tuple(n)⟩
            # measures.
            return should_inline(
                tuple_ratio(node),
                root.graph.node_count(),
                node.ir_size(),
                self.params,
            )
        return root.graph.node_count() <= self.fixed_ti

    def _threshold_value(self, node, root):
        from repro.core.thresholds import inline_threshold

        if self.adaptive:
            return inline_threshold(
                root.graph.node_count(), node.ir_size(), self.params
            )
        return float(self.fixed_ti)

    # ------------------------------------------------------------------

    def _inline_cluster(self, node, root, context, report):
        """Substitute *node* and every cluster member below it; returns
        the cluster's boundary (Listing 5: "the descendants of the
        cluster are put on the queue")."""
        boundary = []
        self._inline_one(node, root, context, report, boundary)
        return boundary

    def _inline_one(self, node, root, context, report, boundary):
        if node.check_deleted():
            return
        normalize_node(node, context, self.params)
        if node.kind == NodeKind.GENERIC:
            return
        if node.kind == NodeKind.POLYMORPHIC:
            self._inline_typeswitch(node, root, context, report, boundary)
            return
        if node.kind == NodeKind.CUTOFF:
            # Inlining an unexpanded cutoff: build (and lightly
            # specialize) its IR now, and register its callsites as
            # fresh call-tree children so later rounds keep exploring.
            from repro.core.trials import caller_method

            node.graph = context.build_callee_graph(
                node.method, caller=caller_method(node)
            )
            apply_argument_stamps(node, context.program)
            discover_children(node, context, self.params)
        graph = node.graph
        root.graph.inline_call(node.invoke, graph)
        node.graph = None
        node.kind = NodeKind.INLINED
        report.inline_count += 1
        report.inlined_methods.append(node.method.qualified_name)
        for child in node.children:
            self._inline_child(child, root, context, report, boundary)

    def _inline_typeswitch(self, node, root, context, report, boundary):
        targets = []
        for child in node.children:
            if child.kind in (NodeKind.CUTOFF, NodeKind.EXPANDED):
                targets.append(
                    (child.receiver_type, child.probability, child.method)
                )
        if not targets:
            node.kind = NodeKind.GENERIC
            return
        speculate, why = self._speculation_verdict(
            node.invoke, targets, root, context
        )
        if self.tracer is not None:
            invoke = node.invoke
            site = (
                "%s@%d" % invoke.frames[0].site
                if getattr(invoke, "frames", None)
                else None
            )
            self.tracer.speculation(
                node,
                speculate,
                why,
                sum(probability for _, probability, _ in targets),
                [t[0] for t in targets],
                site=site,
            )
        arms = emit_typeswitch(
            root.graph, node.invoke, targets, context.program,
            speculate=speculate,
        )
        node.kind = NodeKind.INLINED
        report.typeswitch_count += 1
        if speculate:
            report.speculation_count += 1
        if self.tracer is not None:
            self.tracer.typeswitch(node, [t[0] for t in targets])
        for child in node.children:
            arm = arms.get(child.receiver_type)
            if arm is None:
                child.mark_deleted()
                continue
            child.invoke = arm
            self._inline_child(child, root, context, report, boundary)

    def _should_speculate(self, invoke, targets, root, context):
        """Boolean form of :meth:`_speculation_verdict`."""
        return self._speculation_verdict(invoke, targets, root, context)[0]

    def _speculation_verdict(self, invoke, targets, root, context):
        """Decide whether this typeswitch may drop its virtual fallback.

        Requires an explicitly speculative compilation (frame state was
        captured at build time), a mono/bimorphic profile whose
        coverage clears the confidence threshold, and a speculation log
        with no record against this site — a previously refuted guess,
        or a root method that blew its deopt budget, compiles with the
        conservative fallback instead.

        Returns ``(speculate, reason)``; the reason names the gate a
        negative verdict failed (recorded in the decision provenance).
        """
        policy = getattr(context, "speculation", None)
        if policy is None or not policy.enabled:
            return False, "speculation-disabled"
        if not invoke.frames:
            return False, "no-frame-state"
        if invoke.megamorphic:
            return False, "megamorphic"
        if len(targets) > policy.max_targets:
            return False, "too-many-targets"
        coverage = sum(probability for _, probability, _ in targets)
        if coverage < policy.min_coverage:
            return False, "low-coverage"
        log = policy.log
        if log is not None:
            if log.refuted(invoke.frames[0].site):
                return False, "refuted-site"
            root_method = root.graph.method
            if root_method is not None and log.is_disabled(
                root_method.qualified_name
            ):
                return False, "deopt-budget"
        return True, "speculated"

    def _inline_child(self, child, root, context, report, boundary):
        if child.check_deleted():
            return
        if child.inlined_flag and child.kind in _INLINEABLE:
            self._inline_one(child, root, context, report, boundary)
        elif child.kind in _INLINEABLE:
            boundary.append(child)
