"""Method objects: signature, flags and a code array."""

from repro.errors import BytecodeError


class Method:
    """A single method: signature plus a list of :class:`Instr`.

    Methods are identified by ``(class name, method name)`` — the minij
    front end forbids overloading, which keeps every lookup table in the
    VM and the inliner simple. Instance methods receive their receiver in
    local slot 0 and their declared parameters in the following slots;
    static methods start parameters at slot 0.

    Attributes:
        name: the method name, unique within its class.
        param_types: declared parameter types (receiver *not* included).
        return_type: declared return type, possibly ``"void"``.
        code: list of instructions; empty for abstract methods.
        is_static: True for static methods (no receiver).
        is_abstract: True when the method has no body.
        max_locals: number of local slots the body uses.
        klass: back-reference to the owning :class:`ClassDef`
            (set during linking into a :class:`Program`).
    """

    __slots__ = (
        "name",
        "param_types",
        "return_type",
        "code",
        "is_static",
        "is_abstract",
        "max_locals",
        "klass",
        "force_inline",
        "never_inline",
        "is_native",
    )

    def __init__(
        self,
        name,
        param_types,
        return_type,
        code=None,
        is_static=False,
        is_abstract=False,
        max_locals=None,
        force_inline=False,
        never_inline=False,
        is_native=False,
    ):
        self.name = name
        self.param_types = list(param_types)
        self.return_type = return_type
        self.code = list(code) if code is not None else []
        self.is_static = is_static
        self.is_abstract = is_abstract
        self.klass = None
        self.force_inline = force_inline
        self.never_inline = never_inline
        self.is_native = is_native
        if is_native:
            self.never_inline = True
        if is_abstract and self.code:
            raise BytecodeError("abstract method %s has code" % name)
        base = self.num_receiver_slots() + len(self.param_types)
        self.max_locals = max_locals if max_locals is not None else base

    def num_receiver_slots(self):
        """1 for instance methods (the receiver), 0 for static methods."""
        return 0 if self.is_static else 1

    def num_arg_slots(self):
        """Total values popped from the caller's stack at an invoke."""
        return self.num_receiver_slots() + len(self.param_types)

    def returns_value(self):
        return self.return_type != "void"

    @property
    def qualified_name(self):
        owner = self.klass.name if self.klass is not None else "?"
        return "%s.%s" % (owner, self.name)

    def size(self):
        """Bytecode size — the unit of the paper's |ir(n)| before IR exists."""
        return len(self.code)

    def __repr__(self):
        kind = "static " if self.is_static else ""
        return "<Method %s%s(%s) -> %s, %d instrs>" % (
            kind,
            self.qualified_name,
            ", ".join(self.param_types),
            self.return_type,
            len(self.code),
        )
