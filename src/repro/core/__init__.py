"""The paper's contribution: the optimization-driven incremental
inline substitution algorithm.

Structure follows the paper:

- :mod:`params <repro.core.params>` — every tuned constant (§IV);
- :mod:`calltree <repro.core.calltree>` — the partial call tree with
  node kinds E/C/D/G/P and the subtree metrics S_irn, S_b, N_c (§III-A,
  Eq. 1–3);
- :mod:`priorities <repro.core.priorities>` — B_L, P_I, P, ψ, ψ_r
  (Eq. 4–7, 13, 14);
- :mod:`thresholds <repro.core.thresholds>` — the adaptive expansion
  and inlining thresholds (Eq. 8, 12);
- :mod:`trials <repro.core.trials>` — deep inlining trials (§IV);
- :mod:`expansion <repro.core.expansion>` — the expansion phase
  (§III-B, Listings 3–4);
- :mod:`analysis <repro.core.analysis>` — cost-benefit analysis with
  callsite clustering (§III-C, Listing 6, Eq. 9–11);
- :mod:`inlining <repro.core.inlining>` — the inlining phase (§III-D,
  Listing 5);
- :mod:`polymorphic <repro.core.polymorphic>` — typeswitch emission
  for P nodes (§IV, after Hölzle & Ungar);
- :mod:`inliner <repro.core.inliner>` — the top-level round loop
  (Listing 1) tying everything together.
"""

from repro.core.params import InlinerParams
from repro.core.calltree import CallNode, NodeKind
from repro.core.inliner import IncrementalInliner, InlineReport
from repro.core.tracing import InlineTracer

__all__ = [
    "InlinerParams",
    "CallNode",
    "NodeKind",
    "IncrementalInliner",
    "InlineReport",
    "InlineTracer",
]
