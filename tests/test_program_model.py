"""Tests for Program: hierarchy queries, resolution, CHA."""

import pytest

from repro.bytecode import Instr, Op
from repro.bytecode.klass import FieldDef
from repro.bytecode.method import Method
from repro.errors import BytecodeError, LinkError
from tests.helpers import fresh_program


def _hierarchy():
    """Animal <- Dog, Cat; interface Pet (Dog only); Cat overrides."""
    program = fresh_program()
    pet = program.define_class("Pet", is_interface=True)
    pet.add_method(Method("name", [], "int", is_abstract=True))
    animal = program.define_class("Animal")
    animal.add_field(FieldDef("age", "int"))
    animal.add_method(
        Method("speak", [], "int", code=[Instr(Op.CONST, 0), Instr(Op.RETV)])
    )
    dog = program.define_class("Dog", superclass="Animal", interfaces=["Pet"])
    dog.add_method(
        Method("name", [], "int", code=[Instr(Op.CONST, 7), Instr(Op.RETV)])
    )
    cat = program.define_class("Cat", superclass="Animal")
    cat.add_method(
        Method("speak", [], "int", code=[Instr(Op.CONST, 2), Instr(Op.RETV)])
    )
    return program


class TestSubtyping:
    def test_reflexive_and_object_top(self):
        program = _hierarchy()
        assert program.is_subtype("Dog", "Dog")
        assert program.is_subtype("Dog", "Object")
        assert program.is_subtype("int[]", "Object")

    def test_class_chain(self):
        program = _hierarchy()
        assert program.is_subtype("Dog", "Animal")
        assert not program.is_subtype("Animal", "Dog")

    def test_interface_subtyping(self):
        program = _hierarchy()
        assert program.is_subtype("Dog", "Pet")
        assert not program.is_subtype("Cat", "Pet")

    def test_array_covariance(self):
        program = _hierarchy()
        assert program.is_subtype("Dog[]", "Animal[]")
        assert not program.is_subtype("Animal[]", "Dog[]")
        assert not program.is_subtype("int[]", "Animal[]")
        assert program.is_subtype("int[]", "int[]")
        assert program.is_subtype("Dog[][]", "Animal[][]")

    def test_unknown_class_raises(self):
        program = _hierarchy()
        with pytest.raises(LinkError):
            program.is_subtype("Ghost", "Animal")


class TestResolution:
    def test_inherited_method(self):
        program = _hierarchy()
        method = program.resolve_method("Dog", "speak")
        assert method.klass.name == "Animal"

    def test_override_wins(self):
        program = _hierarchy()
        method = program.resolve_method("Cat", "speak")
        assert method.klass.name == "Cat"

    def test_missing_method_raises(self):
        program = _hierarchy()
        with pytest.raises(LinkError):
            program.resolve_method("Cat", "name")

    def test_field_lookup_walks_chain(self):
        program = _hierarchy()
        owner, field = program.lookup_field("Dog", "age")
        assert owner.name == "Animal"
        assert field.type == "int"

    def test_interface_default_method(self):
        program = fresh_program()
        iface = program.define_class("I", is_interface=True)
        iface.add_method(
            Method("d", [], "int", code=[Instr(Op.CONST, 9), Instr(Op.RETV)])
        )
        program.define_class("Impl", interfaces=["I"])
        method = program.resolve_method("Impl", "d")
        assert method.klass.name == "I"

    def test_class_override_beats_default(self):
        program = fresh_program()
        iface = program.define_class("I", is_interface=True)
        iface.add_method(
            Method("d", [], "int", code=[Instr(Op.CONST, 9), Instr(Op.RETV)])
        )
        impl = program.define_class("Impl", interfaces=["I"])
        impl.add_method(
            Method("d", [], "int", code=[Instr(Op.CONST, 1), Instr(Op.RETV)])
        )
        assert program.resolve_method("Impl", "d").klass.name == "Impl"


class TestCha:
    def test_concrete_subclasses(self):
        program = _hierarchy()
        assert program.concrete_subclasses("Animal") == ["Animal", "Cat", "Dog"]
        assert program.concrete_subclasses("Pet") == ["Dog"]

    def test_abstract_classes_excluded(self):
        program = fresh_program()
        program.define_class("Base", is_abstract=True)
        program.define_class("Only", superclass="Base")
        assert program.concrete_subclasses("Base") == ["Only"]

    def test_duplicate_class_rejected(self):
        program = _hierarchy()
        with pytest.raises(BytecodeError):
            program.define_class("Dog")

    def test_total_code_size(self):
        program = _hierarchy()
        assert program.total_code_size() == 6
