"""Bytecode → SSA graph construction.

The builder abstractly interprets the operand stack and local slots of a
method, block by block in reverse postorder, turning stack positions
into SSA node references. Join points get phis for every live slot;
trivial phis are cleaned up at the end (Cytron-free construction in the
style of Graal's bytecode parser / Braun et al.).

Profile data (branch probabilities, receiver histograms) is baked into
the graph at build time: ``If`` nodes carry their taken-probability and
``Invoke`` nodes carry their receiver-type snapshot, so everything
downstream — frequency annotation, the inliner's f(n), polymorphic
inlining — reads profiles from the IR rather than from the VM.
"""

from repro.bytecode import types as bt
from repro.bytecode.opcodes import (
    BINARY_INT_OPS,
    COMPARE_INT_OPS,
    COMPARE_REF_OPS,
    Op,
)
from repro.deopt import FrameDescriptor
from repro.errors import IRError
from repro.ir import nodes as n
from repro.ir import stamps as st
from repro.ir.graph import Graph


#: Guard reason for speculated type checks — surfaces in deopt records
#: and the ``deopt.reasons.typecheck`` metric.
REASON_TYPECHECK = "typecheck"


def build_graph(method, program, profiles=None, speculate=False,
                speculation=None, osr_bci=None, osr_stack_depth=0):
    """Build the SSA graph of *method*.

    Args:
        method: a concrete :class:`~repro.bytecode.method.Method`.
        program: the enclosing program (for signatures and field types).
        profiles: optional :class:`~repro.interp.profiles.ProfileStore`;
            when given, branch probabilities and receiver profiles are
            attached to the graph.
        speculate: capture interpreter frame state (locals, operand
            stack, bci) on every invoke so a later speculative
            typeswitch can deoptimize. Off by default — frame state
            pins values live, so non-speculative compiles skip it.
        speculation: optional :class:`~repro.deopt.SpeculationPolicy`.
            With ``speculation.typecheck`` set (and *speculate* on), a
            profile-monomorphic ``INSTANCEOF``/``CHECKCAST`` operand is
            pinned to its observed exact type with a guard + Pi, so the
            canonicalizer folds the check — and every dominated check —
            instead of keeping a runtime subtype test. Each considered
            site records a decision on ``graph.typecheck_decisions``.
        osr_bci: build an *OSR continuation* graph instead of a whole
            method: the graph's parameters become one slot per
            interpreter local (``method.max_locals``) followed by
            ``osr_stack_depth`` operand-stack slots, and the entry
            block jumps straight to the loop header at this bytecode
            index. Reachability is computed from the header, so code
            only reachable from the method prologue is never built.
        osr_stack_depth: operand-stack depth at the OSR entry (the
            interpreter passes the live frame's depth at transfer).
    """
    if method.is_abstract or method.is_native:
        raise IRError("cannot build IR for %s" % method.qualified_name)
    return _Builder(
        method, program, profiles, speculate, speculation,
        osr_bci, osr_stack_depth
    ).build()


class _BlockInfo:
    """Build-time bookkeeping for one bytecode-level basic block."""

    __slots__ = ("start", "end", "block", "entry_depth", "succ_pcs", "preds")

    def __init__(self, start):
        self.start = start
        self.end = None
        self.block = None
        self.entry_depth = None
        self.succ_pcs = []
        self.preds = []


class _Builder:
    def __init__(self, method, program, profiles, speculate=False,
                 speculation=None, osr_bci=None, osr_stack_depth=0):
        self.method = method
        self.program = program
        self.profile = profiles.maybe_of(method) if profiles else None
        self.speculate = speculate
        self.speculation = speculation
        # Type-check speculation needs frame capture (speculate), a
        # policy that asks for it, and a profile to consult.
        self.typespec = bool(
            speculate
            and speculation is not None
            and speculation.enabled
            and speculation.typecheck
            and self.profile is not None
        )
        self.osr_bci = osr_bci
        self.osr_stack_depth = osr_stack_depth
        self.osr_entry_block = None
        self.graph = Graph(method)
        #: Per-site type-check speculation decisions, for provenance
        #: (read by the compiler via getattr — graph copies drop it).
        self.graph.typecheck_decisions = []
        self.infos = {}
        self.order = []

    # ------------------------------------------------------------------

    def build(self):
        self._find_blocks()
        self._compute_entry_depths()
        self._create_ir_blocks()
        self._create_params()
        edge_states = {}
        for info in self.order:
            self._translate_block(info, edge_states)
        self._wire_phis(edge_states)
        self._fix_phi_stamps()
        self._remove_trivial_phis()
        return self.graph

    # ------------------------------------------------------------------
    # Block discovery
    # ------------------------------------------------------------------

    def _find_blocks(self):
        code = self.method.code
        leaders = {0}
        for pc, instr in enumerate(code):
            op = instr.op
            if op == Op.IF:
                leaders.add(instr.target)
                if pc + 1 < len(code):
                    leaders.add(pc + 1)
            elif op == Op.GOTO:
                leaders.add(instr.target)
                if pc + 1 < len(code):
                    leaders.add(pc + 1)
            elif op in (Op.RET, Op.RETV):
                if pc + 1 < len(code):
                    leaders.add(pc + 1)
        sorted_leaders = sorted(leaders)
        for index, start in enumerate(sorted_leaders):
            info = _BlockInfo(start)
            info.end = (
                sorted_leaders[index + 1]
                if index + 1 < len(sorted_leaders)
                else len(code)
            )
            self.infos[start] = info
        # Successor edges.
        for info in self.infos.values():
            last = code[info.end - 1]
            if last.op == Op.IF:
                info.succ_pcs = [last.target, info.end]
            elif last.op == Op.GOTO:
                info.succ_pcs = [last.target]
            elif last.op in (Op.RET, Op.RETV):
                info.succ_pcs = []
            else:
                info.succ_pcs = [info.end]
        # Reachability + RPO from the entry block.
        seen = set()
        postorder = []

        def visit(start):
            stack = [(start, iter(self.infos[start].succ_pcs))]
            seen.add(start)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.infos[succ].succ_pcs)))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(current)
                    stack.pop()

        entry_pc = 0 if self.osr_bci is None else self.osr_bci
        if entry_pc not in self.infos:
            raise IRError(
                "%s: OSR entry %d is not a block leader"
                % (self.method.qualified_name, entry_pc)
            )
        visit(entry_pc)
        self.order = [self.infos[pc] for pc in reversed(postorder)]
        # Predecessor lists restricted to reachable blocks.
        reachable = {info.start for info in self.order}
        for info in self.order:
            for succ_pc in info.succ_pcs:
                if succ_pc in reachable:
                    self.infos[succ_pc].preds.append(info)

    def _compute_entry_depths(self):
        """Depth of the operand stack at each reachable block entry."""
        from repro.bytecode.opcodes import stack_effect

        code = self.method.code
        if self.osr_bci is None:
            self.infos[0].entry_depth = 0
        else:
            # The interpreter hands over its live operand stack; the
            # loop header is entered with exactly that depth.
            self.infos[self.osr_bci].entry_depth = self.osr_stack_depth
        for info in self.order:
            depth = info.entry_depth
            if depth is None:
                raise IRError(
                    "%s: block at %d entered without a known stack depth"
                    % (self.method.qualified_name, info.start)
                )
            for pc in range(info.start, info.end):
                instr = code[pc]
                pops, pushes = stack_effect(instr.op, instr, self.program)
                depth = depth - pops + pushes
            for succ_pc in info.succ_pcs:
                succ = self.infos.get(succ_pc)
                if succ is None or succ.start not in {
                    i.start for i in self.order
                }:
                    continue
                if succ.entry_depth is None:
                    succ.entry_depth = depth
                elif succ.entry_depth != depth:
                    raise IRError(
                        "%s: inconsistent stack depth at %d"
                        % (self.method.qualified_name, succ_pc)
                    )

    def _create_ir_blocks(self):
        if self.osr_bci is not None:
            # The synthetic OSR entry block is created first so it is
            # ``graph.entry``: compiled OSR code starts by jumping to
            # the loop header with the transferred frame as parameters.
            self.osr_entry_block = self.graph.new_block()
        for info in self.order:
            info.block = self.graph.new_block()
        for info in self.order:
            info.block.preds = [p.block for p in info.preds]
        if self.osr_bci is not None:
            header = self.infos[self.osr_bci]
            header.block.preds = [self.osr_entry_block] + header.block.preds
            self.osr_entry_block.set_terminator(
                self.graph.register(n.GotoNode(header.block))
            )

    def _create_params(self):
        method = self.method
        if self.osr_bci is not None:
            # OSR state-mapping prologue: one parameter per interpreter
            # local slot, then one per live operand-stack slot. Slots
            # carry no declared types at a backedge, so every parameter
            # gets the ANY stamp — the loop-header phis (and trivial-phi
            # removal for untouched slots) recover precision where the
            # loop itself pins a value.
            for _ in range(method.max_locals + self.osr_stack_depth):
                self.graph.add_param(st.ANY_STAMP)
            return
        if not method.is_static:
            owner = method.klass.name if method.klass else bt.OBJECT
            self.graph.add_param(st.ref_stamp(owner, non_null=True))
        for ptype in method.param_types:
            self.graph.add_param(st.stamp_for_declared_type(ptype))

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def _entry_state(self, info, edge_states):
        """Entry (locals, stack) for a block; phis at joins."""
        num_locals = self.method.max_locals
        if self.osr_bci is not None and info.start == self.osr_bci:
            # OSR loop header: merge the transferred interpreter frame
            # (the graph parameters, arriving over the synthetic entry
            # edge at pred index 0) with the in-loop predecessors.
            block = info.block
            params = self.graph.params
            locals_ = []
            for slot in range(num_locals):
                phi = self.graph.register(
                    n.PhiNode(
                        [params[slot]] + [None] * len(info.preds),
                        st.BOTTOM_STAMP,
                    )
                )
                block.add_phi(phi)
                locals_.append(phi)
            stack = []
            for slot in range(info.entry_depth):
                phi = self.graph.register(
                    n.PhiNode(
                        [params[num_locals + slot]] + [None] * len(info.preds),
                        st.BOTTOM_STAMP,
                    )
                )
                block.add_phi(phi)
                stack.append(phi)
            return locals_, stack
        if info.start == 0 and not info.preds:
            locals_ = list(self.graph.params)
            locals_ += [None] * (num_locals - len(locals_))
            return locals_, []
        if len(info.preds) == 1 and not _is_backedge(info.preds[0], info):
            state = edge_states.get((info.preds[0].start, info.start))
            if state is None:
                raise IRError("predecessor state missing (irreducible CFG?)")
            locals_, stack = state
            return list(locals_), list(stack)
        # Join or loop header: a phi per local slot and stack slot.
        block = info.block
        locals_ = []
        for _ in range(num_locals):
            phi = self.graph.register(
                n.PhiNode([None] * len(info.preds), st.BOTTOM_STAMP)
            )
            block.add_phi(phi)
            locals_.append(phi)
        stack = []
        for _ in range(info.entry_depth):
            phi = self.graph.register(
                n.PhiNode([None] * len(info.preds), st.BOTTOM_STAMP)
            )
            block.add_phi(phi)
            stack.append(phi)
        return locals_, stack

    def _translate_block(self, info, edge_states):
        code = self.method.code
        graph = self.graph
        program = self.program
        block = info.block
        locals_, stack = self._entry_state(info, edge_states)

        def emit(node):
            graph.register(node)
            block.append(node)
            return node

        pc = info.start
        terminated = False
        while pc < info.end:
            instr = code[pc]
            op = instr.op
            if op == Op.CONST:
                stack.append(emit(n.ConstIntNode(instr.args[0])))
            elif op == Op.NULL:
                stack.append(emit(n.ConstNullNode()))
            elif op == Op.POP:
                stack.pop()
            elif op == Op.DUP:
                stack.append(stack[-1])
            elif op == Op.LOAD:
                value = locals_[instr.args[0]]
                if value is None:
                    raise IRError(
                        "%s@%d: load of undefined local"
                        % (self.method.qualified_name, pc)
                    )
                stack.append(value)
            elif op == Op.STORE:
                locals_[instr.args[0]] = stack.pop()
            elif op in BINARY_INT_OPS:
                b = stack.pop()
                a = stack.pop()
                stack.append(emit(n.BinOpNode(op, a, b)))
            elif op == Op.NEG:
                stack.append(emit(n.NegNode(stack.pop())))
            elif op in COMPARE_INT_OPS or op in COMPARE_REF_OPS:
                b = stack.pop()
                a = stack.pop()
                stack.append(emit(n.CompareNode(op, a, b)))
            elif op == Op.NEW:
                stack.append(emit(n.NewNode(instr.args[0])))
            elif op == Op.NEWARRAY:
                length = stack.pop()
                stack.append(emit(n.NewArrayNode(instr.args[0], length)))
            elif op == Op.ALOAD:
                index = stack.pop()
                array = stack.pop()
                stack.append(
                    emit(n.ArrayLoadNode(array, index, self._elem_stamp(array, instr)))
                )
            elif op == Op.ASTORE:
                value = stack.pop()
                index = stack.pop()
                array = stack.pop()
                emit(n.ArrayStoreNode(array, index, value))
            elif op == Op.ARRAYLEN:
                stack.append(emit(n.ArrayLengthNode(stack.pop())))
            elif op == Op.GETFIELD:
                cname, fname = instr.args
                _, field = program.lookup_field(cname, fname)
                obj = stack.pop()
                stack.append(
                    emit(
                        n.LoadFieldNode(
                            obj, cname, fname, st.stamp_for_declared_type(field.type)
                        )
                    )
                )
            elif op == Op.PUTFIELD:
                cname, fname = instr.args
                value = stack.pop()
                obj = stack.pop()
                emit(n.StoreFieldNode(obj, cname, fname, value))
            elif op == Op.GETSTATIC:
                cname, fname = instr.args
                _, field = program.lookup_field(cname, fname)
                stack.append(
                    emit(
                        n.LoadStaticNode(
                            cname, fname, st.stamp_for_declared_type(field.type)
                        )
                    )
                )
            elif op == Op.PUTSTATIC:
                cname, fname = instr.args
                emit(n.StoreStaticNode(cname, fname, stack.pop()))
            elif op == Op.INSTANCEOF:
                if self.typespec:
                    self._speculate_typecheck(
                        "instanceof", instr.args[0], pc, stack, locals_, emit
                    )
                stack.append(emit(n.InstanceOfNode(stack.pop(), instr.args[0])))
            elif op == Op.CHECKCAST:
                if self.typespec:
                    self._speculate_typecheck(
                        "checkcast", instr.args[0], pc, stack, locals_, emit
                    )
                value = stack.pop()
                stack.append(emit(n.CheckCastNode(value, instr.args[0], program)))
            elif op in (
                Op.INVOKESTATIC,
                Op.INVOKEVIRTUAL,
                Op.INVOKEINTERFACE,
                Op.INVOKESPECIAL,
            ):
                stack_result = self._translate_invoke(
                    instr, pc, stack, locals_, emit
                )
                if stack_result is not None:
                    stack.append(stack_result)
            elif op == Op.IF:
                condition = stack.pop()
                probability = 0.5
                if self.profile is not None:
                    branch = self.profile.branches.get(pc)
                    if branch is not None:
                        probability = branch.probability()
                true_block = self.infos[instr.target].block
                false_block = self.infos[info.end].block
                terminator = n.IfNode(condition, true_block, false_block, probability)
                graph.register(terminator)
                block.set_terminator(terminator)
                terminated = True
            elif op == Op.GOTO:
                target = self.infos[instr.target].block
                terminator = graph.register(n.GotoNode(target))
                block.set_terminator(terminator)
                terminated = True
            elif op == Op.RET:
                block.set_terminator(graph.register(n.ReturnNode()))
                terminated = True
            elif op == Op.RETV:
                block.set_terminator(graph.register(n.ReturnNode(stack.pop())))
                terminated = True
            else:
                raise IRError("unhandled opcode %s" % op)
            pc += 1

        if not terminated:
            # Fall-through into the next block.
            target = self.infos[info.end].block
            block.set_terminator(graph.register(n.GotoNode(target)))

        for succ_pc in info.succ_pcs:
            edge_states[(info.start, succ_pc)] = (list(locals_), list(stack))

    def _speculate_typecheck(self, kind, check_type, pc, stack, locals_, emit):
        """Pin the type-check operand (``stack[-1]``) to its profiled type.

        When the profile is monomorphic (single non-null, non-array
        operand type) and the site is not refuted, emits an exact-type
        check + guard + Pi before the type-check node, and substitutes
        the Pi for the operand everywhere in the abstract state — that
        substitution is what lets the canonicalizer fold this check and
        every dominated check on the same value. Sites the profile
        disqualifies record a negative decision instead; sites that
        never executed record nothing.
        """
        cell = self.profile.typechecks.get(pc)
        if cell is None or cell.total == 0:
            return
        value = stack[-1]
        stamp = value.stamp

        def decide(observed, speculate, reason):
            self.graph.typecheck_decisions.append({
                "check": kind,
                "method": self.method.qualified_name,
                "bci": pc,
                "type": check_type,
                "observed": observed,
                "speculate": speculate,
                "reason": reason,
                "site": "%s@%d" % (self.method.qualified_name, pc),
            })

        if cell.is_megamorphic:
            return decide(None, False, "megamorphic")
        if cell.nulls > 0:
            return decide(None, False, "nulls-observed")
        types = cell.observed_types()
        if len(types) != 1:
            return decide(None, False, "polymorphic-operand")
        observed = types[0][0]
        if observed.endswith("[]"):
            # Exact-type checks compare object class names (M_ISEXACT
            # and the py tier both test ObjRef identity); guarding an
            # array operand would refute on every execution.
            return decide(observed, False, "array-operand")
        if kind == "checkcast" and not self.program.is_subtype(
            observed, check_type
        ):
            # The profiled type fails the cast: the interpreter traps
            # here, and a guard would just deopt into that trap.
            return decide(observed, False, "failing-cast")
        if stamp.kind == st.Stamp.REF and stamp.exact and stamp.non_null:
            # The stamp already decides the check; the canonicalizer
            # folds it without a guard.
            return decide(observed, False, "stamp-precise")
        log = self.speculation.log
        if log is not None:
            if log.refuted((self.method.qualified_name, pc)):
                return decide(observed, False, "refuted-site")
            if log.is_disabled(self.method.qualified_name):
                return decide(observed, False, "deopt-budget")
        decide(observed, True, "typecheck-speculated")
        # Frame state is captured with the operand still on the stack:
        # a refuted guard re-executes this very type check in the
        # interpreter (innermost frame, so argc/pushes_result are
        # irrelevant and zero).
        local_slots = [i for i, v in enumerate(locals_) if v is not None]
        values = [locals_[i] for i in local_slots] + list(stack)
        descriptor = FrameDescriptor(
            self.method, pc, local_slots, len(stack), 0, False
        )
        check = emit(n.InstanceOfNode(value, observed, exact=True))
        emit(
            n.GuardNode(
                check, REASON_TYPECHECK, frames=[descriptor], state=values
            )
        )
        pinned = stamp.join(
            st.ref_stamp(observed, exact=True, non_null=True), self.program
        )
        if pinned.kind == st.Stamp.BOTTOM:
            pinned = st.ref_stamp(observed, exact=True, non_null=True)
        pi = emit(n.PiNode(value, pinned))
        for index, slot in enumerate(locals_):
            if slot is value:
                locals_[index] = pi
        for index, slot in enumerate(stack):
            if slot is value:
                stack[index] = pi

    def _translate_invoke(self, instr, pc, stack, locals_, emit):
        program = self.program
        op = instr.op
        cname, mname = instr.args
        callee = program.lookup_method(cname, mname)
        argc = len(callee.param_types) + (0 if op == Op.INVOKESTATIC else 1)
        frame_state = None
        if self.speculate:
            # Snapshot the frame *before* the arguments are popped: a
            # deopt re-executes this invoke in the interpreter, which
            # expects them back on the operand stack. Undefined locals
            # (None) are omitted via local_slots rather than becoming
            # null IR inputs.
            local_slots = [i for i, v in enumerate(locals_) if v is not None]
            values = [locals_[i] for i in local_slots] + list(stack)
            descriptor = FrameDescriptor(
                self.method,
                pc,
                local_slots,
                len(stack),
                argc,
                callee.returns_value(),
            )
            frame_state = (values, [descriptor])
        args = stack[len(stack) - argc :] if argc else []
        del stack[len(stack) - argc :]
        return_stamp = st.stamp_for_declared_type(callee.return_type)
        receiver_types = []
        megamorphic = False
        if op == Op.INVOKESTATIC:
            kind, target = "static", callee
        elif op == Op.INVOKESPECIAL:
            kind, target = "special", program.resolve_method(cname, mname)
        else:
            kind = "virtual" if op == Op.INVOKEVIRTUAL else "interface"
            target = None
            if self.profile is not None:
                receiver = self.profile.receivers.get(pc)
                if receiver is not None:
                    receiver_types = receiver.observed_types()
                    megamorphic = receiver.is_megamorphic
        invoke = n.InvokeNode(
            kind,
            cname,
            mname,
            args,
            return_stamp,
            target=target,
            receiver_types=receiver_types,
            megamorphic=megamorphic,
            bci=pc,
        )
        if frame_state is not None:
            invoke.append_frame_state(*frame_state)
        emit(invoke)
        return invoke if callee.returns_value() else None

    def _elem_stamp(self, array, instr):
        """Best-effort stamp for an array load."""
        array_stamp = array.stamp
        if (
            array_stamp.kind == st.Stamp.REF
            and array_stamp.type_name is not None
            and array_stamp.type_name.endswith("[]")
        ):
            return st.stamp_for_declared_type(bt.elem_of(array_stamp.type_name))
        if instr.args:
            return st.stamp_for_declared_type(instr.args[0])
        return st.ANY_STAMP

    # ------------------------------------------------------------------
    # Phi wiring and cleanup
    # ------------------------------------------------------------------

    def _wire_phis(self, edge_states):
        num_locals = self.method.max_locals
        for info in self.order:
            block = info.block
            if not block.phis:
                continue
            # At the OSR header, pred index 0 is the synthetic entry
            # edge whose phi inputs (the parameters) were wired at
            # creation; bytecode predecessors start at index 1.
            offset = (
                1
                if self.osr_bci is not None and info.start == self.osr_bci
                else 0
            )
            for pred_index, pred in enumerate(info.preds):
                state = edge_states.get((pred.start, info.start))
                if state is None:
                    raise IRError("missing edge state for phi wiring")
                locals_, stack = state
                slots = locals_ + stack
                if len(block.phis) > num_locals + len(stack):
                    raise IRError("phi/slot mismatch")
                for phi_index, phi in enumerate(block.phis):
                    value = slots[phi_index] if phi_index < len(slots) else None
                    phi.set_input(pred_index + offset, value)

    def _fix_phi_stamps(self):
        """Iterate meet over phi stamps until they stabilize."""
        program = self.program
        for _ in range(10):
            changed = False
            for block in self.graph.blocks:
                for phi in block.phis:
                    old = phi.stamp
                    phi.recompute_stamp(program)
                    if phi.stamp != old:
                        changed = True
            if not changed:
                return

    def _remove_trivial_phis(self):
        """Replace phis that merge a single distinct value (or only
        themselves), and drop dead never-used phis for untouched slots."""
        graph = self.graph
        changed = True
        while changed:
            changed = False
            for block in graph.blocks:
                for phi in list(block.phis):
                    distinct = {i for i in phi.inputs if i is not None and i is not phi}
                    if len(distinct) == 1:
                        replacement = distinct.pop()
                        graph.replace_uses(phi, replacement)
                        phi.clear_inputs()
                        block.phis.remove(phi)
                        changed = True
                    elif not phi.uses:
                        phi.clear_inputs()
                        block.phis.remove(phi)
                        changed = True


def _is_backedge(pred, succ):
    """Conservative backedge test on bytecode order."""
    return pred.start >= succ.start
