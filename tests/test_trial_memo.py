"""The inlining-trial memo: result-identical, wall-clock only.

``JitConfig.enable_trial_memo`` caches expansion/retrial results within
one compilation, keyed by (method, caller context, argument-stamp
signature). Profiles are frozen for the duration of a synchronous
compilation, so equal keys must produce bit-identical graphs — which
makes the memo's one observable guarantee testable: the engine's cycle
model, values and compilation outcomes never change when it is on.
"""

from repro.baselines import tuned_inliner
from repro.core.trials import TrialMemo
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from tests.helpers import shapes_program


def _run(program, memo_on, iterations=8, hot_threshold=5):
    engine = Engine(
        program,
        JitConfig(hot_threshold=hot_threshold, enable_trial_memo=memo_on),
        inliner=tuned_inliner(0.1),
        seed=0x5EED,
    )
    curve = []
    value = None
    for _ in range(iterations):
        result = engine.run_iteration("Main", "run")
        curve.append(result.total_cycles)
        value = result.value
    return value, curve, engine


def test_cycle_model_identical_memo_on_off():
    program = shapes_program()
    value_off, curve_off, engine_off = _run(program, memo_on=False)
    value_on, curve_on, engine_on = _run(program, memo_on=True)
    assert value_on == value_off
    assert curve_on == curve_off
    assert engine_on.compilation_count == engine_off.compilation_count
    assert (
        engine_on.code_cache.total_size == engine_off.code_cache.total_size
    )


def test_memo_attached_only_when_enabled():
    program = shapes_program()
    _, _, engine_on = _run(program, memo_on=True, iterations=1)
    assert isinstance(engine_on.compiler.context.trial_memo, TrialMemo)
    _, _, engine_off = _run(program, memo_on=False, iterations=1)
    assert engine_off.compiler.context.trial_memo is None


def test_memo_hits_on_repetitive_workload():
    # jython's call tree revisits the same (callee, stamp-signature)
    # specializations; the memo must convert those into hits while the
    # cycle model stays identical.
    from repro.bench.suite import get_benchmark

    program = get_benchmark("jython").load()
    value_off, curve_off, _ = _run(
        program, memo_on=False, iterations=4, hot_threshold=2
    )
    value_on, curve_on, engine = _run(
        program, memo_on=True, iterations=4, hot_threshold=2
    )
    memo = engine.compiler.context.trial_memo
    assert memo.hits > 0
    assert value_on == value_off
    assert curve_on == curve_off


def test_reset_clears_tables_keeps_counters():
    memo = TrialMemo(context_sensitive=False)
    memo._expansions["k"] = object()
    memo._retrials["k"] = object()
    memo.hits = 3
    memo.misses = 5
    memo.reset()
    assert not memo._expansions
    assert not memo._retrials
    assert not memo._lineage
    assert memo.hits == 3
    assert memo.misses == 5


def test_memo_metrics_exported():
    from repro.obs import Observability

    program = shapes_program()
    obs = Observability()
    engine = Engine(
        program,
        JitConfig(hot_threshold=5, enable_trial_memo=True),
        inliner=tuned_inliner(0.1),
        seed=0x5EED,
        obs=obs,
    )
    for _ in range(8):
        engine.run_iteration("Main", "run")
    memo = engine.compiler.context.trial_memo
    snapshot = obs.metrics.snapshot()
    assert snapshot["inline.trial_memo.hits"]["value"] == memo.hits
    assert snapshot["inline.trial_memo.misses"]["value"] == memo.misses
