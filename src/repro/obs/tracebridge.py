"""Bridge from the inliner's :class:`InlineTracer` into the event stream.

The inliner already has a first-class tracing surface
(:mod:`repro.core.tracing`) that the expansion/inlining phases call
into. :class:`SpanInlineTracer` is a drop-in tracer that *also*
forwards every decision to an :class:`~repro.obs.events.EventLog` as an
``inline.<kind>`` event the moment it happens — so inlining decisions
appear chronologically inside the enclosing ``compile``/``inline``
span, interleaved with the optimization pipeline's pass events.

The compiler installs one automatically (via
``IncrementalInliner.attach_tracer``) when observability is enabled and
the policy has no tracer of its own; a user-supplied plain
:class:`InlineTracer` keeps working and is drained into the stream
after each inliner run instead (see :meth:`JitCompiler.compile`).
"""

from repro.core.tracing import InlineTracer, TraceEvent


def emit_trace_event(events, trace_event):
    """Forward one :class:`TraceEvent` into *events* as ``inline.<kind>``."""
    events.emit(
        "inline." + trace_event.kind,
        round=trace_event.round_index,
        **trace_event.detail
    )


class SpanInlineTracer(InlineTracer):
    """An :class:`InlineTracer` that mirrors every event into an event log."""

    def __init__(self, events):
        InlineTracer.__init__(self)
        self.event_log = events

    def _emit(self, kind, detail):
        event = TraceEvent(kind, detail, self.round_index)
        self.events.append(event)
        emit_trace_event(self.event_log, event)
