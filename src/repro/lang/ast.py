"""AST node definitions for minij.

Plain data classes; the resolver annotates them in place (``.type`` on
expressions, symbol links on names) and the code generator walks them.
Every node carries ``line``/``column`` for diagnostics.
"""


class Node:
    __slots__ = ("line", "column")

    def __init__(self, line=0, column=0):
        self.line = line
        self.column = column


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Module(Node):
    """A compilation unit: a list of class/trait/object declarations."""

    __slots__ = ("decls",)

    def __init__(self, decls):
        super().__init__()
        self.decls = decls


class ClassDecl(Node):
    """``class``/``trait``/``object`` declaration."""

    __slots__ = ("kind", "name", "superclass", "interfaces", "fields", "methods")

    def __init__(self, kind, name, superclass, interfaces, fields, methods, **pos):
        super().__init__(**pos)
        self.kind = kind  # "class" | "trait" | "object"
        self.name = name
        self.superclass = superclass
        self.interfaces = interfaces
        self.fields = fields
        self.methods = methods


class FieldDecl(Node):
    __slots__ = ("name", "type", "is_static")

    def __init__(self, name, type, is_static, **pos):
        super().__init__(**pos)
        self.name = name
        self.type = type
        self.is_static = is_static


class MethodDecl(Node):
    __slots__ = (
        "name",
        "params",
        "return_type",
        "body",
        "is_static",
        "is_abstract",
        "annotations",
        "owner",
    )

    def __init__(
        self, name, params, return_type, body, is_static, annotations=(), **pos
    ):
        super().__init__(**pos)
        self.name = name
        self.params = params  # list of (name, type)
        self.return_type = return_type
        self.body = body  # BlockStmt or None (abstract)
        self.is_static = is_static
        self.is_abstract = body is None
        self.annotations = list(annotations)
        self.owner = None  # ClassDecl, set by the resolver


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class BlockStmt(Node):
    __slots__ = ("stmts",)

    def __init__(self, stmts, **pos):
        super().__init__(**pos)
        self.stmts = stmts


class VarStmt(Node):
    __slots__ = ("name", "type", "init", "slot")

    def __init__(self, name, type, init, **pos):
        super().__init__(**pos)
        self.name = name
        self.type = type
        self.init = init
        self.slot = None


class AssignStmt(Node):
    """``target = value`` where target is a name, field or index expr."""

    __slots__ = ("target", "value")

    def __init__(self, target, value, **pos):
        super().__init__(**pos)
        self.target = target
        self.value = value


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, **pos):
        super().__init__(**pos)
        self.expr = expr


class IfStmt(Node):
    __slots__ = ("condition", "then_body", "else_body")

    def __init__(self, condition, then_body, else_body, **pos):
        super().__init__(**pos)
        self.condition = condition
        self.then_body = then_body
        self.else_body = else_body


class WhileStmt(Node):
    __slots__ = ("condition", "body")

    def __init__(self, condition, body, **pos):
        super().__init__(**pos)
        self.condition = condition
        self.body = body


class ReturnStmt(Node):
    __slots__ = ("value",)

    def __init__(self, value, **pos):
        super().__init__(**pos)
        self.value = value


# ---------------------------------------------------------------------------
# Expressions (resolver sets ``.type`` on each)
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ("type",)

    def __init__(self, **pos):
        super().__init__(**pos)
        self.type = None


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, **pos):
        super().__init__(**pos)
        self.value = value


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, **pos):
        super().__init__(**pos)
        self.value = value


class NullLit(Expr):
    __slots__ = ()


class ThisExpr(Expr):
    __slots__ = ()


class NameExpr(Expr):
    """An identifier: local, parameter, field of ``this``, or class name
    (in static-call position); resolution recorded in ``binding``."""

    __slots__ = ("name", "binding", "slot")

    def __init__(self, name, **pos):
        super().__init__(**pos)
        self.name = name
        self.binding = None  # "local" | "field" | "static-field" | "class" | "capture"
        self.slot = None


class FieldExpr(Expr):
    """``target.name`` — field read (or ``.length`` on arrays, or a
    static field when target names a class)."""

    __slots__ = ("target", "name", "binding", "owner")

    def __init__(self, target, name, **pos):
        super().__init__(**pos)
        self.target = target
        self.name = name
        self.binding = None  # "field" | "static-field" | "arraylen"
        self.owner = None


class IndexExpr(Expr):
    __slots__ = ("target", "index")

    def __init__(self, target, index, **pos):
        super().__init__(**pos)
        self.target = target
        self.index = index


class CallExpr(Expr):
    """``target.name(args)`` / ``name(args)`` / ``super.name(args)``.

    Resolution (set by the resolver):
        dispatch: "virtual" | "interface" | "static" | "special" |
            "builtin"
        owner: class name carrying the method.
    """

    __slots__ = ("target", "name", "args", "dispatch", "owner")

    def __init__(self, target, name, args, **pos):
        super().__init__(**pos)
        self.target = target  # Expr, or None for bare calls
        self.name = name
        self.args = args
        self.dispatch = None
        self.owner = None


class SuperExpr(Expr):
    """Only valid as the target of a call."""

    __slots__ = ()


class NewExpr(Expr):
    __slots__ = ("class_name", "args", "has_ctor")

    def __init__(self, class_name, args, **pos):
        super().__init__(**pos)
        self.class_name = class_name
        self.args = args
        self.has_ctor = False


class NewArrayExpr(Expr):
    __slots__ = ("elem_type", "length")

    def __init__(self, elem_type, length, **pos):
        super().__init__(**pos)
        self.elem_type = elem_type
        self.length = length


class UnaryExpr(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, **pos):
        super().__init__(**pos)
        self.op = op
        self.operand = operand


class BinaryExpr(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right, **pos):
        super().__init__(**pos)
        self.op = op
        self.left = left
        self.right = right


class IsExpr(Expr):
    __slots__ = ("operand", "type_name")

    def __init__(self, operand, type_name, **pos):
        super().__init__(**pos)
        self.operand = operand
        self.type_name = type_name


class AsExpr(Expr):
    __slots__ = ("operand", "type_name")

    def __init__(self, operand, type_name, **pos):
        super().__init__(**pos)
        self.operand = operand
        self.type_name = type_name


class LambdaExpr(Expr):
    """``fun (params): ret => expr`` or ``fun (params): ret { body }``.

    The resolver fills ``interface`` (the stdlib function trait it
    implements), ``captures`` (outer locals read inside, in a stable
    order) and ``captures_this``; the code generator then emits the
    anonymous class.
    """

    __slots__ = (
        "params",
        "return_type",
        "body",
        "interface",
        "captures",
        "captures_this",
        "class_name",
        "_owner_class",
    )

    def __init__(self, params, return_type, body, **pos):
        super().__init__(**pos)
        self.params = params
        self.return_type = return_type
        self.body = body
        self.interface = None
        self.captures = []
        self.captures_this = False
        self.class_name = None
        self._owner_class = "Object"  # set at the creation site
