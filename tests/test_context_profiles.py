"""Tests for the context-sensitive profile extension (§VI future work).

The scenario that motivates it: a shared helper called from two
callers, each passing a *different* receiver type. The aggregate
profile at the helper's callsite is bimorphic 50/50 — type profile
pollution — while each caller's context profile is monomorphic. In
context-sensitive mode the inliner specializes each inlined copy with
its caller's clean profile.
"""

from repro.baselines import tuned_inliner
from repro.interp import Interpreter, ProfileStore
from repro.jit import Engine, JitConfig
from repro.lang import compile_source
from repro.runtime import VMState

POLLUTED = """
trait Op { def apply(x: int): int; }
class Inc implements Op { def apply(x: int): int { return x + 1; } }
class Dbl implements Op { def apply(x: int): int { return x * 2; } }
class Neg implements Op { def apply(x: int): int { return 0 - x; } }

object Main {
  // Receivers come from Op-typed statics, so argument-stamp
  // specialization cannot prove their types: only profiles can.
  static var incOp: Op;
  static var dblOp: Op;
  static var negOp: Op;

  // The shared helper whose aggregate profile gets polluted.
  def helper(op: Op, x: int): int { return op.apply(x); }

  def viaInc(n: int): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < n) { acc = acc + Main.helper(Main.incOp, i); i = i + 1; }
    return acc;
  }
  def viaDbl(n: int): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < n) { acc = acc + Main.helper(Main.dblOp, i); i = i + 1; }
    return acc;
  }
  def run(): int {
    if (Main.incOp == null) {
      Main.incOp = new Inc;
      Main.dblOp = new Dbl;
      Main.negOp = new Neg;
    }
    return Main.viaInc(60) * 3 + Main.viaDbl(60);
  }
}
"""


def _profiled(context_sensitive):
    program = compile_source(POLLUTED)
    vm = VMState(program)
    store = ProfileStore(context_sensitive=context_sensitive)
    interp = Interpreter(vm, profiles=store)
    result = interp.call_static("Main", "run")
    return program, store, result


class TestProfileStore:
    def test_aggregate_profile_is_polluted(self):
        program, store, _ = _profiled(context_sensitive=True)
        helper = program.lookup_method("Main", "helper")
        aggregate = store.maybe_of(helper)
        (receiver,) = aggregate.receivers.values()
        types = dict(receiver.observed_types())
        assert set(types) == {"Inc", "Dbl"}
        assert abs(types["Inc"] - 0.5) < 0.01

    def test_context_profiles_are_clean(self):
        program, store, _ = _profiled(context_sensitive=True)
        helper = program.lookup_method("Main", "helper")
        via_inc = program.lookup_method("Main", "viaInc")
        via_dbl = program.lookup_method("Main", "viaDbl")
        inc_profile = store.context_profile(helper, via_inc)
        dbl_profile = store.context_profile(helper, via_dbl)
        (inc_receiver,) = inc_profile.receivers.values()
        (dbl_receiver,) = dbl_profile.receivers.values()
        assert inc_receiver.monomorphic_type() == "Inc"
        assert dbl_receiver.monomorphic_type() == "Dbl"

    def test_disabled_mode_records_nothing_extra(self):
        program, store, _ = _profiled(context_sensitive=False)
        helper = program.lookup_method("Main", "helper")
        via_inc = program.lookup_method("Main", "viaInc")
        assert store.context_profile(helper, via_inc) is None
        assert store.maybe_of(helper) is not None

    def test_view_falls_back_to_aggregate(self):
        program, store, _ = _profiled(context_sensitive=True)
        run = program.lookup_method("Main", "run")
        helper = program.lookup_method("Main", "helper")
        # run never calls helper directly: view falls back.
        view = store.view_for_caller(run)
        assert view.maybe_of(helper) is store.maybe_of(helper)

    def test_invocation_counts_split_by_context(self):
        program, store, _ = _profiled(context_sensitive=True)
        helper = program.lookup_method("Main", "helper")
        via_inc = program.lookup_method("Main", "viaInc")
        aggregate = store.maybe_of(helper)
        context = store.context_profile(helper, via_inc)
        assert aggregate.invocations == 120
        assert context.invocations == 60


class TestEngineIntegration:
    def test_semantics_identical(self):
        program = compile_source(POLLUTED)
        results = {}
        for flag in (False, True):
            engine = Engine(
                program,
                JitConfig(hot_threshold=15, context_sensitive_profiles=flag),
                inliner=tuned_inliner(0.1),
            )
            for _ in range(8):
                iteration = engine.run_iteration("Main", "run")
            results[flag] = iteration
        assert results[False].value == results[True].value

    def test_context_profiles_shrink_typeswitch(self):
        """The decisive effect: compiling viaInc with caller-specific
        profiles produces a monomorphic (1-arm) typeswitch at the
        helper's dispatch instead of the polluted 2-arm one."""
        from repro.core import IncrementalInliner, InlinerParams
        from repro.ir import annotate_frequencies, build_graph
        from repro.ir import nodes as n
        from repro.jit.compiler import CompileContext
        from repro.opts.pipeline import OptimizationPipeline

        arm_counts = {}
        for flag in (False, True):
            program, store, _ = _profiled(context_sensitive=flag)
            method = program.lookup_method("Main", "viaInc")
            graph = build_graph(method, program, store)
            annotate_frequencies(graph)
            context = CompileContext(
                program, store, OptimizationPipeline(program), None
            )
            IncrementalInliner(InlinerParams.scaled(0.1)).run(graph, context)
            arm_counts[flag] = sum(
                1
                for block in graph.blocks
                for node in block.instrs
                if isinstance(node, n.InstanceOfNode) and node.exact
            )
        assert arm_counts[True] == 1
        assert arm_counts[False] == 2

    def test_context_mode_not_slower(self):
        """On the polluted-helper workload, caller-specific profiles
        should help (or at worst tie): each inlined helper copy gets a
        monomorphic receiver profile instead of the 50/50 aggregate."""
        program = compile_source(POLLUTED)
        steady = {}
        for flag in (False, True):
            engine = Engine(
                program,
                JitConfig(hot_threshold=15, context_sensitive_profiles=flag),
                inliner=tuned_inliner(0.1),
            )
            for _ in range(10):
                iteration = engine.run_iteration("Main", "run")
            steady[flag] = iteration.total_cycles
        assert steady[True] <= steady[False] * 1.05
