"""The minij front end.

minij is a small Java/Scala-flavoured language compiled to the bytecode
of :mod:`repro.bytecode`. It exists so the evaluation's workloads can be
written the way the paper's motivating examples are written — traits
with default methods, polymorphic collection combinators, lambdas —
rather than as hand-assembled bytecode.

Feature set:

- classes with single inheritance, fields (instance and static),
  methods, constructors (``def init``), ``super`` calls;
- ``trait``: interfaces with abstract *and* default methods (Figure 1's
  ``IndexedSeqOptimized.foreach`` is a default method);
- ``object``: a module of static methods and fields;
- types ``int``, ``bool``, ``void``, class types and arrays ``T[]``;
- statements: ``var``, assignment, ``if``/``else``, ``while``,
  ``return``, blocks; expressions: literals, ``new``, calls, field and
  array access, ``a.length``, arithmetic/logic with short-circuit
  ``&&``/``||``, ``is``/``as`` type tests and casts;
- lambdas ``fun (x: int): int => x + 1`` lowered to anonymous classes
  implementing the fixed function traits of the standard library
  (closure captures become fields, exactly like Scala's lowering in
  the paper's Figure 2 — the ``$anon`` constructor node);
- annotations ``@inline`` / ``@noinline`` on methods (mapped to the
  force/never-inline method flags).

Public surface: :func:`compile_source` / :func:`load_program`.
"""

from repro.lang.loader import compile_source, load_program, STDLIB_SOURCE

__all__ = ["compile_source", "load_program", "STDLIB_SOURCE"]
