"""Compare every inlining policy on benchmarks from the paper's suite.

Runs the measurement protocol of §V (multiple VM instances, steady
state = mean of the last 40% of iterations) for a chosen benchmark set
and prints time, speedup-vs-C2 and installed-code tables.

Run:  python examples/compare_inliners.py [benchmark ...]
      python examples/compare_inliners.py factorie gauss-mix
"""

import sys

from repro.bench.harness import print_table, run_matrix

DEFAULT = ["factorie", "scalariform", "gauss-mix", "stmbench7"]
CONFIGS = ["no-inline", "greedy", "c2", "shallow-trials", "incremental"]


def main():
    names = sys.argv[1:] or DEFAULT
    print("benchmarks: %s" % ", ".join(names))
    print("configs:    %s" % ", ".join(CONFIGS))
    print("(protocol: 2 VM instances, steady mean of trailing 40%)")

    def progress(bench, config, measurement):
        print("  measured %-12s %-16s %10.0f cycles" % (
            bench, config, measurement.mean_cycles))

    results = run_matrix(CONFIGS, benchmarks=names, instances=2, progress=progress)
    print_table(results, CONFIGS, metric="time", title="steady cycles (mean ± std)")
    print_table(
        results,
        ["greedy", "c2", "shallow-trials", "incremental"],
        metric="speedup",
        baseline="c2",
        title="speedup relative to the C2-style baseline",
    )
    print_table(results, CONFIGS, metric="code", title="installed machine code")


if __name__ == "__main__":
    main()
