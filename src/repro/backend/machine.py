"""The linear machine: instruction set, code container, executor.

Lowered code is a list of tuples ``(opcode, a, b, c)`` over virtual
registers. The executor is a straightforward dispatch loop; cycle
accounting is block-granular — lowering prefixes each basic block with
a ``COST`` pseudo-instruction carrying the block's precomputed cycle
price, so executing a block costs one extra Python dispatch, not one
per instruction.
"""

from repro.deopt import DeoptSignal, materialize_frames
from repro.errors import (
    BoundsTrap,
    CastTrap,
    NullPointerTrap,
    VMError,
)
from repro.runtime.int64 import int_div, int_rem, wrap64
from repro.runtime.values import ArrayRef, ObjRef, NULL
from repro.runtime.intrinsics import intrinsic_function

# Machine opcodes (ints for fast comparison).
M_COST = 0
M_MOVI = 1
M_MOV = 2
M_MOVNULL = 3
M_ADD = 4
M_SUB = 5
M_MUL = 6
M_DIV = 7
M_REM = 8
M_NEG = 9
M_AND = 10
M_OR = 11
M_XOR = 12
M_SHL = 13
M_SHR = 14
M_EQ = 15
M_NE = 16
M_LT = 17
M_LE = 18
M_GT = 19
M_GE = 20
M_REFEQ = 21
M_REFNE = 22
M_JMP = 23
M_BR = 24
M_RET = 25
M_RETV = 26
M_NEW = 27
M_NEWARR = 28
M_ALOAD = 29
M_ASTORE = 30
M_ALEN = 31
M_GETF = 32
M_PUTF = 33
M_GETS = 34
M_PUTS = 35
M_ISINST = 36
M_ISEXACT = 37
M_CAST = 38
M_CALL = 39
M_VCALL = 40
M_GUARD = 41
M_DEOPT = 42

_NAMES = {
    value: name[2:]
    for name, value in list(globals().items())
    if name.startswith("M_")
}


class MachineCode:
    """Compiled machine code for one root method.

    Attributes:
        method: the root :class:`~repro.bytecode.method.Method`.
        instrs: list of instruction tuples.
        num_regs: virtual register count.
        entry_cost: prologue cycles charged on entry.
        size: installed-code size (number of machine instructions) —
            the unit reported in the paper's Figure 10 / Table I.
        deopt_table: per-deopt-point frame layouts — a tuple of
            :class:`~repro.deopt.FrameTemplate` tuples, indexed by the
            operand of ``GUARD``/``DEOPT`` instructions. Empty for
            non-speculative code.
        py_factory / py_source: the Python execution tier riding along
            (:mod:`repro.backend.pycodegen`): ``py_factory(vm,
            dispatch, sink)`` returns the closure the engine runs
            instead of the machine executor when the ``py`` backend is
            selected; ``py_source`` is the generated source (debugging
            and tests). ``None`` when the machine backend is selected
            or the generator bailed out. ``size`` stays the machine
            instruction count either way, so code-cache accounting,
            quotas and the icache model are backend-independent.
    """

    __slots__ = (
        "method",
        "instrs",
        "num_regs",
        "entry_cost",
        "size",
        "deopt_table",
        "py_factory",
        "py_source",
    )

    def __init__(self, method, instrs, num_regs, entry_cost, deopt_table=()):
        self.method = method
        self.instrs = instrs
        self.num_regs = num_regs
        self.entry_cost = entry_cost
        self.size = len(instrs)
        self.deopt_table = tuple(deopt_table)
        self.py_factory = None
        self.py_source = None

    def listing(self):
        """Human-readable disassembly (for tests and debugging)."""
        lines = []
        for index, instr in enumerate(self.instrs):
            op = instr[0]
            args = ", ".join(str(a) for a in instr[1:] if a is not None)
            lines.append("%4d: %-8s %s" % (index, _NAMES.get(op, "?"), args))
        return "\n".join(lines)


class MachineExecutor:
    """Executes :class:`MachineCode` against a VM state.

    The executor is deliberately free of policy: tier transfer decisions
    live in the dispatch callable (the JIT engine), which is invoked for
    every CALL/VCALL.
    """

    def __init__(self, vm, dispatch, cycle_sink):
        """
        Args:
            vm: the :class:`~repro.runtime.vmstate.VMState`.
            dispatch: ``(method, args) -> value`` used for all calls.
            cycle_sink: object with an ``add_compiled_cycles(n)`` method.
        """
        self.vm = vm
        self.dispatch = dispatch
        self.cycle_sink = cycle_sink

    def execute(self, code, args):
        vm = self.vm
        program = vm.program
        dispatch = self.dispatch
        instrs = code.instrs
        regs = [NULL] * code.num_regs
        for index, arg in enumerate(args):
            regs[index] = arg
        cycles = code.entry_cost
        pc = 0
        while True:
            instr = instrs[pc]
            op = instr[0]
            if op == M_COST:
                cycles += instr[1]
            elif op == M_MOVI:
                regs[instr[1]] = instr[2]
            elif op == M_MOV:
                regs[instr[1]] = regs[instr[2]]
            elif op == M_MOVNULL:
                regs[instr[1]] = NULL
            elif op == M_ADD:
                regs[instr[1]] = wrap64(regs[instr[2]] + regs[instr[3]])
            elif op == M_SUB:
                regs[instr[1]] = wrap64(regs[instr[2]] - regs[instr[3]])
            elif op == M_MUL:
                regs[instr[1]] = wrap64(regs[instr[2]] * regs[instr[3]])
            elif op == M_DIV:
                regs[instr[1]] = wrap64(int_div(regs[instr[2]], regs[instr[3]]))
            elif op == M_REM:
                regs[instr[1]] = wrap64(int_rem(regs[instr[2]], regs[instr[3]]))
            elif op == M_NEG:
                regs[instr[1]] = wrap64(-regs[instr[2]])
            elif op == M_AND:
                regs[instr[1]] = regs[instr[2]] & regs[instr[3]]
            elif op == M_OR:
                regs[instr[1]] = regs[instr[2]] | regs[instr[3]]
            elif op == M_XOR:
                regs[instr[1]] = regs[instr[2]] ^ regs[instr[3]]
            elif op == M_SHL:
                regs[instr[1]] = wrap64(regs[instr[2]] << (regs[instr[3]] & 63))
            elif op == M_SHR:
                regs[instr[1]] = regs[instr[2]] >> (regs[instr[3]] & 63)
            elif op == M_EQ:
                regs[instr[1]] = 1 if regs[instr[2]] == regs[instr[3]] else 0
            elif op == M_NE:
                regs[instr[1]] = 1 if regs[instr[2]] != regs[instr[3]] else 0
            elif op == M_LT:
                regs[instr[1]] = 1 if regs[instr[2]] < regs[instr[3]] else 0
            elif op == M_LE:
                regs[instr[1]] = 1 if regs[instr[2]] <= regs[instr[3]] else 0
            elif op == M_GT:
                regs[instr[1]] = 1 if regs[instr[2]] > regs[instr[3]] else 0
            elif op == M_GE:
                regs[instr[1]] = 1 if regs[instr[2]] >= regs[instr[3]] else 0
            elif op == M_REFEQ:
                regs[instr[1]] = 1 if regs[instr[2]] is regs[instr[3]] else 0
            elif op == M_REFNE:
                regs[instr[1]] = 1 if regs[instr[2]] is not regs[instr[3]] else 0
            elif op == M_JMP:
                pc = instr[1]
                continue
            elif op == M_BR:
                if regs[instr[1]] != 0:
                    pc = instr[2]
                    continue
            elif op == M_RET:
                self.cycle_sink.add_compiled_cycles(cycles)
                return NULL
            elif op == M_RETV:
                self.cycle_sink.add_compiled_cycles(cycles)
                return regs[instr[1]]
            elif op == M_NEW:
                regs[instr[1]] = vm.allocate(instr[2])
            elif op == M_NEWARR:
                length = regs[instr[2]]
                if length < 0:
                    raise BoundsTrap("negative array length %d" % length)
                regs[instr[1]] = vm.allocate_array(instr[3], length)
            elif op == M_ALOAD:
                array = regs[instr[2]]
                index = regs[instr[3]]
                if array is NULL:
                    raise NullPointerTrap("ALOAD")
                data = array.data
                if not (0 <= index < len(data)):
                    raise BoundsTrap("%d / %d" % (index, len(data)))
                regs[instr[1]] = data[index]
            elif op == M_ASTORE:
                array = regs[instr[1]]
                index = regs[instr[2]]
                if array is NULL:
                    raise NullPointerTrap("ASTORE")
                data = array.data
                if not (0 <= index < len(data)):
                    raise BoundsTrap("%d / %d" % (index, len(data)))
                data[index] = regs[instr[3]]
            elif op == M_ALEN:
                array = regs[instr[2]]
                if array is NULL:
                    raise NullPointerTrap("ARRAYLEN")
                regs[instr[1]] = len(array.data)
            elif op == M_GETF:
                obj = regs[instr[2]]
                if obj is NULL:
                    raise NullPointerTrap("GETFIELD %s" % instr[3])
                regs[instr[1]] = obj.fields[instr[3]]
            elif op == M_PUTF:
                obj = regs[instr[1]]
                if obj is NULL:
                    raise NullPointerTrap("PUTFIELD %s" % instr[2])
                obj.fields[instr[2]] = regs[instr[3]]
            elif op == M_GETS:
                regs[instr[1]] = vm.get_static(instr[2], instr[3])
            elif op == M_PUTS:
                vm.put_static(instr[1], instr[2], regs[instr[3]])
            elif op == M_ISINST:
                value = regs[instr[2]]
                if value is NULL:
                    regs[instr[1]] = 0
                else:
                    type_name = (
                        value.class_name
                        if isinstance(value, ObjRef)
                        else value.type_name
                    )
                    regs[instr[1]] = (
                        1 if program.is_subtype(type_name, instr[3]) else 0
                    )
            elif op == M_ISEXACT:
                value = regs[instr[2]]
                regs[instr[1]] = (
                    1
                    if isinstance(value, ObjRef) and value.class_name == instr[3]
                    else 0
                )
            elif op == M_CAST:
                value = regs[instr[2]]
                if value is not NULL:
                    type_name = (
                        value.class_name
                        if isinstance(value, ObjRef)
                        else value.type_name
                    )
                    if not program.is_subtype(type_name, instr[3]):
                        raise CastTrap("%s -> %s" % (type_name, instr[3]))
                regs[instr[1]] = value
            elif op == M_CALL:
                # instr: (op, result_reg, target_method, arg_regs)
                target = instr[2]
                call_args = [regs[r] for r in instr[3]]
                if target.is_native:
                    value = intrinsic_function(target.name)(vm, *call_args)
                else:
                    self.cycle_sink.add_compiled_cycles(cycles)
                    cycles = 0
                    value = dispatch(target, call_args)
                if instr[1] >= 0:
                    regs[instr[1]] = value
            elif op == M_VCALL:
                # instr: (op, result_reg, method_name, arg_regs)
                call_args = [regs[r] for r in instr[3]]
                receiver = call_args[0]
                if receiver is NULL:
                    raise NullPointerTrap("call %s" % instr[2])
                if isinstance(receiver, ArrayRef):
                    raise VMError("virtual call on array receiver")
                target = program.resolve_method(receiver.class_name, instr[2])
                self.cycle_sink.add_compiled_cycles(cycles)
                cycles = 0
                value = dispatch(target, call_args)
                if instr[1] >= 0:
                    regs[instr[1]] = value
            elif op == M_GUARD:
                # instr: (op, condition_reg, deopt_table_index, reason)
                if regs[instr[1]] == 0:
                    self.cycle_sink.add_compiled_cycles(cycles)
                    frames = materialize_frames(
                        code.deopt_table[instr[2]], regs
                    )
                    raise DeoptSignal(
                        code.method,
                        instr[3],
                        (frames[0].method.qualified_name, frames[0].bci),
                        frames,
                    )
            elif op == M_DEOPT:
                # instr: (op, deopt_table_index, reason)
                self.cycle_sink.add_compiled_cycles(cycles)
                frames = materialize_frames(code.deopt_table[instr[1]], regs)
                raise DeoptSignal(
                    code.method,
                    instr[2],
                    (frames[0].method.qualified_name, frames[0].bci),
                    frames,
                )
            else:
                raise VMError("bad machine opcode %d" % op)
            pc += 1
