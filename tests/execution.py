"""Test helper: execute an IR graph on the machine and compare tiers.

``execute_graph`` lowers a graph and runs it in a minimal harness whose
dispatch interprets every outgoing call — so a single method's compiled
semantics can be compared against pure interpretation regardless of
what its callees do.
"""

from repro.backend.lowering import lower_graph
from repro.backend.machine import MachineExecutor
from repro.interp import Interpreter
from repro.runtime import VMState


class _NullSink:
    def __init__(self):
        self.cycles = 0

    def add_compiled_cycles(self, cycles):
        self.cycles += cycles


def execute_graph(graph, program, args=(), vm=None):
    """Lower *graph* and execute it once; returns (result, vm)."""
    vm = vm or VMState(program)
    interp = Interpreter(vm)
    sink = _NullSink()
    executor = MachineExecutor(vm, interp.execute, sink)
    code = lower_graph(graph)
    result = executor.execute(code, list(args))
    return result, vm


def compare_tiers(program, class_name, method_name, args, graph=None):
    """Assert interpreter and compiled execution agree; returns value."""
    from repro.ir import build_graph

    method = program.lookup_method(class_name, method_name)
    vm_a = VMState(program)
    expected = Interpreter(vm_a).execute(method, list(args))
    if graph is None:
        graph = build_graph(method, program)
    actual, vm_b = execute_graph(graph, program, args)
    assert actual == expected, (
        "tier mismatch for %s.%s%r: interp=%r compiled=%r"
        % (class_name, method_name, tuple(args), expected, actual)
    )
    assert vm_a.output == vm_b.output, "output mismatch"
    return expected
