"""Composability of the environment pins.

``REPRO_SPECULATE=off``, ``REPRO_PRIORITY_CACHE=off`` and
``REPRO_GRAPH_COPY=reference`` each pin one engineering fast path back
to its reference behaviour; all eight combinations must be
bit-identical on a pinned workload (same values, same program output).
The priority-cache and graph-copy pins are read at module import time,
so every combination runs in a fresh subprocess.
"""

import itertools
import json
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: (env var, pinned value) — bit i of a combination sets PINS[i].
PINS = [
    ("REPRO_SPECULATE", "off"),
    ("REPRO_PRIORITY_CACHE", "off"),
    ("REPRO_GRAPH_COPY", "reference"),
]

# The pinned workload: the receiver-flip driver from the deopt tests.
# Ten monomorphic warmup iterations compile (and, unless pinned off,
# speculate in) the driver, then alternating receivers refute the
# guard — so the speculation pin changes real compiled-code paths, not
# just flags.
CHILD = r"""
import json

from repro.baselines import tuned_inliner
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from tests.test_deopt import flip_program

program = flip_program()
engine = Engine(
    program,
    JitConfig(hot_threshold=4, speculate=True),
    tuned_inliner(1.0),
)
values, cycles = [], []
for i in range(16):
    kind = i % 2 if i >= 10 else 0
    result = engine.run_iteration("Main", "drive", [kind])
    values.append(result.value)
    cycles.append(result.total_cycles)
print(json.dumps({
    "values": values,
    "cycles": cycles,
    "output": list(engine.vm.output),
    "deopts": engine.deopt_count,
}))
"""


def _run_combo(bits):
    env = dict(os.environ)
    for (name, value), bit in zip(PINS, bits):
        env.pop(name, None)
        if bit:
            env[name] = value
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD],
        env=env,
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, "combo %r failed:\n%s" % (bits, proc.stderr)
    return json.loads(proc.stdout)


def test_env_pin_matrix_bit_identical():
    results = {
        bits: _run_combo(bits)
        for bits in itertools.product((False, True), repeat=3)
    }
    baseline = results[(False, False, False)]

    # Observables are bit-identical across all eight combinations.
    for bits, result in results.items():
        assert result["values"] == baseline["values"], bits
        assert result["output"] == baseline["output"], bits

    # The cycle model may legitimately differ between speculative and
    # pinned-off runs (different compiled code), but the cache and
    # copy pins are pure engineering knobs: within each speculation
    # setting all four combinations agree exactly.
    for spec_off in (False, True):
        quartet = [
            result["cycles"]
            for bits, result in results.items()
            if bits[0] == spec_off
        ]
        assert all(cycles == quartet[0] for cycles in quartet), spec_off

    # Sanity: the speculation bit changed real behaviour — unpinned
    # runs took a deopt on the receiver flip, pinned runs never did.
    assert baseline["deopts"] == 1
    assert results[(True, False, False)]["deopts"] == 0
