"""The profiling bytecode interpreter (the VM's first tier).

Executing bytecode here is deliberately slow in the cost model — the
point of the tier is the *profiles* it gathers: invocation counts,
branch probabilities, loop backedge counters and receiver-type
histograms. These are exactly the HotSpot-provided inputs the paper's
inliner consumes (Section IV: "Graal can access the JVM profiling data,
such as branch probabilities, back-edge counters and receiver
profiles").
"""

from repro.interp.profiles import (
    ProfileStore,
    MethodProfile,
    ReceiverProfile,
    BranchProfile,
)
from repro.interp.interpreter import Interpreter

__all__ = [
    "ProfileStore",
    "MethodProfile",
    "ReceiverProfile",
    "BranchProfile",
    "Interpreter",
]
