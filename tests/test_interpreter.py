"""Interpreter semantics: arithmetic, control flow, objects, traps,
profiling. Includes hypothesis property tests pinning the 64-bit
integer semantics against a Python model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import Instr, MethodBuilder, Op
from repro.bytecode.klass import FieldDef
from repro.bytecode.method import Method
from repro.errors import (
    BoundsTrap,
    CastTrap,
    DivisionByZeroTrap,
    NullPointerTrap,
)
from repro.interp.interpreter import int_div, int_rem, wrap64
from tests.helpers import (
    SHAPES_RESULT,
    fresh_program,
    run_static,
    shapes_program,
    single_method_program,
)

int64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


class TestIntSemantics:
    @given(int64, int64)
    def test_wrap64_matches_twos_complement(self, a, b):
        value = wrap64(a + b)
        assert -(2 ** 63) <= value < 2 ** 63
        assert (value - (a + b)) % (2 ** 64) == 0

    @given(int64, int64.filter(lambda x: x != 0))
    def test_div_truncates_toward_zero(self, a, b):
        q = int_div(a, b)
        assert q == int(a / b) if abs(a) < 2 ** 52 else True
        # Division identity holds exactly:
        assert int_rem(a, b) == a - q * b

    @given(int64, int64.filter(lambda x: x != 0))
    def test_rem_sign_follows_dividend(self, a, b):
        r = int_rem(a, b)
        assert r == 0 or (r > 0) == (a > 0)
        assert abs(r) < abs(b)

    def test_div_by_zero_traps(self):
        with pytest.raises(DivisionByZeroTrap):
            int_div(1, 0)
        with pytest.raises(DivisionByZeroTrap):
            int_rem(1, 0)

    def test_known_values(self):
        assert int_div(-7, 2) == -3
        assert int_rem(-7, 2) == -1
        assert int_div(7, -2) == -3
        assert int_rem(7, -2) == 1


def _binop_program(op):
    def build(b):
        b.load(0).load(1).emit(op).retv()

    return single_method_program(build, params=("int", "int"))


class TestInterpretedArithmetic:
    small = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)

    @settings(max_examples=30, deadline=None)
    @given(small, small)
    def test_add_sub_mul(self, a, b):
        for op, model in [
            (Op.ADD, lambda: wrap64(a + b)),
            (Op.SUB, lambda: wrap64(a - b)),
            (Op.MUL, lambda: wrap64(a * b)),
            (Op.AND, lambda: a & b),
            (Op.OR, lambda: a | b),
            (Op.XOR, lambda: a ^ b),
        ]:
            program = _binop_program(op)
            result, _, _ = run_static(program, "T", "f", [a, b])
            assert result == model(), op

    @settings(max_examples=20, deadline=None)
    @given(small, st.integers(min_value=0, max_value=63))
    def test_shifts(self, a, s):
        result, _, _ = run_static(_binop_program(Op.SHL), "T", "f", [a, s])
        assert result == wrap64(a << s)
        result, _, _ = run_static(_binop_program(Op.SHR), "T", "f", [a, s])
        assert result == a >> s

    @settings(max_examples=20, deadline=None)
    @given(small, small)
    def test_comparisons(self, a, b):
        for op, model in [
            (Op.EQ, a == b),
            (Op.NE, a != b),
            (Op.LT, a < b),
            (Op.LE, a <= b),
            (Op.GT, a > b),
            (Op.GE, a >= b),
        ]:
            result, _, _ = run_static(_binop_program(op), "T", "f", [a, b])
            assert result == (1 if model else 0), op


class TestControlFlowAndObjects:
    def test_shapes_program_result(self):
        result, _, _ = run_static(shapes_program(), "Main", "run")
        assert result == SHAPES_RESULT

    def test_recursion(self):
        program = fresh_program()
        holder = program.define_class("R", is_abstract=True)
        b = MethodBuilder("fib", ["int"], "int", is_static=True)
        recurse = b.new_label()
        b.load(0).const(2).ge().if_true(recurse)
        b.load(0).retv()
        b.place(recurse)
        b.load(0).const(1).sub().invokestatic("R", "fib")
        b.load(0).const(2).sub().invokestatic("R", "fib")
        b.add().retv()
        holder.add_method(b.build())
        result, _, _ = run_static(program, "R", "fib", [15])
        assert result == 610

    def test_array_roundtrip(self):
        def build(b):
            b.const(5).newarray("int")
            arr = b.alloc_local()
            b.store(arr)
            b.load(arr).const(2).load(0).astore()
            b.load(arr).const(2).aload().load(arr).arraylen().add().retv()

        result, _, _ = run_static(single_method_program(build), "T", "f", [37])
        assert result == 42

    def test_instanceof_and_checkcast(self):
        program = shapes_program()
        main = program.klass("Main")
        b = MethodBuilder("check", [], "int", is_static=True)
        yes = b.new_label()
        b.new("Square").instanceof("Shape").if_true(yes)
        b.const(0).retv()
        b.place(yes).new("Circle").checkcast("Shape").instanceof("Square").retv()
        main.add_method(b.build())
        result, _, _ = run_static(program, "Main", "check")
        assert result == 0  # a Circle is a Shape but not a Square


class TestTraps:
    def test_null_field_access(self):
        program = shapes_program()
        b = MethodBuilder("boom", [], "int", is_static=True)
        b.null().getfield("Square", "side").retv()
        program.klass("Main").add_method(b.build())
        with pytest.raises(NullPointerTrap):
            run_static(program, "Main", "boom")

    def test_bounds(self):
        def build(b):
            b.const(2).newarray("int").const(5).aload().retv()

        with pytest.raises(BoundsTrap):
            run_static(single_method_program(build, params=()), "T", "f")

    def test_negative_array_length(self):
        def build(b):
            b.const(-1).newarray("int").arraylen().retv()

        with pytest.raises(BoundsTrap):
            run_static(single_method_program(build, params=()), "T", "f")

    def test_bad_cast(self):
        program = shapes_program()
        b = MethodBuilder("boom", [], "int", is_static=True)
        b.new("Circle").checkcast("Square").getfield("Square", "side").retv()
        program.klass("Main").add_method(b.build())
        with pytest.raises(CastTrap):
            run_static(program, "Main", "boom")


class TestProfiling:
    def test_invocation_counts(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        total = program.lookup_method("Main", "total")
        assert interp.profiles.of(total).invocations == 120

    def test_branch_probabilities(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        run = program.lookup_method("Main", "run")
        profile = interp.profiles.of(run)
        # The loop-exit branch is taken once out of 121 evaluations.
        exit_branch = [p for p in profile.branches.values() if p.total == 121]
        assert exit_branch and abs(exit_branch[0].probability() - 1 / 121) < 1e-9

    def test_receiver_profile_distribution(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        total = program.lookup_method("Main", "total")
        profile = interp.profiles.of(total)
        (receiver,) = profile.receivers.values()
        types = dict(receiver.observed_types())
        assert abs(types["Square"] - 0.75) < 1e-9
        assert abs(types["Circle"] - 0.25) < 1e-9
        assert not receiver.is_megamorphic

    def test_megamorphic_saturation(self):
        from repro.interp.profiles import MAX_RECORDED_TYPES, ReceiverProfile

        profile = ReceiverProfile()
        for i in range(MAX_RECORDED_TYPES + 3):
            profile.record("C%d" % i)
        assert profile.is_megamorphic
        assert len(profile.counts) == MAX_RECORDED_TYPES

    def test_backedge_counters_feed_hotness(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        run = program.lookup_method("Main", "run")
        assert interp.profiles.of(run).backedge_total() == 120
        assert interp.profiles.hotness(run) >= 120 // 8
