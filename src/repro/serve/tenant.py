"""One hosted tenant: an engine, a workload loop, an outcome record.

A tenant's workload is ``iterations`` calls of its entry point on its
own engine (own :class:`~repro.runtime.vmstate.VMState`, own profiles —
possibly pooled, see :mod:`repro.serve.profiles` — and a per-tenant
view of the shared code cache). Outcomes are normalized exactly like
the fuzz oracle's: ``("value", v)`` or ``("trap", kind)`` — a trap
aborts only its own iteration. That makes a service run directly
comparable across compile modes: sync and async must produce
bit-identical outcome lists and printed output per tenant.
"""

import time

from repro.errors import TrapError, VMError


class Tenant:
    """One admitted workload and its execution record."""

    STATES = ("admitted", "running", "done", "failed", "evicted")

    def __init__(self, spec, engine, tenant_id):
        self.spec = spec
        self.engine = engine
        self.tenant_id = tenant_id
        self.name = spec.name
        self.state = "admitted"
        self.outcomes = []
        self.iterations_done = 0
        self.wall_seconds = 0.0
        self.error = None
        self._evicted = False

    def mark_evicted(self):
        """Ask the workload loop to stop at the next iteration edge."""
        self._evicted = True

    @property
    def evicted(self):
        return self._evicted

    def run_workload(self):
        """Run the tenant's iterations; never raises.

        Traps are recorded per iteration (the VM keeps running, exactly
        like the oracle's protocol); only an engine *crash* — a
        non-VMError — fails the tenant.
        """
        engine = self.engine
        entry = self.spec.entry
        self.state = "running"
        started = time.perf_counter()
        try:
            for _ in range(self.spec.iterations):
                if self._evicted:
                    break
                try:
                    result = engine.run_iteration(entry[0], entry[1])
                    self.outcomes.append(("value", result.value))
                except TrapError as trap:
                    self.outcomes.append(("trap", trap.kind))
                except VMError as crash:
                    self.outcomes.append(("crash", type(crash).__name__))
                self.iterations_done += 1
            self.state = "evicted" if self._evicted else "done"
        except Exception as error:  # pragma: no cover - defensive
            self.state = "failed"
            self.error = error
        finally:
            self.wall_seconds = time.perf_counter() - started

    @property
    def output(self):
        return list(self.engine.vm.output)

    def throughput(self):
        """Iterations per second of wall time (0 before running)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.iterations_done / self.wall_seconds

    def as_dict(self):
        return {
            "name": self.name,
            "tenant_id": self.tenant_id,
            "benchmark": self.spec.benchmark,
            "state": self.state,
            "iterations": self.iterations_done,
            "requested_iterations": self.spec.iterations,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput": round(self.throughput(), 3),
            "compilations": self.engine.compilation_count,
            "async_installs": self.engine.async_installs,
            "deopts": self.engine.deopt_count,
            "merge": self.spec.merge,
        }
