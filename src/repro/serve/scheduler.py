"""The background compilation pipeline.

A :class:`BackgroundCompiler` owns one bounded
:class:`~repro.serve.queue.CompileQueue` and N daemon worker threads.
Workers drain the queue: for each request they serialize on the owning
engine's compile lock (one in-flight compilation per engine — the
engine's inliner and pipeline carry per-compilation state), run the
compilation against the request's profile snapshot, and hand the result
back to the engine for installation. Engines from *different* tenants
compile concurrently; interpretation continues on the application
threads throughout.

Cancellation is checked twice — when the request is dequeued and again
by the engine immediately before install — so evicting a tenant or
refuting a speculation site between enqueue and install reliably stops
the code from landing.

``workers=0`` is the deterministic test mode: nothing runs until
:meth:`run_queued` drains the queue on the calling thread.

Metrics (``compile.queue.*``): ``submitted`` / ``rejected`` /
``completed`` / ``failed`` / ``cancelled`` counters, a ``depth`` gauge,
and ``wait_ms`` / ``compile_ms`` histograms (queue latency and compile
wall time). All inert under :data:`~repro.obs.NULL_OBS`.
"""

import threading
import time

from repro.obs import NULL_OBS
from repro.serve.queue import CompileQueue


class BackgroundCompiler:
    """Bounded compile queue drained by worker threads."""

    def __init__(self, workers=1, queue_capacity=32, obs=None):
        self.obs = obs if obs is not None else NULL_OBS
        self.queue = CompileQueue(capacity=queue_capacity)
        self._workers = []
        self._closed = False
        self._lock = threading.Lock()
        #: Total requests that reached a terminal outcome, by outcome.
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0
        self.submitted = 0
        for index in range(max(0, int(workers))):
            thread = threading.Thread(
                target=self._worker_loop,
                name="repro-compile-%d" % index,
                daemon=True,
            )
            self._workers.append(thread)
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request):
        """Enqueue *request*; returns False on backpressure/shutdown."""
        accepted = self.queue.submit(request)
        obs = self.obs
        if accepted:
            self.submitted += 1
            if obs.enabled:
                obs.metrics.counter("compile.queue.submitted").inc()
                obs.metrics.gauge("compile.queue.depth").set(len(self.queue))
        else:
            self.rejected += 1
            request.finish("rejected")
            if obs.enabled:
                obs.metrics.counter("compile.queue.rejected").inc()
        return accepted

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def _serve(self, request):
        """Run one dequeued request to its terminal outcome."""
        obs = self.obs
        request.started_at = time.monotonic()
        if obs.enabled:
            obs.metrics.gauge("compile.queue.depth").set(len(self.queue))
            obs.metrics.histogram("compile.queue.wait_ms").record(
                (request.started_at - request.submitted_at) * 1000.0
            )
        engine = request.engine
        if request.cancelled:
            outcome = engine.finish_background_compile(request, None, None)
        else:
            record = error = None
            # One in-flight compilation per engine: the engine's
            # inliner and optimizer carry per-compilation state.
            with engine.background_compile_lock():
                try:
                    record = engine.execute_compile_request(request)
                except Exception as failure:  # CompileError, IRError, bugs
                    error = failure
                elapsed = time.monotonic() - request.started_at
                if obs.enabled:
                    obs.metrics.histogram("compile.queue.compile_ms").record(
                        elapsed * 1000.0
                    )
                outcome = engine.finish_background_compile(
                    request, record, error
                )
        if outcome == "installed":
            self.completed += 1
            if obs.enabled:
                obs.metrics.counter("compile.queue.completed").inc()
        elif outcome == "cancelled":
            self.cancelled += 1
            if obs.enabled:
                obs.metrics.counter("compile.queue.cancelled").inc()
        else:
            self.failed += 1
            if obs.enabled:
                obs.metrics.counter("compile.queue.failed").inc()
        request.finish(outcome)

    def _worker_loop(self):
        while True:
            request = self.queue.pop(timeout=0.1)
            if request is None:
                if self.queue.closed:
                    return
                continue
            self._serve(request)

    def run_queued(self, limit=None):
        """Drain queued requests on the *calling* thread.

        The deterministic mode behind ``workers=0``: tests submit
        requests, then decide exactly when each compilation runs.
        Returns the number of requests served.
        """
        served = 0
        while limit is None or served < limit:
            request = self.queue.pop(timeout=0)
            if request is None:
                break
            self._serve(request)
            served += 1
        return served

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self, timeout=5.0):
        """Close the queue, cancel what never ran, join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for request in self.queue.close():
            self.cancelled += 1
            outcome = request.engine.finish_background_compile(
                request, None, None
            )
            request.finish(outcome)
        for thread in self._workers:
            thread.join(timeout)
        self._workers = []

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    @property
    def depth(self):
        return len(self.queue)

    @property
    def has_workers(self):
        return bool(self._workers)
