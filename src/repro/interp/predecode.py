"""The pre-decoded fast interpreter tier.

:func:`predecode` compiles one method's bytecode — once — into a dense
table of *pre-bound handler closures*, one per instruction index. All
the per-instruction work the classic loop repeats on every execution is
hoisted to decode time:

- immediate operands are unpacked out of ``instr.args`` into closure
  cells (local slot indices, constants, branch targets, type names);
- statically-resolvable callees (INVOKESTATIC / INVOKESPECIAL and the
  *declared* method of virtual calls) are resolved exactly once through
  the program's cached resolvers;
- the per-pc profile cells (``BranchProfile`` / ``ReceiverProfile``)
  and bound profile recorders are materialized per callsite instead of
  being re-fetched through two dict lookups per executed branch/call;
- the backedge test ``target <= pc`` is a decode-time constant.

Each handler has the signature ``handler(stack, locals_) -> next_pc``
and the driver loop in :meth:`~repro.interp.interpreter.Interpreter`
is three bytecodes wide::

    while pc >= 0:
        pc = table[pc](stack, locals_)
        ops += 1

Returns are signalled by the negative sentinels :data:`RET_VOID` /
:data:`RET_VALUE` (the return value stays on the operand stack).

Correctness contract: for any program, executing through the
pre-decoded tier is *bit-identical* to the classic ``if/elif`` loop —
same ``ops_executed``, same traps, same printed output, same recorded
profile contents (profile cells are created lazily on first execution,
exactly like the classic tier), and therefore the same deterministic
engine cycle counts. ``tests/test_interp_predecode.py`` enforces this
differentially and the fuzz oracle matrix carries predecode
configurations.

Cache coherence: handler tables pre-bind resolved methods and profile
objects, so they are keyed on ``program.generation`` (bumped by class
loading) and ``profiles.generation`` (bumped by ``ProfileStore.clear``)
by the interpreter; a stale table is simply re-decoded.
"""

from repro.bytecode import types as bt
from repro.bytecode.opcodes import Op
from repro.errors import (
    BoundsTrap,
    CastTrap,
    LinkError,
    NullPointerTrap,
    VMError,
)
from repro.runtime.int64 import int_div, int_rem, wrap64
from repro.runtime.values import ArrayRef, NULL, ObjRef

#: Sentinel "next pc" values returned by RET / RETV handlers.
RET_VOID = -1
RET_VALUE = -2

#: Returned by an OSR hook to decline the transfer and keep
#: interpreting (a compiled return value can legitimately be ``None``,
#: so a unique sentinel object marks the miss). Shared by both
#: interpreter tiers; re-exported from :mod:`repro.interp.interpreter`.
OSR_MISS = object()


def predecode(method, profile, interp):
    """Compile *method* into a handler table bound to *profile*.

    Args:
        method: the :class:`~repro.bytecode.method.Method` to decode.
        profile: the profile object the handlers record into (a
            :class:`~repro.interp.profiles.MethodProfile` or a fanout
            proxy in context-sensitive mode).
        interp: the owning interpreter; handlers reach ``interp.vm``
            and ``interp.dispatch`` through it.

    Returns:
        A list of closures, one per instruction index.
    """
    program = interp.program
    vm = interp.vm
    table = []
    for pc, instr in enumerate(method.code):
        table.append(
            _decode_one(instr, pc, method, profile, program, vm, interp)
        )
    return table


def _decode_one(instr, pc, method, profile, program, vm, interp):
    op = instr.op
    next_pc = pc + 1

    # ---- locals, constants, stack shuffling --------------------------
    if op == Op.LOAD:
        index = instr.args[0]

        def h(stack, locals_, _i=index, _n=next_pc):
            stack.append(locals_[_i])
            return _n

        return h
    if op == Op.CONST:
        value = instr.args[0]

        def h(stack, locals_, _v=value, _n=next_pc):
            stack.append(_v)
            return _n

        return h
    if op == Op.STORE:
        index = instr.args[0]

        def h(stack, locals_, _i=index, _n=next_pc):
            locals_[_i] = stack.pop()
            return _n

        return h
    if op == Op.NULL:

        def h(stack, locals_, _null=NULL, _n=next_pc):
            stack.append(_null)
            return _n

        return h
    if op == Op.POP:

        def h(stack, locals_, _n=next_pc):
            stack.pop()
            return _n

        return h
    if op == Op.DUP:

        def h(stack, locals_, _n=next_pc):
            stack.append(stack[-1])
            return _n

        return h

    # ---- integer arithmetic ------------------------------------------
    if op == Op.ADD:

        def h(stack, locals_, _w=wrap64, _n=next_pc):
            b = stack.pop()
            stack[-1] = _w(stack[-1] + b)
            return _n

        return h
    if op == Op.SUB:

        def h(stack, locals_, _w=wrap64, _n=next_pc):
            b = stack.pop()
            stack[-1] = _w(stack[-1] - b)
            return _n

        return h
    if op == Op.MUL:

        def h(stack, locals_, _w=wrap64, _n=next_pc):
            b = stack.pop()
            stack[-1] = _w(stack[-1] * b)
            return _n

        return h
    if op == Op.DIV:

        def h(stack, locals_, _w=wrap64, _div=int_div, _n=next_pc):
            b = stack.pop()
            stack[-1] = _w(_div(stack[-1], b))
            return _n

        return h
    if op == Op.REM:

        def h(stack, locals_, _w=wrap64, _rem=int_rem, _n=next_pc):
            b = stack.pop()
            stack[-1] = _w(_rem(stack[-1], b))
            return _n

        return h
    if op == Op.NEG:

        def h(stack, locals_, _w=wrap64, _n=next_pc):
            stack[-1] = _w(-stack[-1])
            return _n

        return h
    if op == Op.AND:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = stack[-1] & b
            return _n

        return h
    if op == Op.OR:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = stack[-1] | b
            return _n

        return h
    if op == Op.XOR:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = stack[-1] ^ b
            return _n

        return h
    if op == Op.SHL:

        def h(stack, locals_, _w=wrap64, _n=next_pc):
            b = stack.pop() & 63
            stack[-1] = _w(stack[-1] << b)
            return _n

        return h
    if op == Op.SHR:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop() & 63
            stack[-1] = stack[-1] >> b
            return _n

        return h

    # ---- comparisons --------------------------------------------------
    if op == Op.EQ:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] == b else 0
            return _n

        return h
    if op == Op.NE:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] != b else 0
            return _n

        return h
    if op == Op.LT:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] < b else 0
            return _n

        return h
    if op == Op.LE:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] <= b else 0
            return _n

        return h
    if op == Op.GT:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] > b else 0
            return _n

        return h
    if op == Op.GE:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] >= b else 0
            return _n

        return h
    if op == Op.REF_EQ:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] is b else 0
            return _n

        return h
    if op == Op.REF_NE:

        def h(stack, locals_, _n=next_pc):
            b = stack.pop()
            stack[-1] = 1 if stack[-1] is not b else 0
            return _n

        return h

    # ---- control flow -------------------------------------------------
    if op == Op.IF:
        return _make_if(instr, pc, next_pc, profile, method, interp)
    if op == Op.GOTO:
        target = instr.target
        if target <= pc:
            record_backedge = profile.record_backedge

            def h(stack, locals_, _t=target, _pc=pc, _rb=record_backedge,
                  _bc=profile.backedge_count, _i=interp, _m=method,
                  _rv=method.returns_value(), _miss=OSR_MISS):
                _rb(_pc)
                # On-stack replacement: same trigger point as the
                # classic tier — right after the backedge is recorded.
                hook = _i.osr_hook
                if hook is not None and _bc(_pc) >= _i.osr_threshold:
                    result = hook(_m, _pc, _t, locals_, stack)
                    if result is not _miss:
                        if _rv:
                            stack.append(result)
                            return RET_VALUE
                        return RET_VOID
                return _t

            return h

        def h(stack, locals_, _t=target):
            return _t

        return h
    if op == Op.RET:

        def h(stack, locals_, _r=RET_VOID):
            return _r

        return h
    if op == Op.RETV:

        def h(stack, locals_, _r=RET_VALUE):
            return _r

        return h

    # ---- objects, arrays, fields --------------------------------------
    if op == Op.NEW:
        allocate = vm.allocate
        class_name = instr.args[0]

        def h(stack, locals_, _alloc=allocate, _c=class_name, _n=next_pc):
            stack.append(_alloc(_c))
            return _n

        return h
    if op == Op.NEWARRAY:
        allocate_array = vm.allocate_array
        elem_type = instr.args[0]

        def h(stack, locals_, _alloc=allocate_array, _e=elem_type, _n=next_pc):
            length = stack[-1]
            if length < 0:
                raise BoundsTrap("negative array length %d" % length)
            stack[-1] = _alloc(_e, length)
            return _n

        return h
    if op == Op.ALOAD:

        def h(stack, locals_, _null=NULL, _n=next_pc):
            index = stack.pop()
            array = stack[-1]
            if array is _null:
                raise NullPointerTrap("ALOAD")
            if not (0 <= index < len(array.data)):
                raise BoundsTrap("%d / %d" % (index, len(array.data)))
            stack[-1] = array.data[index]
            return _n

        return h
    if op == Op.ASTORE:

        def h(stack, locals_, _null=NULL, _n=next_pc):
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            if array is _null:
                raise NullPointerTrap("ASTORE")
            if not (0 <= index < len(array.data)):
                raise BoundsTrap("%d / %d" % (index, len(array.data)))
            array.data[index] = value
            return _n

        return h
    if op == Op.ARRAYLEN:

        def h(stack, locals_, _null=NULL, _n=next_pc):
            array = stack[-1]
            if array is _null:
                raise NullPointerTrap("ARRAYLEN")
            stack[-1] = len(array.data)
            return _n

        return h
    if op == Op.GETFIELD:
        field_name = instr.args[1]
        trap_msg = "GETFIELD %s.%s" % (instr.args[0], instr.args[1])

        def h(stack, locals_, _f=field_name, _m=trap_msg, _null=NULL, _n=next_pc):
            obj = stack[-1]
            if obj is _null:
                raise NullPointerTrap(_m)
            stack[-1] = obj.fields[_f]
            return _n

        return h
    if op == Op.PUTFIELD:
        field_name = instr.args[1]
        trap_msg = "PUTFIELD %s.%s" % (instr.args[0], instr.args[1])

        def h(stack, locals_, _f=field_name, _m=trap_msg, _null=NULL, _n=next_pc):
            value = stack.pop()
            obj = stack.pop()
            if obj is _null:
                raise NullPointerTrap(_m)
            obj.fields[_f] = value
            return _n

        return h
    if op == Op.GETSTATIC:
        get_static = vm.get_static
        cname, fname = instr.args

        def h(stack, locals_, _g=get_static, _c=cname, _f=fname, _n=next_pc):
            stack.append(_g(_c, _f))
            return _n

        return h
    if op == Op.PUTSTATIC:
        put_static = vm.put_static
        cname, fname = instr.args

        def h(stack, locals_, _p=put_static, _c=cname, _f=fname, _n=next_pc):
            _p(_c, _f, stack.pop())
            return _n

        return h

    # ---- type tests ---------------------------------------------------
    # Like the receiver histograms below, the type-check histogram is
    # materialized on first execution — never-executed sites must not
    # grow (empty) profile cells that the classic tier would not have.
    if op == Op.INSTANCEOF:
        is_subtype = program.is_subtype
        type_name = instr.args[0]
        holder = []

        def h(stack, locals_, _sub=is_subtype, _t=type_name, _null=NULL,
              _obj=ObjRef, _cell=holder, _profile=profile, _pc=pc,
              _n=next_pc):
            value = stack[-1]
            if _cell:
                cell = _cell[0]
            else:
                cell = _profile.typecheck(_pc)
                _cell.append(cell)
            if value is _null:
                cell.record(None)
                stack[-1] = 0
            else:
                vt = (
                    value.class_name
                    if isinstance(value, _obj)
                    else value.type_name
                )
                cell.record(vt)
                stack[-1] = 1 if _sub(vt, _t) else 0
            return _n

        return h
    if op == Op.CHECKCAST:
        is_subtype = program.is_subtype
        type_name = instr.args[0]
        holder = []

        def h(stack, locals_, _sub=is_subtype, _t=type_name, _null=NULL,
              _obj=ObjRef, _cell=holder, _profile=profile, _pc=pc,
              _n=next_pc):
            value = stack[-1]
            if _cell:
                cell = _cell[0]
            else:
                cell = _profile.typecheck(_pc)
                _cell.append(cell)
            if value is _null:
                cell.record(None)
            else:
                vt = (
                    value.class_name
                    if isinstance(value, _obj)
                    else value.type_name
                )
                cell.record(vt)
                if not _sub(vt, _t):
                    raise CastTrap("%s -> %s" % (vt, _t))
            return _n

        return h

    # ---- calls --------------------------------------------------------
    # The classic tier resolves call targets when the instruction
    # *executes*: an unlinkable invoke in dead code never raises. A
    # decode-time LinkError is therefore deferred into a handler that
    # re-raises it only if the instruction is actually reached.
    if op == Op.INVOKESTATIC:
        cname, mname = instr.args
        try:
            callee = program.lookup_method(cname, mname)
        except LinkError as exc:
            return _deferred_link_error(str(exc))
        argc = len(callee.param_types)
        returns_value = callee.return_type != bt.VOID
        record_callsite = profile.record_callsite

        def h(stack, locals_, _rc=record_callsite, _pc=pc, _callee=callee,
              _argc=argc, _rv=returns_value, _i=interp, _n=next_pc):
            _rc(_pc)
            if _argc:
                split = len(stack) - _argc
                call_args = stack[split:]
                del stack[split:]
            else:
                call_args = []
            result = _i.dispatch(_callee, call_args)
            if _rv:
                stack.append(result)
            return _n

        return h
    if op in (Op.INVOKEVIRTUAL, Op.INVOKEINTERFACE):
        cname, mname = instr.args
        try:
            declared = program.lookup_method(cname, mname)
        except LinkError as exc:
            return _deferred_link_error(str(exc))
        argc = 1 + len(declared.param_types)
        returns_value = declared.return_type != bt.VOID
        trap_msg = "call %s.%s" % (cname, mname)
        record_callsite = profile.record_callsite
        resolve = program.resolve_method
        # The receiver histogram is materialized on first execution,
        # like the classic tier — never-executed callsites must not
        # grow (empty) profile cells.
        holder = []

        def h(stack, locals_, _rc=record_callsite, _pc=pc, _m=mname,
              _argc=argc, _rv=returns_value, _msg=trap_msg, _res=resolve,
              _i=interp, _null=NULL, _obj=ObjRef, _arr=ArrayRef,
              _cell=holder, _profile=profile, _n=next_pc):
            split = len(stack) - _argc
            call_args = stack[split:]
            del stack[split:]
            receiver = call_args[0]
            if receiver is _null:
                raise NullPointerTrap(_msg)
            receiver_type = (
                receiver.class_name
                if isinstance(receiver, _obj)
                else receiver.type_name
            )
            _rc(_pc)
            if _cell:
                _cell[0].record(receiver_type)
            else:
                cell = _profile.receiver(_pc)
                _cell.append(cell)
                cell.record(receiver_type)
            if isinstance(receiver, _arr):
                raise VMError("virtual call on array receiver")
            callee = _res(receiver_type, _m)
            result = _i.dispatch(callee, call_args)
            if _rv:
                stack.append(result)
            return _n

        return h
    if op == Op.INVOKESPECIAL:
        cname, mname = instr.args
        try:
            callee = program.resolve_method(cname, mname)
        except LinkError as exc:
            return _deferred_link_error(str(exc))
        argc = 1 + len(callee.param_types)
        returns_value = callee.return_type != bt.VOID
        trap_msg = "special call %s.%s" % (cname, mname)
        record_callsite = profile.record_callsite

        def h(stack, locals_, _rc=record_callsite, _pc=pc, _callee=callee,
              _argc=argc, _rv=returns_value, _msg=trap_msg, _i=interp,
              _null=NULL, _n=next_pc):
            split = len(stack) - _argc
            call_args = stack[split:]
            del stack[split:]
            if call_args[0] is _null:
                raise NullPointerTrap(_msg)
            _rc(_pc)
            result = _i.dispatch(_callee, call_args)
            if _rv:
                stack.append(result)
            return _n

        return h

    raise VMError("unhandled opcode %s" % op)


def _deferred_link_error(message):
    def h(stack, locals_, _m=message):
        raise LinkError(_m)

    return h


def _make_if(instr, pc, next_pc, profile, method, interp):
    """An IF handler with a lazily-materialized branch-profile cell."""
    target = instr.target
    is_backedge = target <= pc
    # The cell is created on first execution (not at decode time) so a
    # never-taken IF leaves the profile dict bit-identical to classic
    # interpretation; after that first execution it is a pre-bound
    # attribute access away.
    holder = []
    if is_backedge:
        record_backedge = profile.record_backedge

        def h(stack, locals_, _cell=holder, _profile=profile, _pc=pc,
              _rb=record_backedge, _t=target, _n=next_pc,
              _bc=profile.backedge_count, _i=interp, _m=method,
              _rv=method.returns_value(), _miss=OSR_MISS):
            condition = stack.pop() != 0
            if _cell:
                _cell[0].record(condition)
            else:
                cell = _profile.branch(_pc)
                _cell.append(cell)
                cell.record(condition)
            if condition:
                _rb(_pc)
                # On-stack replacement check, after the condition pop:
                # the operand stack is exactly the loop-header entry
                # stack, matching the classic tier's trigger point.
                hook = _i.osr_hook
                if hook is not None and _bc(_pc) >= _i.osr_threshold:
                    result = hook(_m, _pc, _t, locals_, stack)
                    if result is not _miss:
                        if _rv:
                            stack.append(result)
                            return RET_VALUE
                        return RET_VOID
                return _t
            return _n

        return h

    def h(stack, locals_, _cell=holder, _profile=profile, _pc=pc,
          _t=target, _n=next_pc):
        condition = stack.pop() != 0
        if _cell:
            _cell[0].record(condition)
        else:
            cell = _profile.branch(_pc)
            _cell.append(cell)
            cell.record(condition)
        if condition:
            return _t
        return _n

    return h
