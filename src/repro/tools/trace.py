"""Show the inlining decisions made while compiling one method.

Warms profiles by interpreting the program a few times, then compiles
the requested method with the incremental inliner and prints the full
decision trace (expansions with Eq. 8 numbers, clusters, Eq. 12
verdicts, typeswitches) plus the call tree.

Example::

    python -m repro.tools.trace program.minij Main.run
"""

import argparse

from repro.backend.costmodel import CostModel
from repro.core import IncrementalInliner, InlinerParams, InlineTracer
from repro.interp import Interpreter
from repro.jit.compiler import CompileContext
from repro.ir import annotate_frequencies, build_graph
from repro.opts.pipeline import OptimizationPipeline
from repro.runtime import VMState
from repro.tools.common import compile_file, method_argument


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("program", help="minij source file")
    parser.add_argument(
        "method", type=method_argument, help="method to compile (Class.method)"
    )
    parser.add_argument(
        "--warmup-entry", type=method_argument, default=("Main", "run"),
        help="entry interpreted to gather profiles (default Main.run)",
    )
    parser.add_argument("--warmup-runs", type=int, default=3)
    parser.add_argument(
        "--size-factor", type=float, default=0.1,
        help="paper-constant rescaling factor (default 0.1)",
    )
    args = parser.parse_args(argv)

    program = compile_file(args.program)
    vm = VMState(program)
    interp = Interpreter(vm)
    warm_class, warm_method = args.warmup_entry
    for _ in range(args.warmup_runs):
        interp.call_static(warm_class, warm_method)

    class_name, method_name = args.method
    method = program.lookup_method(class_name, method_name)
    graph = build_graph(method, program, interp.profiles)
    annotate_frequencies(graph)
    # A real cost model, not None: policies are entitled to consult
    # context.cost_model (the default incremental inliner does not, but
    # custom policies crash on None).
    context = CompileContext(
        program, interp.profiles, OptimizationPipeline(program), CostModel()
    )
    tracer = InlineTracer()
    inliner = IncrementalInliner(
        InlinerParams.scaled(args.size_factor), tracer=tracer
    )
    before = graph.node_count()
    report = inliner.run(graph, context)
    print("compiling %s.%s with the incremental inliner" % (class_name, method_name))
    print(
        "graph: %d -> %d nodes; %d expansions, %d inlined, %d typeswitches\n"
        % (
            before,
            report.final_root_size,
            report.expansions,
            report.inline_count,
            report.typeswitch_count,
        )
    )
    print(tracer.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
