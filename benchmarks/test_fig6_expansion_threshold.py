"""Figure 6 — adaptive vs fixed *expansion* thresholds.

The paper sweeps T_e ∈ {500, 1k, 3k, 5k, 7k} against the adaptive
expansion threshold (Eq. 8) and finds that a fixed threshold can match
the adaptive one — but only with a different T_e per benchmark, while
the adaptive policy is uniformly competitive.

We regenerate the table and assert the figure's two claims:

1. no single T_e is within 5% of the best configuration on every
   benchmark (per-benchmark tuning is required), and
2. the adaptive policy stays within a modest factor of the best fixed
   choice on every benchmark.
"""

from benchmarks.conftest import INSTANCES, figure_benchmarks
from repro.bench.configs import TE_SWEEP
from repro.bench.harness import print_table, run_matrix

CONFIGS = ["incremental"] + ["te-%d" % te for te in TE_SWEEP]


def test_fig6_expansion_threshold(benchmark, steady_engine_factory):
    results = run_matrix(
        CONFIGS, benchmarks=figure_benchmarks(), instances=INSTANCES
    )
    print_table(
        results, CONFIGS, metric="time",
        title="Figure 6: adaptive vs fixed T_e (steady cycles)",
    )
    print_table(
        results, CONFIGS, metric="code",
        title="Figure 6 companion: installed code",
    )

    best = {
        name: min(m.mean_cycles for m in row.values())
        for name, row in results.items()
    }

    # Claim 1: every fixed T_e is noticeably suboptimal somewhere.
    for te in TE_SWEEP:
        config = "te-%d" % te
        losses = [
            results[name][config].mean_cycles / best[name]
            for name in results
        ]
        assert max(losses) > 1.02, (
            "fixed T_e=%d dominated everywhere — sweep not discriminating"
            % te
        )

    # Claim 2: adaptive is uniformly competitive.
    for name in results:
        ratio = results[name]["incremental"].mean_cycles / best[name]
        assert ratio < 1.35, (
            "adaptive is %.2fx off the best fixed threshold on %s"
            % (ratio, name)
        )

    engine = steady_engine_factory("factorie", "incremental")
    benchmark(engine.run_iteration, "Main", "run")
