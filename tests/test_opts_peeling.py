"""Loop peeling tests: trigger condition, shape restrictions, semantics."""

from repro.bytecode import MethodBuilder
from repro.bytecode.method import Method
from repro.ir import build_graph, check_graph
from repro.ir import stamps as stm
from repro.opts import peel_loops
from repro.opts.peeling import _canonical_shape, _should_peel
from repro.ir.dominators import compute_loops
from tests.execution import compare_tiers, execute_graph
from tests.helpers import fresh_program, single_method_program


def _poly_loop_program():
    """A loop whose receiver phi starts exact and widens inside the
    loop — the paper's peeling trigger."""
    program = fresh_program()
    iface = program.define_class("Step", is_interface=True)
    iface.add_method(Method("next", [], "Step", is_abstract=True))
    iface.add_method(Method("value", [], "int", is_abstract=True))

    a = program.define_class("A", interfaces=["Step"])
    b = MethodBuilder("next", [], "Step")
    b.new("B").retv()
    a.add_method(b.build())
    b = MethodBuilder("value", [], "int")
    b.const(1).retv()
    a.add_method(b.build())

    bee = program.define_class("B", interfaces=["Step"])
    b = MethodBuilder("next", [], "Step")
    b.load(0).retv()
    bee.add_method(b.build())
    b = MethodBuilder("value", [], "int")
    b.const(2).retv()
    bee.add_method(b.build())

    holder = program.define_class("H", is_abstract=True)
    b = MethodBuilder("f", ["int"], "int", is_static=True)
    loop = b.new_label()
    done = b.new_label()
    cur = b.alloc_local()
    acc = b.alloc_local()
    i = b.alloc_local()
    b.new("A").store(cur)
    b.const(0).store(acc).const(0).store(i)
    b.place(loop).load(i).load(0).ge().if_true(done)
    b.load(acc).load(cur).invokeinterface("Step", "value").add().store(acc)
    b.load(cur).invokeinterface("Step", "next").store(cur)
    b.load(i).const(1).add().store(i)
    b.goto(loop)
    b.place(done).load(acc).retv()
    holder.add_method(b.build())
    return program


class TestTrigger:
    def test_ref_phi_with_precise_entry_triggers(self):
        program = _poly_loop_program()
        graph = build_graph(program.lookup_method("H", "f"), program)
        loops = compute_loops(graph)
        assert len(loops) == 1
        assert _should_peel(loops[0], program)

    def test_int_constant_entry_does_not_trigger(self):
        def build(b):
            loop = b.new_label()
            done = b.new_label()
            acc = b.alloc_local()
            b.const(0).store(acc)
            b.place(loop).load(0).const(0).le().if_true(done)
            b.load(acc).load(0).add().store(acc)
            b.load(0).const(1).sub().store(0)
            b.goto(loop)
            b.place(done).load(acc).retv()

        program = single_method_program(build)
        graph = build_graph(program.lookup_method("T", "f"), program)
        loops = compute_loops(graph)
        assert not _should_peel(loops[0], program)

    def test_canonical_shape_accepts_simple_loop(self):
        program = _poly_loop_program()
        graph = build_graph(program.lookup_method("H", "f"), program)
        (loop,) = compute_loops(graph)
        assert _canonical_shape(loop)


class TestPeelTransform:
    def test_peel_preserves_semantics(self):
        program = _poly_loop_program()
        method = program.lookup_method("H", "f")
        for count in [0, 1, 3, 10]:
            graph = build_graph(method, program)
            peeled = peel_loops(graph, program)
            assert peeled >= 1
            check_graph(graph, program)
            compare_tiers(program, "H", "f", [count], graph=graph)

    def test_peeled_copy_specializes(self):
        """After peeling + canonicalization the first-iteration calls
        devirtualize to A's methods."""
        from repro.opts import canonicalize

        program = _poly_loop_program()
        graph = build_graph(program.lookup_method("H", "f"), program)
        canonicalize(graph, program)
        before_direct = sum(1 for i in graph.invokes() if i.kind == "direct")
        peel_loops(graph, program)
        canonicalize(graph, program)
        check_graph(graph, program)
        after_direct = sum(1 for i in graph.invokes() if i.kind == "direct")
        assert after_direct > before_direct

    def test_peeling_bounded(self):
        program = _poly_loop_program()
        graph = build_graph(program.lookup_method("H", "f"), program)
        assert peel_loops(graph, program, max_peels=2) <= 2
        check_graph(graph, program)
