"""Name the guilty pass for a diverging program.

Two sweeps, both cheap (each stage is one engine run):

1. **Additive**: run the program under configurations of growing
   aggressiveness — machine lowering only, then the base canonicalize/
   GVN/DCE pipeline, then devirtualization, RWE and peeling one at a
   time, then the failing configuration's inliner (speculation pinned
   off), and finally the verbatim failing configuration — speculation
   included.  The first stage that disagrees with the interpreter
   names the culprit, so "speculation" is blamed only when the
   guard/deopt machinery itself makes the difference.
2. **Subtractive** (only if the additive sweep pins the inliner):
   with the inliner *on*, toggle each optimization pass off; if
   disabling one pass restores agreement, the bug is in that pass's
   interaction with inlined graphs, not in the inliner itself.
"""

from repro.fuzz.oracle import (
    DEFAULT_ITERATIONS,
    ORACLE_CONFIGS,
    compare_records,
    run_interpreter,
)
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.opts.pipeline import OptimizerConfig

_HOT = 2


def _stage_config(devirt=False, rwe=False, peel=False, max_iterations=3):
    return JitConfig(
        hot_threshold=_HOT,
        optimizer=OptimizerConfig(
            max_iterations=max_iterations,
            enable_peeling=peel,
            enable_rwe=rwe,
            enable_devirtualization=devirt,
        ),
    )


#: The additive ladder: (label, config factory, mode).  ``mode`` is
#: ``None`` for a fixed no-inliner stage, ``"inliner"`` for the failing
#: configuration with speculation pinned off, and ``"speculation"`` for
#: the verbatim failing configuration — so "speculation" can only be
#: named when speculative guard/deopt code is actually the difference.
_STAGES = [
    (
        "lowering/machine",
        lambda: _stage_config(max_iterations=0),
        None,
    ),
    ("canonicalize/gvn/dce", lambda: _stage_config(), None),
    ("devirtualization", lambda: _stage_config(devirt=True), None),
    ("rwe", lambda: _stage_config(devirt=True, rwe=True), None),
    (
        "peeling",
        lambda: _stage_config(devirt=True, rwe=True, peel=True),
        None,
    ),
    ("inliner", None, "inliner"),
    ("speculation", None, "speculation"),
]

#: Subtractive refinement: pass name -> kwargs that disable it.
_SUBTRACT = [
    ("devirtualization", {"devirt": False, "rwe": True, "peel": True}),
    ("rwe", {"devirt": True, "rwe": False, "peel": True}),
    ("peeling", {"devirt": True, "rwe": True, "peel": False}),
]


class BisectReport:
    """Outcome of a bisection: the culprit and the per-stage verdicts."""

    __slots__ = ("culprit", "stages", "divergence")

    def __init__(self, culprit, stages, divergence):
        self.culprit = culprit
        self.stages = stages  # [(label, diverged bool)]
        self.divergence = divergence

    def describe(self):
        ladder = ", ".join(
            "%s=%s" % (label, "DIVERGED" if bad else "ok")
            for label, bad in self.stages
        )
        return "culprit=%s [%s]" % (self.culprit, ladder)

    def as_dict(self):
        return {
            "culprit": self.culprit,
            "stages": [
                {"stage": label, "diverged": bad} for label, bad in self.stages
            ],
        }

    def __repr__(self):
        return "<BisectReport %s>" % self.describe()


def _run_engine(program, entry, config, inliner, iterations, vm_seed):
    from repro.fuzz.oracle import ExecutionRecord, _observe

    class_name, method_name = entry
    engine = Engine(program, config, inliner, seed=vm_seed)
    outcomes = [
        _observe(
            lambda: engine.run_iteration(class_name, method_name).value
        )
        for _ in range(iterations)
    ]
    return ExecutionRecord(outcomes, engine.vm.output)


def bisect_passes(
    program,
    entry,
    config_name,
    iterations=DEFAULT_ITERATIONS,
    vm_seed=0x5EED,
):
    """Find the first pipeline stage that diverges from the interpreter.

    *config_name* is the oracle configuration that originally diverged;
    its inliner is used for the final ladder stage and the subtractive
    sweep.  Returns a :class:`BisectReport`.
    """
    reference = run_interpreter(program, entry, iterations, vm_seed)
    stages = []
    culprit = None
    first_divergence = None
    for label, factory, mode in _STAGES:
        if mode is None:
            config, inliner = factory(), None
        else:
            config, inliner = ORACLE_CONFIGS[config_name]()
            if mode == "inliner":
                # Hard-pin speculation off so this stage blames the
                # inliner itself, never the guard/deopt machinery.
                config.speculate = False
            elif not config.speculation_enabled():
                # Non-speculative config: this stage would duplicate
                # the previous one; skip the redundant engine run.
                stages.append((label, False))
                continue
        record = _run_engine(
            program, entry, config, inliner, iterations, vm_seed
        )
        divergence = compare_records(label, reference, record)
        stages.append((label, divergence is not None))
        if divergence is not None and culprit is None:
            culprit = label
            first_divergence = divergence
            break  # later (more aggressive) stages add no information

    if culprit is None:
        # Nothing on the ladder reproduced it (e.g. a profile-shape
        # sensitivity unique to the original config).
        return BisectReport("config:%s" % config_name, stages, None)

    if culprit == "inliner":
        # Refine: with inlining on, which single pass's removal fixes it?
        for pass_name, toggles in _SUBTRACT:
            config, _ = ORACLE_CONFIGS[config_name]()
            config.optimizer = _stage_config(**toggles).optimizer
            _, inliner = ORACLE_CONFIGS[config_name]()
            record = _run_engine(
                program, entry, config, inliner, iterations, vm_seed
            )
            if compare_records(pass_name, reference, record) is None:
                culprit = "%s (inlined graphs)" % pass_name
                break

    return BisectReport(culprit, stages, first_divergence)
