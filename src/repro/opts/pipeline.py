"""The full optimization pipeline with a compile-time budget.

The paper's non-linearity argument (§II, point 3) observes that "later
optimizations with a limited budget are less effective if inlining
produces a huge method". We reproduce that mechanism: the pipeline's
iteration count shrinks as the graph grows past
:attr:`OptimizerConfig.budget_nodes`, so a bloated root method is
genuinely optimized less thoroughly.
"""

from repro.obs import NULL_OBS
from repro.opts.canonicalize import CanonStats, canonicalize
from repro.opts.dce import merge_blocks, remove_dead_nodes, remove_unreachable_blocks
from repro.opts.gvn import global_value_numbering
from repro.opts.peeling import peel_loops
from repro.opts.rwelim import read_write_elimination


class OptimizerConfig:
    """Tunables for the optimization pipeline.

    Attributes:
        max_iterations: full canonicalize/GVN/DCE rounds on small graphs.
        budget_nodes: graph size at which the pipeline starts scaling
            its effort down; beyond 4× this size only one round runs.
        enable_peeling: first-iteration loop peeling (§IV).
        enable_rwe: read/write elimination (§IV).
        enable_devirtualization: stamp/CHA devirtualization during
            canonicalization.
    """

    def __init__(
        self,
        max_iterations=3,
        budget_nodes=2000,
        enable_peeling=True,
        enable_rwe=True,
        enable_devirtualization=True,
    ):
        self.max_iterations = max_iterations
        self.budget_nodes = budget_nodes
        self.enable_peeling = enable_peeling
        self.enable_rwe = enable_rwe
        self.enable_devirtualization = enable_devirtualization

    def iterations_for(self, node_count):
        """Effort available for a graph of *node_count* nodes."""
        if node_count <= self.budget_nodes:
            return self.max_iterations
        if node_count <= 2 * self.budget_nodes:
            return max(1, self.max_iterations - 1)
        if node_count <= 4 * self.budget_nodes:
            return max(1, self.max_iterations - 2)
        return 1


class OptimizationPipeline:
    """Runs the optimizer over a graph and aggregates statistics."""

    def __init__(self, program, config=None, obs=None):
        self.program = program
        self.config = config if config is not None else OptimizerConfig()
        self.obs = obs if obs is not None else NULL_OBS

    def run(self, graph, peel=None, rwe=None):
        """Optimize *graph* in place; returns aggregate CanonStats.

        *peel* / *rwe* override the config switches for a single run
        (the inliner calls those phases only at specific round
        boundaries, as the paper describes).

        With observability enabled, every pass emits a ``pass`` event
        carrying its node-count delta (the ``nodes-``/``nodes+`` columns
        of the stats report).
        """
        config = self.config
        do_peel = config.enable_peeling if peel is None else peel
        do_rwe = config.enable_rwe if rwe is None else rwe
        obs = self.obs
        observe = obs.enabled
        if observe:
            obs.metrics.counter("opt.pipeline.runs").inc()
        stats = CanonStats()
        iterations = config.iterations_for(graph.node_count())
        for iteration in range(iterations):
            before = graph.node_count()
            stats.merge(
                canonicalize(
                    graph,
                    self.program,
                    devirtualize=config.enable_devirtualization,
                )
            )
            remove_unreachable_blocks(graph)
            if observe:
                after_canon = graph.node_count()
                obs.events.emit(
                    "pass", name="canonicalize", iteration=iteration,
                    before=before, after=after_canon,
                )
            global_value_numbering(graph)
            remove_dead_nodes(graph)
            merge_blocks(graph)
            if observe:
                after_gvn = graph.node_count()
                obs.events.emit(
                    "pass", name="gvn", iteration=iteration,
                    before=after_canon, after=after_gvn,
                )
            if do_rwe:
                read_write_elimination(graph, self.program)
                remove_dead_nodes(graph)
                if observe:
                    obs.events.emit(
                        "pass", name="rwe", iteration=iteration,
                        before=after_gvn, after=graph.node_count(),
                    )
            if graph.node_count() == before and stats.rounds > 1:
                break
        if do_peel:
            before_peel = graph.node_count() if observe else 0
            peeled = peel_loops(graph, self.program)
            if peeled:
                stats.merge(
                    canonicalize(
                        graph,
                        self.program,
                        devirtualize=config.enable_devirtualization,
                    )
                )
                remove_unreachable_blocks(graph)
                global_value_numbering(graph)
                remove_dead_nodes(graph)
                merge_blocks(graph)
            if observe and peeled:
                obs.events.emit(
                    "pass", name="peel", iteration=0,
                    before=before_peel, after=graph.node_count(),
                )
        if observe and stats.type_check_folds:
            # Trial-time folds (simplify_only) are deliberately not
            # counted: trial graphs are discarded, so only folds in
            # graphs that actually compile reach the metric.
            obs.metrics.counter("opt.type_check_folds").inc(
                stats.type_check_folds
            )
        return stats

    def simplify_only(self, graph):
        """A cheap canonicalize+cleanup round (used inside trials)."""
        if self.obs.enabled:
            # Trials run this constantly; count it but skip per-pass
            # events to keep the stream readable.
            self.obs.metrics.counter("opt.simplify.runs").inc()
        stats = canonicalize(
            graph,
            self.program,
            max_rounds=2,
            devirtualize=self.config.enable_devirtualization,
        )
        remove_unreachable_blocks(graph)
        remove_dead_nodes(graph)
        merge_blocks(graph)
        return stats
