"""Stamps: the abstract-value lattice attached to every SSA node.

A stamp describes what the compiler knows about a value. The lattice
has three families:

- **int stamps** — optionally a known constant;
- **ref stamps** — an upper-bound type name, an *exact* bit (the value's
  dynamic type is exactly that class, not a subclass), a *non-null* bit,
  and an *is-null* bit (the constant null);
- **void** — for instructions producing no value.

Deep inlining trials (paper §IV) work by replacing a callee's parameter
stamps with the *argument* stamps observed at a callsite and re-running
canonicalization; the two refinement operations that matter are

- :meth:`Stamp.meet` — least upper bound, used at phis, and
- :meth:`Stamp.join` — greatest lower bound, used at type guards.

``N_s(n)`` in Equation 4 counts arguments whose stamp is *strictly more
precise* than the callee's declared parameter stamp, which is
:func:`is_strictly_more_precise`.
"""

from repro.bytecode import types as bt


class Stamp:
    """An immutable abstract value description."""

    __slots__ = ("kind", "const", "type_name", "exact", "non_null", "is_null")

    INT = "int"
    REF = "ref"
    VOID = "void"
    ANY = "any"  # top: a value of statically unknown kind (dead merges)
    BOTTOM = "bottom"  # bottom: no value can have this stamp (dead paths)

    def __init__(
        self,
        kind,
        const=None,
        type_name=None,
        exact=False,
        non_null=False,
        is_null=False,
    ):
        self.kind = kind
        self.const = const
        self.type_name = type_name
        self.exact = exact
        self.non_null = non_null
        self.is_null = is_null

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_constant(self):
        return self.const is not None or self.is_null

    def constant_value(self):
        """The known constant (None represents the null reference)."""
        if self.is_null:
            return None
        return self.const

    def asserts_type(self, program, type_name):
        """True if every value with this stamp is a *type_name* instance."""
        if self.kind != Stamp.REF or self.type_name is None:
            return False
        return program.is_subtype(self.type_name, type_name)

    def excludes_type(self, program, type_name):
        """True if no non-null value with this stamp can be *type_name*.

        Precise only for exact stamps; for inexact stamps we check that
        neither type is a subtype of the other (no common instances
        unless multiple interface inheritance conspires, which the
        caller tolerates by treating this as a heuristic *only* when
        ``exact`` is set — see canonicalization of type checks).
        """
        if self.kind != Stamp.REF or self.type_name is None:
            return False
        if self.exact:
            return not program.is_subtype(self.type_name, type_name)
        return False

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------

    def meet(self, other, program=None):
        """Least upper bound: what is known about "either value"."""
        if self is other:
            return self
        if self.kind == Stamp.BOTTOM:
            return other
        if other.kind == Stamp.BOTTOM:
            return self
        if self.kind == Stamp.ANY or other.kind == Stamp.ANY:
            return ANY_STAMP
        if self.kind != other.kind:
            return ANY_STAMP
        if self.kind == Stamp.INT:
            if self.const is not None and self.const == other.const:
                return self
            return INT_STAMP
        if self.kind == Stamp.VOID:
            return self
        # Reference meet.
        if self.is_null and other.is_null:
            return NULL_STAMP
        type_name = _common_supertype(
            self.type_name, other.type_name, program,
            self.is_null, other.is_null,
        )
        return Stamp(
            Stamp.REF,
            type_name=type_name,
            exact=(
                self.exact
                and other.exact
                and self.type_name == other.type_name
                and not self.is_null
                and not other.is_null
            ),
            non_null=self.non_null and other.non_null,
            is_null=False,
        )

    def join(self, other, program=None):
        """Greatest lower bound: combine two facts about the same value.

        Used when a guard adds information (e.g. after a successful
        exact-type check). On conflicting facts returns BOTTOM, which
        marks the path dead.
        """
        if self is other:
            return self
        if self.kind == Stamp.BOTTOM or other.kind == Stamp.BOTTOM:
            return BOTTOM_STAMP
        if self.kind == Stamp.ANY:
            return other
        if other.kind == Stamp.ANY:
            return self
        if self.kind != other.kind:
            return BOTTOM_STAMP
        if self.kind == Stamp.INT:
            if self.const is None:
                return other
            if other.const is None or other.const == self.const:
                return self
            return BOTTOM_STAMP
        if self.kind == Stamp.VOID:
            return self
        if self.is_null or other.is_null:
            if self.non_null or other.non_null:
                return BOTTOM_STAMP
            return NULL_STAMP
        if self.exact and other.exact and self.type_name != other.type_name:
            return BOTTOM_STAMP
        # Prefer the more specific type bound.
        type_name = self.type_name
        exact = self.exact
        if other.exact:
            type_name, exact = other.type_name, True
        elif type_name is None:
            type_name = other.type_name
        elif other.type_name is not None and program is not None:
            if program.is_subtype(other.type_name, type_name):
                type_name = other.type_name
        return Stamp(
            Stamp.REF,
            type_name=type_name,
            exact=exact,
            non_null=self.non_null or other.non_null,
        )

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def _key(self):
        return (
            self.kind,
            self.const,
            self.type_name,
            self.exact,
            self.non_null,
            self.is_null,
        )

    def __eq__(self, other):
        return isinstance(other, Stamp) and self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        if self.kind == Stamp.INT:
            if self.const is not None:
                return "i[%d]" % self.const
            return "i"
        if self.kind == Stamp.VOID:
            return "void"
        if self.kind == Stamp.BOTTOM:
            return "bottom"
        if self.kind == Stamp.ANY:
            return "any"
        if self.is_null:
            return "null"
        bits = []
        if self.exact:
            bits.append("!")
        name = self.type_name or "Object"
        suffix = "+" if self.non_null else ""
        return "a[%s%s]%s" % ("".join(bits), name, suffix)


def _common_supertype(a, b, program, a_null, b_null):
    """Least common named supertype of two (possibly null) ref bounds."""
    if a_null:
        return b
    if b_null:
        return a
    if a is None or b is None:
        return None
    if a == b:
        return a
    if program is None:
        return bt.OBJECT
    if program.is_subtype(a, b):
        return b
    if program.is_subtype(b, a):
        return a
    if a.endswith("[]") or b.endswith("[]"):
        return bt.OBJECT
    # Walk a's superclass chain for the first class that covers b.
    for klass in program.superclass_chain(a):
        if program.is_subtype(b, klass.name):
            return klass.name
    return bt.OBJECT


#: Shared singletons for the common stamps.
INT_STAMP = Stamp(Stamp.INT)
VOID_STAMP = Stamp(Stamp.VOID)
NULL_STAMP = Stamp(Stamp.REF, is_null=True)
BOTTOM_STAMP = Stamp(Stamp.BOTTOM)
ANY_STAMP = Stamp(Stamp.ANY)
OBJECT_STAMP = Stamp(Stamp.REF, type_name=bt.OBJECT)


def int_stamp():
    return INT_STAMP


def constant_int(value):
    return Stamp(Stamp.INT, const=value)


def ref_stamp(type_name, exact=False, non_null=False):
    return Stamp(Stamp.REF, type_name=type_name, exact=exact, non_null=non_null)


def null_stamp():
    return NULL_STAMP


def void_stamp():
    return VOID_STAMP


def stamp_for_declared_type(type_name):
    """The stamp corresponding to a declared source-level type."""
    if type_name == bt.INT:
        return INT_STAMP
    if type_name == bt.VOID:
        return VOID_STAMP
    return ref_stamp(type_name)


def is_strictly_more_precise(arg_stamp, param_stamp, program):
    """True if *arg_stamp* carries strictly more information.

    This is the per-argument test behind N_s(n) in Equation 4: a callsite
    whose arguments are more concrete than the callee's declared
    parameters promises specialization opportunities.
    """
    if arg_stamp == param_stamp:
        return False
    if arg_stamp.kind == Stamp.INT and param_stamp.kind == Stamp.INT:
        return arg_stamp.const is not None and param_stamp.const is None
    if arg_stamp.kind != Stamp.REF or param_stamp.kind != Stamp.REF:
        return False
    if arg_stamp.is_null:
        return True
    if arg_stamp.exact and not param_stamp.exact:
        return True
    if arg_stamp.non_null and not param_stamp.non_null:
        return True
    if arg_stamp.type_name is None:
        return False
    if param_stamp.type_name is None:
        return True
    return (
        arg_stamp.type_name != param_stamp.type_name
        and program.is_subtype(arg_stamp.type_name, param_stamp.type_name)
    )
