"""The expansion phase (§III-B, Listings 3–4).

Each round, ``expand`` repeatedly *descends* from the root: at every
expanded node it picks the highest-priority child from that node's
queue (Eq. 5–7) and recurses; on reaching a cutoff it consults the
adaptive expansion threshold (Eq. 8) and either attaches the callee's
specialized IR or declines. A child stays on its parent's queue only
while it is a cutoff or still has expandable descendants of its own —
exactly the bookkeeping of Listing 3.
"""

from repro.core.calltree import NodeKind
from repro.core.priorities import (
    local_benefit,
    make_priority_cache,
    recursion_penalty,
)
from repro.core.thresholds import should_expand
from repro.core.tracing import REASON_BUDGET, REASON_RECURSION, REASON_THRESHOLD
from repro.core.trials import expand_node, normalize_node

#: descend() outcomes.
EXPANDED = "expanded"
DECLINED = "declined"
NO_PROGRESS = "no-progress"


class ExpansionPhase:
    """One policy object, reused across rounds and compilations.

    Args:
        params: :class:`~repro.core.params.InlinerParams`.
        adaptive: use Eq. 8; when False, expansion instead stops once
            S_irn(root) exceeds ``fixed_te`` (the fixed-threshold
            baseline of Figure 6).
        fixed_te: the fixed expansion threshold T_e.
        deep_trials: passed through to the trial machinery.
    """

    def __init__(
        self, params, adaptive=True, fixed_te=1000, deep_trials=True, tracer=None
    ):
        self.params = params
        self.adaptive = adaptive
        self.fixed_te = fixed_te
        self.deep_trials = deep_trials
        self.tracer = tracer
        # Subtree-aggregate memo; invalidated at every tree mutation
        # (see PriorityCache) so cached priorities stay bit-identical
        # to recomputed ones.
        self._cache = make_priority_cache(params)

    # ------------------------------------------------------------------

    def run(self, root, context, report):
        """Expand the tree for one round; returns number of expansions."""
        # Fresh per round: honors runtime CACHE_ENABLED toggling and
        # drops references to the previous compilation's tree.
        self._cache = make_priority_cache(self.params)
        self._reset_declines(root)
        self._rebuild_queues(root, context)
        expansions = 0
        while expansions < self.params.max_expansions_per_round:
            outcome = self._descend(root, root, context, report)
            if outcome == EXPANDED:
                expansions += 1
            else:
                break
        report.expansions += expansions
        return expansions

    # ------------------------------------------------------------------

    def _reset_declines(self, root):
        for node in root.subtree():
            node.expand_declined = False

    def _rebuild_queues(self, root, context):
        """Recompute every expansion queue bottom-up (Listing 3's
        ``initQueues``)."""
        def rebuild(node):
            node.check_deleted()
            normalize_node(node, context, self.params)
            if node.kind not in (
                NodeKind.EXPANDED,
                NodeKind.POLYMORPHIC,
                NodeKind.INLINED,
            ):
                node.queue = []
                return
            queue = []
            for child in node.children:
                rebuild(child)
                if self._keep_on_queue(child):
                    queue.append(child)
            node.queue = queue

        rebuild(root)

    def _keep_on_queue(self, child):
        """Listing 3: keep c on its parent's queue only if c's queue is
        non-empty or c is a cutoff (and not declined this round)."""
        if child.check_deleted():
            # A lazily observed deletion flips kinds in the subtree;
            # cached priorities may now be stale.
            self._cache.invalidate()
            return False
        if child.kind == NodeKind.CUTOFF:
            return not child.expand_declined
        if child.kind in (
            NodeKind.EXPANDED,
            NodeKind.POLYMORPHIC,
            NodeKind.INLINED,
        ):
            return bool(child.queue)
        return False

    # ------------------------------------------------------------------

    def _descend(self, node, root, context, report):
        if node.kind == NodeKind.CUTOFF:
            return self._expand_cutoff(node, root, context, report)
        while node.queue:
            best = max(node.queue, key=self._cache.priority)
            outcome = self._descend(best, root, context, report)
            if not self._keep_on_queue(best):
                node.queue.remove(best)
            if outcome == EXPANDED:
                return EXPANDED
            # DECLINED or NO_PROGRESS below: try the next-best child.
        return NO_PROGRESS

    def _expand_cutoff(self, node, root, context, report):
        """Listing 4's ``expandCutoff``: the Eq. 8 decision plus the
        actual attachment of the callee IR."""
        if node.check_deleted():
            self._cache.invalidate()
            return NO_PROGRESS
        method = node.method
        if method is None or not context.can_build(method):
            node.kind = NodeKind.GENERIC
            self._cache.invalidate()
            return NO_PROGRESS
        benefit = local_benefit(node)
        size = self._cache.ir_size(node)
        root_size = self._cache.s_irn(root)
        if not self._expansion_allowed(node, root):
            node.expand_declined = True
            if self.tracer is not None:
                self.tracer.declined(
                    node,
                    benefit,
                    size,
                    self._threshold_value(root_size),
                    reason=self._decline_reason(node),
                    priority=self._cache.priority(node),
                    root_size=root_size,
                )
            return DECLINED
        if self.tracer is not None:
            self.tracer.expanded(
                node,
                benefit,
                size,
                self._threshold_value(root_size),
                priority=self._cache.priority(node),
                root_size=root_size,
            )
        expand_node(node, context, self.params, deep=self.deep_trials)
        self._cache.invalidate()
        report.explored_nodes += node.graph.node_count()
        # New children may immediately be expandable.
        node.queue = [c for c in node.children if self._keep_on_queue(c)]
        return EXPANDED

    def _decline_reason(self, node):
        """Why the Eq. 8 gate (or the fixed budget) said no — recorded
        verbatim in the decision provenance."""
        if not self.adaptive:
            return REASON_BUDGET
        if recursion_penalty(node, self.params) > 0.0:
            return REASON_RECURSION
        return REASON_THRESHOLD

    def _expansion_allowed(self, node, root):
        root_size = self._cache.s_irn(root)
        if self.adaptive:
            return should_expand(
                local_benefit(node),
                self._cache.ir_size(node),
                root_size,
                self.params,
            )
        # Fixed-threshold baseline: compare the call tree size against
        # T_e (§V, "Adaptive inlining threshold" experiment).
        return root_size <= self.fixed_te

    def _threshold_value(self, root_size):
        from repro.core.thresholds import expansion_threshold

        if self.adaptive:
            return expansion_threshold(root_size, self.params)
        return float(self.fixed_te)
