"""The compilation flight recorder: a bounded, always-cheap ring buffer.

JFR and ``-XX:+PrintInlining`` exist because a JIT's decisions are only
explainable *after the fact*: by the time a question is asked ("why
wasn't ``B.foo`` inlined into ``A.run``?", "which guard fired before
this deopt?") the compilation that answers it is long gone.  The
:class:`FlightRecorder` keeps the last ``capacity`` provenance records
— inlining verdicts with their Eq. 8 / Eq. 12 numbers, speculation
decisions with coverage and refutation history, deopt timeline entries
linking back to the guard that fired, tier transitions — in a fixed-size
ring, so the recent history is always available at a bounded memory
cost, no matter how long the VM has been running.

Records are plain dicts ``{"seq", "kind", "ts", "attrs"}``; the ring
evicts oldest-first.  :meth:`FlightRecorder.save` dumps the buffer as
JSONL **compatible with the PR 1 event schema** (``type``/``name``/
``span``/``ts``/``attrs``/``seq`` — the format ``EventLog.save``
writes), so one loader (:func:`read_flight_jsonl`) replays either a
flight dump or a full ``repro.tools.stats --events`` recording, and
``repro.tools.explain`` answers provenance questions from both.

Like every PR 1 hook the recorder is inert by default: the
:data:`NULL_FLIGHT` singleton on :data:`~repro.obs.NULL_OBS` drops
everything, and the deterministic cycle model is bit-identical with the
recorder on or off (differential-tested).
"""

import json
import time
from collections import deque


class FlightRecorder:
    """A bounded ring buffer of provenance records.

    Args:
        capacity: maximum records retained; the oldest are evicted
            first once the ring is full.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, ``flight.records`` / ``flight.evicted`` /
            ``flight.dumps`` counters track the recorder's activity.
    """

    enabled = True

    __slots__ = (
        "capacity",
        "_buffer",
        "_seq",
        "_t0",
        "recorded",
        "evicted",
        "_rec_counter",
        "_evict_counter",
        "_dump_counter",
    )

    def __init__(self, capacity=4096, metrics=None):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._buffer = deque(maxlen=capacity)
        self._seq = 0
        self._t0 = time.perf_counter()
        self.recorded = 0
        self.evicted = 0
        if metrics is not None and metrics.enabled:
            self._rec_counter = metrics.counter("flight.records")
            self._evict_counter = metrics.counter("flight.evicted")
            self._dump_counter = metrics.counter("flight.dumps")
        else:
            self._rec_counter = None
            self._evict_counter = None
            self._dump_counter = None

    # -- recording ---------------------------------------------------------

    def record(self, kind, /, **attrs):
        """Append one record; evicts the oldest when the ring is full.

        ``kind`` is positional-only so records may carry a ``kind``
        attribute of their own.
        """
        if len(self._buffer) == self.capacity:
            self.evicted += 1
            if self._evict_counter is not None:
                self._evict_counter.inc()
        self._buffer.append(
            {
                "seq": self._seq,
                "kind": kind,
                "ts": time.perf_counter() - self._t0,
                "attrs": attrs,
            }
        )
        self._seq += 1
        self.recorded += 1
        if self._rec_counter is not None:
            self._rec_counter.inc()

    # -- queries -----------------------------------------------------------

    def records(self):
        """The retained records, oldest first (a fresh list)."""
        return list(self._buffer)

    def of_kind(self, kind):
        return [r for r in self._buffer if r["kind"] == kind]

    def __len__(self):
        return len(self._buffer)

    def clear(self):
        self._buffer.clear()

    # -- persistence -------------------------------------------------------

    def dump(self, handle):
        """Write the buffer to *handle* as PR 1-schema JSONL events."""
        for record in self._buffer:
            handle.write(json.dumps(_as_event(record), default=str))
            handle.write("\n")
        if self._dump_counter is not None:
            self._dump_counter.inc()

    def save(self, path):
        """Dump the buffer to *path* as JSONL (see :meth:`dump`)."""
        with open(path, "w") as handle:
            self.dump(handle)


def _as_event(record):
    """One ring record as a PR 1 event-schema dict."""
    return {
        "type": "event",
        "name": record["kind"],
        "span": None,
        "ts": record["ts"],
        "attrs": record["attrs"],
        "seq": record["seq"],
    }


def read_flight_jsonl(path):
    """Read a recording back as flight records, oldest first.

    Accepts either a flight dump (:meth:`FlightRecorder.save`) or a
    full event-log JSONL (``EventLog.save`` / ``stats --events``): span
    begin/end records are skipped, point events become
    ``{"seq", "kind", "ts", "attrs"}`` records.
    """
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if raw.get("type") not in (None, "event"):
                continue  # span begin/end from a full event log
            records.append(
                {
                    "seq": raw.get("seq", len(records)),
                    "kind": raw.get("name", raw.get("kind")),
                    "ts": raw.get("ts", 0.0),
                    "attrs": raw.get("attrs") or {},
                }
            )
    return records


class NullFlightRecorder:
    """The default, inert recorder: drops everything."""

    __slots__ = ()
    enabled = False
    capacity = 0
    recorded = 0
    evicted = 0

    def record(self, kind, /, **attrs):
        pass

    def records(self):
        return []

    def of_kind(self, kind):
        return []

    def __len__(self):
        return 0

    def clear(self):
        pass

    def dump(self, handle):
        raise ValueError("cannot dump the null flight recorder")

    def save(self, path):
        raise ValueError("cannot save the null flight recorder")


NULL_FLIGHT = NullFlightRecorder()
