"""Mutable VM state: statics, output, allocation accounting, PRNG."""

from repro.runtime.values import ArrayRef, ObjRef, default_value
from repro.errors import LinkError

#: LCG constants (numerical recipes), masked to 63 bits.
_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK = (1 << 63) - 1


class VMState:
    """Everything mutable about one running VM instance.

    A fresh :class:`VMState` models the paper's "separate JVM instance":
    statics are re-zeroed, the PRNG is reseeded, profiles start empty.

    Attributes:
        program: the loaded :class:`~repro.bytecode.program.Program`.
        output: list of integers produced by the ``print`` intrinsic
            (the benchmark harness checksums it to validate runs).
        allocation_count: number of objects and arrays allocated.
        tick_counter: virtual clock backing the ``ticks`` intrinsic.
    """

    def __init__(self, program, seed=0x5EED):
        self.program = program
        self.output = []
        self.allocation_count = 0
        self.tick_counter = 0
        self._statics = {}
        self._rng_state = (seed ^ 0x9E3779B97F4A7C15) & _MASK
        self._init_statics()

    def _init_statics(self):
        for klass in self.program.classes.values():
            for field in klass.fields.values():
                if field.is_static:
                    self._statics[(klass.name, field.name)] = default_value(
                        field.type
                    )

    # ------------------------------------------------------------------
    # Statics
    # ------------------------------------------------------------------

    def get_static(self, class_name, field_name):
        declaring, _ = self.program.lookup_field(class_name, field_name)
        try:
            return self._statics[(declaring.name, field_name)]
        except KeyError:
            raise LinkError(
                "static field %s.%s not initialized" % (class_name, field_name)
            )

    def put_static(self, class_name, field_name, value):
        declaring, _ = self.program.lookup_field(class_name, field_name)
        self._statics[(declaring.name, field_name)] = value

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, class_name):
        """Allocate an object with default-initialized fields."""
        fields = {}
        for klass in self.program.superclass_chain(class_name):
            for field in klass.fields.values():
                if not field.is_static:
                    fields[field.name] = default_value(field.type)
        self.allocation_count += 1
        return ObjRef(class_name, fields)

    def allocate_array(self, elem_type, length):
        self.allocation_count += 1
        return ArrayRef(elem_type, length)

    # ------------------------------------------------------------------
    # Deterministic randomness
    # ------------------------------------------------------------------

    def next_random(self):
        self._rng_state = (self._rng_state * _LCG_A + _LCG_C) & _MASK
        return self._rng_state >> 16

    def reseed(self, seed):
        self._rng_state = (seed ^ 0x9E3779B97F4A7C15) & _MASK

    # ------------------------------------------------------------------
    # Output validation
    # ------------------------------------------------------------------

    def output_checksum(self):
        """Order-sensitive checksum of everything printed so far."""
        acc = 0
        for value in self.output:
            acc = (acc * 31 + (value & _MASK)) & _MASK
        return acc
