"""Ablation variants of the incremental inliner (§V's experiments).

Each factory returns the *full* incremental inliner with exactly one
heuristic replaced — matching the paper's methodology of "leaving all
other aspects of the algorithm as-is".
"""

from repro.core.inliner import IncrementalInliner
from repro.core.params import InlinerParams


def _params(size_factor):
    return InlinerParams.scaled(size_factor)


def tuned_inliner(size_factor=0.1, **param_overrides):
    """The paper's tuned configuration (adaptive + clustering + deep)."""
    params = _params(size_factor)
    for name, value in param_overrides.items():
        setattr(params, name, value)
    inliner = IncrementalInliner(params)
    inliner.name = "incremental"
    return inliner


def fixed_threshold_inliner(te=None, ti=None, size_factor=0.1):
    """Fixed expansion/inlining thresholds (Figures 6 and 7).

    *te* and *ti* are in paper units (call-tree / root node counts on
    Graal-sized graphs) and are scaled like every other size-typed
    constant; pass None to keep the corresponding threshold adaptive.
    """
    params = _params(size_factor)
    inliner = IncrementalInliner(
        params,
        adaptive_expansion=te is None,
        adaptive_inlining=ti is None,
        fixed_te=int(te * size_factor) if te is not None else 1000,
        fixed_ti=int(ti * size_factor) if ti is not None else 3000,
    )
    inliner.name = "fixed(te=%s,ti=%s)" % (te, ti)
    return inliner


def one_by_one_inliner(t1=None, t2=None, size_factor=0.1):
    """The 1-by-1 analysis policy (Figure 8): every method is its own
    cluster; optionally overrides the Eq. 12 constants, which is the
    sweep the paper runs."""
    params = _params(size_factor)
    if t1 is not None:
        params.t1 = t1
    if t2 is not None:
        params.t2 = t2 * size_factor
    inliner = IncrementalInliner(params, clustering=False)
    inliner.name = "1-by-1(t1=%s,t2=%s)" % (t1, t2)
    return inliner


def clustering_inliner(t1=None, t2=None, size_factor=0.1):
    """Clustering with the same (t1, t2) override hooks, for the
    sensitivity comparison of Figure 8."""
    params = _params(size_factor)
    if t1 is not None:
        params.t1 = t1
    if t2 is not None:
        params.t2 = t2 * size_factor
    inliner = IncrementalInliner(params, clustering=True)
    inliner.name = "cluster(t1=%s,t2=%s)" % (t1, t2)
    return inliner


def shallow_trials_inliner(size_factor=0.1):
    """Deep trials disabled (Figure 9's "no deep trials" bars):
    callsites are specialized only in the root compilation method."""
    params = _params(size_factor)
    inliner = IncrementalInliner(params, deep_trials=False)
    inliner.name = "shallow-trials"
    return inliner
