"""Metrics registry semantics: counters, gauges, histograms, and the
inertness of the no-op default."""

import pytest

from repro.obs import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("jit.compile.count")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(7)
        assert registry.counter("a.b").value == 7

    def test_value_shortcut(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(3)
        assert registry.value("x") == 3
        assert registry.value("missing") == 0
        assert registry.value("missing", default=-1) == -1


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("codecache.installed_bytes")
        gauge.set(100)
        assert gauge.value == 100
        gauge.set(64)
        assert gauge.value == 64
        gauge.add(6)
        assert gauge.value == 70


class TestHistogram:
    def test_count_total_min_max(self):
        histogram = Histogram("h")
        for value in (5, 1, 100, 7):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 113
        assert histogram.min == 1
        assert histogram.max == 100

    def test_percentiles_are_bucket_approximations(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.record(value)
        # Bucket upper bounds: p50 lands in the (20, 50] bucket,
        # p90/p99 in (50, 100].
        assert histogram.p50 == 50.0
        assert histogram.p90 == 100.0
        assert histogram.p99 == 100.0

    def test_single_value(self):
        histogram = Histogram("h")
        histogram.record(7)
        assert histogram.p50 == 7.0 == histogram.p99

    def test_overflow_bucket_reports_observed_max(self):
        histogram = Histogram("h", bounds=(10,))
        histogram.record(5)
        histogram.record(12345)
        assert histogram.max == 12345
        assert histogram.p99 == 12345.0

    def test_empty_percentile_is_zero(self):
        histogram = Histogram("h")
        assert histogram.p50 == 0.0
        assert histogram.percentile(0.99) == 0.0

    def test_mean(self):
        histogram = Histogram("h")
        histogram.record(10)
        histogram.record(20)
        assert histogram.mean == 15.0

    def test_snapshot_fields(self):
        histogram = Histogram("h")
        histogram.record(3)
        snap = histogram.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 1
        assert snap["p50"] == 3.0


class TestRegistry:
    def test_dotted_names_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("jit.compile.count").inc(2)
        registry.gauge("interp.ops").set(99)
        registry.histogram("jit.compile.nodes").record(17)
        snap = registry.snapshot()
        assert sorted(snap) == [
            "interp.ops", "jit.compile.count", "jit.compile.nodes",
        ]
        assert snap["jit.compile.count"] == {"type": "counter", "value": 2}
        assert snap["interp.ops"]["value"] == 99
        assert snap["jit.compile.nodes"]["count"] == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        assert "a" not in registry
        registry.counter("a")
        assert "a" in registry
        assert len(registry) == 1
        assert registry.names() == ["a"]

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NullMetricsRegistry().enabled is False


class TestNullRegistryIsInert:
    def test_writes_accumulate_nothing(self):
        counter = NULL_METRICS.counter("jit.compile.count")
        counter.inc()
        counter.inc(1000)
        assert counter.value == 0
        gauge = NULL_METRICS.gauge("g")
        gauge.set(123)
        gauge.add(7)
        assert gauge.value == 0
        histogram = NULL_METRICS.histogram("h")
        histogram.record(55)
        assert histogram.count == 0
        assert histogram.p99 == 0.0

    def test_snapshot_always_empty(self):
        NULL_METRICS.counter("a").inc()
        NULL_METRICS.gauge("b").set(1)
        NULL_METRICS.histogram("c").record(1)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.names() == []
        assert len(NULL_METRICS) == 0
        assert "a" not in NULL_METRICS

    def test_lookups_and_values(self):
        assert NULL_METRICS.get("anything") is None
        assert NULL_METRICS.value("anything") == 0

    def test_shared_instrument(self):
        # All null instruments are one shared object: no allocation on
        # instrumented paths when observability is off.
        assert NULL_METRICS.counter("a") is NULL_METRICS.gauge("b")
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("c")
