"""Writing a custom inlining policy against the public API.

An inlining policy is any object with ``run(graph, context)``. This
example implements "inline the single hottest direct callsite, once" —
a deliberately naive policy — plugs it into the VM, and compares it
against the paper's algorithm. It also shows the introspection hooks a
policy gets: profiled invoke frequencies, callee graph construction and
the shared optimization pipeline.

Run:  python examples/custom_policy.py
"""

from repro.baselines import tuned_inliner
from repro.baselines.common import inline_direct_call
from repro.core.inliner import InlineReport
from repro.ir.frequency import annotate_frequencies
from repro.jit import Engine, JitConfig
from repro.lang import compile_source


class HottestCallsiteInliner:
    """Inline only the hottest direct call in each compiled method."""

    name = "hottest-1"

    def run(self, graph, context):
        report = InlineReport()
        report.rounds = 1
        candidates = [
            invoke
            for invoke in graph.invokes()
            if invoke.kind in ("static", "special", "direct")
            and invoke.target is not None
            and not invoke.target.is_native
            and not invoke.target.never_inline
        ]
        if candidates:
            hottest = max(candidates, key=lambda invoke: invoke.frequency)
            inline_direct_call(graph, hottest, context, report)
            context.pipeline.simplify_only(graph)
            annotate_frequencies(graph)
        report.final_root_size = graph.node_count()
        return report


SOURCE = """
object Main {
  def scale(x: int, k: int): int { return x * k; }
  def offset(x: int): int { return x + 3; }
  def run(): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < 200) {
      acc = acc + Main.scale(i, 5);      // hot callsite
      if (i % 50 == 0) { acc = acc + Main.offset(i); }  // cold callsite
      i = i + 1;
    }
    return acc;
  }
}
"""


def steady_cycles(program, inliner):
    engine = Engine(program, JitConfig(hot_threshold=20), inliner=inliner)
    for _ in range(10):
        result = engine.run_iteration("Main", "run")
    return result, engine


def main():
    program = compile_source(SOURCE)
    for name, inliner in [
        ("no inlining", None),
        ("custom hottest-callsite policy", HottestCallsiteInliner()),
        ("incremental (the paper)", tuned_inliner(0.1)),
    ]:
        result, engine = steady_cycles(program, inliner)
        print("%-34s %8d cycles, value=%d, installed=%d" % (
            name, result.total_cycles, result.value,
            engine.code_cache.total_size))


if __name__ == "__main__":
    main()
