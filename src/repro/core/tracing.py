"""Inlining decision tracing.

Graal ships ``-Dgraal.TraceInlining`` precisely because inliners are
impossible to debug blind; this is our equivalent. An
:class:`InlineTracer` passed to
:class:`~repro.core.inliner.IncrementalInliner` records every decision
the algorithm makes — expansions with their Eq. 8 numbers, declines
with a structured *reason* (threshold, recursion depth, budget
exhausted), cluster formation, Eq. 12 verdicts, typeswitch emissions,
speculation verdicts with coverage and refutation history, round
boundaries and the termination reason — as structured events that can
be inspected programmatically or rendered as an indented log.

Every per-callsite event also carries its *provenance*: the callsite's
bytecode index, its caller path from the compilation root, and (when
known) the root method itself, so a recorded stream can answer "why
wasn't ``B.foo`` inlined into ``A.run``?" long after the compilation —
the substrate of the flight recorder and ``repro.tools.explain``.
"""


class TraceEvent:
    """One traced decision."""

    __slots__ = ("kind", "detail", "round_index")

    def __init__(self, kind, detail, round_index):
        self.kind = kind
        self.detail = detail
        self.round_index = round_index

    def __repr__(self):
        return "<%s r%d %s>" % (self.kind, self.round_index, self.detail)


#: Structured decline/reject reasons recorded with negative verdicts.
REASON_THRESHOLD = "threshold"
REASON_RECURSION = "recursion-depth"
REASON_BUDGET = "budget-exhausted"
REASON_REFUTED = "refuted-site"
REASON_FALLBACK = "polymorphic-fallback"


class InlineTracer:
    """Collects :class:`TraceEvent` objects during one inliner run."""

    def __init__(self):
        self.events = []
        self.round_index = 0
        self.root = None

    # -- hooks called by the inliner -------------------------------------

    def begin_compilation(self, root_name):
        """A new compilation root; subsequent events carry it as
        provenance."""
        self.root = root_name
        self._emit("begin", {"root": root_name})

    def begin_round(self, root_size):
        self.round_index += 1
        self._emit("round", {"root_size": root_size})

    def expanded(self, node, benefit, size, threshold, priority=None,
                 root_size=None):
        detail = {
            "method": _name(node),
            "benefit": benefit,
            "size": size,
            "threshold": threshold,
            "frequency": node.frequency,
        }
        if priority is not None:
            detail["priority"] = priority
        if root_size is not None:
            detail["root_size"] = root_size
        detail.update(_site(node))
        self._emit("expand", detail)

    def declined(self, node, benefit, size, threshold, reason=REASON_THRESHOLD,
                 priority=None, root_size=None):
        detail = {
            "method": _name(node),
            "benefit": benefit,
            "size": size,
            "threshold": threshold,
            "reason": reason,
        }
        if priority is not None:
            detail["priority"] = priority
        if root_size is not None:
            detail["root_size"] = root_size
        detail.update(_site(node))
        self._emit("decline", detail)

    def cluster(self, node, members, ratio):
        self._emit(
            "cluster",
            {"root": _name(node), "members": members, "ratio": ratio},
        )

    def inlined(self, node, ratio, threshold):
        detail = {"method": _name(node), "ratio": ratio, "threshold": threshold}
        detail.update(_site(node))
        self._emit("inline", detail)

    def rejected(self, node, ratio, threshold, reason=REASON_THRESHOLD):
        detail = {
            "method": _name(node),
            "ratio": ratio,
            "threshold": threshold,
            "reason": reason,
        }
        detail.update(_site(node))
        self._emit("reject", detail)

    def typeswitch(self, node, targets):
        detail = {"callsite": _name(node), "targets": targets}
        detail.update(_site(node))
        self._emit("typeswitch", detail)

    def speculation(self, node, speculate, reason, coverage, targets,
                    site=None):
        """The guard/fallback verdict at one polymorphic callsite.

        ``speculate`` is the decision (guard emitted vs conservative
        fallback kept); ``reason`` explains a False (low coverage,
        refuted site, megamorphic, deopt-budget, ...); ``coverage`` is
        the summed profile probability of the speculated targets;
        ``site`` the ``Method.qualified_name@bci`` guard key that a
        later ``deopt`` record links back to.
        """
        detail = {
            "callsite": _name(node),
            "speculate": bool(speculate),
            "reason": reason,
            "coverage": coverage,
            "targets": targets,
        }
        if site is not None:
            detail["site"] = site
        detail.update(_site(node))
        self._emit("speculation", detail)

    def terminated(self, reason, root_size):
        self._emit("terminate", {"reason": reason, "root_size": root_size})

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind):
        return [e for e in self.events if e.kind == kind]

    def render(self):
        """The whole trace as an indented, readable log."""
        lines = []
        for event in self.events:
            if event.kind == "round":
                lines.append(
                    "round %d (root %d nodes)"
                    % (event.round_index, event.detail["root_size"])
                )
            elif event.kind == "expand":
                d = event.detail
                lines.append(
                    "  expand  %-30s B_L=%-8.2f |ir|=%-5d thr=%.3f"
                    % (d["method"], d["benefit"], d["size"], d["threshold"])
                )
            elif event.kind == "decline":
                d = event.detail
                lines.append(
                    "  decline %-30s B_L=%-8.2f |ir|=%-5d thr=%.3f (%s)"
                    % (
                        d["method"],
                        d["benefit"],
                        d["size"],
                        d["threshold"],
                        d.get("reason", REASON_THRESHOLD),
                    )
                )
            elif event.kind == "cluster":
                d = event.detail
                lines.append(
                    "  cluster %-30s ratio=%-8.3f {%s}"
                    % (d["root"], d["ratio"], ", ".join(d["members"]))
                )
            elif event.kind == "inline":
                d = event.detail
                lines.append(
                    "  INLINE  %-30s ratio=%-8.3f thr=%.3f"
                    % (d["method"], d["ratio"], d["threshold"])
                )
            elif event.kind == "reject":
                d = event.detail
                lines.append(
                    "  keep    %-30s ratio=%-8.3f thr=%.3f (%s)"
                    % (
                        d["method"],
                        d["ratio"],
                        d["threshold"],
                        d.get("reason", REASON_THRESHOLD),
                    )
                )
            elif event.kind == "typeswitch":
                d = event.detail
                lines.append(
                    "  typeswitch at %s over {%s}"
                    % (d["callsite"], ", ".join(d["targets"]))
                )
            elif event.kind == "speculation":
                d = event.detail
                lines.append(
                    "  speculate at %s: %s (%s, coverage=%.2f)"
                    % (
                        d["callsite"],
                        "guard" if d["speculate"] else "fallback",
                        d["reason"],
                        d["coverage"],
                    )
                )
            elif event.kind == "terminate":
                d = event.detail
                lines.append(
                    "terminated: %s (root %d nodes)"
                    % (d["reason"], d["root_size"])
                )
        return "\n".join(lines)

    def _emit(self, kind, detail):
        if self.root is not None:
            detail.setdefault("root", self.root)
        event = TraceEvent(kind, detail, self.round_index)
        self.events.append(event)
        return event


def _name(node):
    if node.method is not None:
        return node.method.qualified_name
    invoke = node.invoke
    if invoke is not None:
        return "%s.%s" % (invoke.declared_class, invoke.method_name)
    return "<root>"


def _site(node):
    """Provenance of *node*'s callsite: bci plus the caller path from
    the compilation root (root first, immediate caller last)."""
    detail = {}
    invoke = node.invoke
    if invoke is not None and invoke.bci >= 0:
        detail["bci"] = invoke.bci
    ancestors = list(node.ancestors())
    if ancestors:
        detail["path"] = [_name(a) for a in reversed(ancestors)]
        detail["depth"] = len(ancestors)
    return detail
