"""Figure 9 — the headline comparison.

Four bars per benchmark in the paper: the proposed inliner, the same
inliner without deep trials, open-source Graal's greedy inliner, and
HotSpot C2. The claims we reproduce:

1. the proposed inliner outperforms the greedy baseline overall (the
   paper: "on all benchmarks except pmd ... in some cases by several
   times");
2. it outperforms the C2-style baseline overall, with the largest wins
   on the abstraction-heavy (Scala-flavoured) workloads;
3. deep inlining trials contribute on the Scala-flavoured side
   (actors/factorie/scaladoc/gauss-mix-style benchmarks) while having
   little effect on the Java-flavoured DaCapo side.
"""

from benchmarks.conftest import INSTANCES, figure_benchmarks, geomean, speedups
from repro.bench.harness import print_table, run_matrix

CONFIGS = ["incremental", "shallow-trials", "greedy", "c2", "no-inline"]


def test_fig9_comparison(benchmark, steady_engine_factory):
    results = run_matrix(
        CONFIGS, benchmarks=figure_benchmarks(), instances=INSTANCES
    )
    print_table(
        results, CONFIGS, metric="time",
        title="Figure 9: proposed vs baselines (steady cycles)",
    )
    print_table(
        results,
        ["incremental", "shallow-trials", "greedy", "c2"],
        metric="speedup",
        baseline="c2",
        title="Figure 9 normalized: speedup over C2",
    )

    vs_greedy = speedups(results, "greedy", "incremental")
    vs_c2 = speedups(results, "c2", "incremental")
    vs_none = speedups(results, "no-inline", "incremental")
    print("geomean speedup vs greedy: %.3f" % geomean(vs_greedy.values()))
    print("geomean speedup vs c2:     %.3f" % geomean(vs_c2.values()))
    print("geomean speedup vs none:   %.3f" % geomean(vs_none.values()))

    # Claim 1 & 2: overall wins (allowing individual losses like pmd /
    # lusearch / scalatest in the paper).
    assert geomean(vs_greedy.values()) >= 1.0
    assert geomean(vs_c2.values()) >= 1.0
    # Inlining at all is a large win over no inlining.
    assert geomean(vs_none.values()) > 1.5

    # Claim 3: deep trials matter somewhere (≥3% on some benchmark).
    deep_gain = speedups(results, "shallow-trials", "incremental")
    print("deep-trial gains: %s" % {k: round(v, 3) for k, v in deep_gain.items()})
    assert max(deep_gain.values()) >= 1.02, (
        "deep trials contributed nowhere: %r" % deep_gain
    )
    assert geomean(deep_gain.values()) >= 0.99  # and never hurt overall

    engine = steady_engine_factory("gauss-mix", "incremental")
    benchmark(engine.run_iteration, "Main", "run")
