"""Installed-code bookkeeping.

Tracks compiled machine code per method and the total installed size —
the quantity the paper reports in Figure 10 and Table I, and the input
to the instruction-cache pressure model.

With observability enabled the cache records install/evict/hit/miss
metrics (``codecache.*``); a lookup miss means the call fell back to
the interpreter tier.

Two implementations share the same surface:

- :class:`CodeCache` — the classic per-engine cache (one VM instance,
  unbounded, the paper's measurement protocol).
- :class:`SharedCodeCache` — the multi-tenant serving cache
  (:mod:`repro.serve`): one sharded store for the whole process with
  per-tenant byte quotas and LRU- or hotness-driven eviction under a
  global memory budget. Engines see it through a per-tenant
  :class:`TenantCacheView`, which implements the :class:`CodeCache`
  surface so the engine code is identical either way.
"""

import threading

from repro.obs import NULL_OBS


class CodeCache:
    """Mapping from methods to installed machine code."""

    def __init__(self, obs=None):
        self._code = {}
        #: OSR continuations, keyed ``(method, backedge bci)`` — one
        #: loop may be entered at several backedges and each gets its
        #: own continuation code. Sizes count into ``total_size``.
        self._osr_code = {}
        self.total_size = 0
        #: Total successful ``install`` calls (first installs *plus*
        #: replacements — the historical meaning, kept for dashboards).
        self.install_count = 0
        #: The subset of ``install_count`` that replaced existing code
        #: (recompilations); ``install_count - reinstalls`` is the
        #: number of distinct first installs.
        self.reinstalls = 0
        obs = obs if obs is not None else NULL_OBS
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics
            self._hits = metrics.counter("codecache.hits")
            self._misses = metrics.counter("codecache.misses")
            self._installs = metrics.counter("codecache.installs")
            self._reinstalls = metrics.counter("codecache.reinstalls")
            self._evictions = metrics.counter("codecache.evictions")
            self._bytes = metrics.gauge("codecache.installed_bytes")
        else:
            self._hits = None
            self._misses = None
            self._installs = None
            self._reinstalls = None
            self._evictions = None
            self._bytes = None

    def get(self, method):
        code = self._code.get(method)
        if self._hits is not None:
            (self._hits if code is not None else self._misses).inc()
        return code

    def __contains__(self, method):
        return method in self._code

    def install(self, method, code):
        # On reinstall the previous code's size leaves the total before
        # the new size enters, so ``total_size`` always equals the sum
        # of currently installed code — the *delta* across a reinstall
        # is legitimately negative when the recompile shrank the code.
        previous = self._code.get(method)
        if previous is not None:
            self.total_size -= previous.size
            self.reinstalls += 1
            if self._reinstalls is not None:
                self._reinstalls.inc()
        self._code[method] = code
        self.total_size += code.size
        self.install_count += 1
        if self._installs is not None:
            self._installs.inc()
            self._bytes.set(self.total_size)

    def evict(self, method):
        """Drop *method*'s installed code; returns True if it was present."""
        code = self._code.pop(method, None)
        if code is None:
            return False
        self.total_size -= code.size
        if self._evictions is not None:
            self._evictions.inc()
            self._bytes.set(self.total_size)
        return True

    # ------------------------------------------------------------------
    # OSR continuations
    # ------------------------------------------------------------------

    def get_osr(self, method, bci):
        """Installed OSR continuation for ``(method, bci)``, or None.

        Counts into the same hit/miss metrics as whole-method lookups —
        a miss here is the trigger for an OSR compilation.
        """
        code = self._osr_code.get((method, bci))
        if self._hits is not None:
            (self._hits if code is not None else self._misses).inc()
        return code

    def install_osr(self, method, bci, code):
        previous = self._osr_code.get((method, bci))
        if previous is not None:
            self.total_size -= previous.size
            self.reinstalls += 1
            if self._reinstalls is not None:
                self._reinstalls.inc()
        self._osr_code[(method, bci)] = code
        self.total_size += code.size
        self.install_count += 1
        if self._installs is not None:
            self._installs.inc()
            self._bytes.set(self.total_size)

    def evict_osr(self, method, bci):
        """Drop one OSR continuation; returns True if it was present."""
        code = self._osr_code.pop((method, bci), None)
        if code is None:
            return False
        self.total_size -= code.size
        if self._evictions is not None:
            self._evictions.inc()
            self._bytes.set(self.total_size)
        return True

    def osr_count(self):
        return len(self._osr_code)

    def installed_methods(self):
        return list(self._code)

    def size_of(self, method):
        code = self._code.get(method)
        return code.size if code is not None else 0

    def __len__(self):
        return len(self._code)


class _Entry:
    """One installed code object in the shared cache."""

    __slots__ = ("code", "size", "tick", "tenant", "method", "osr_bci")

    def __init__(self, code, tick, tenant, method, osr_bci=None):
        self.code = code
        self.size = code.size
        self.tick = tick
        self.tenant = tenant
        self.method = method
        self.osr_bci = osr_bci  # None for whole-method entries

    @property
    def is_osr(self):
        return self.osr_bci is not None


class SharedCodeCache:
    """Process-wide installed-code store for multi-tenant serving.

    - **Sharded**: entries are spread over ``shards`` dicts by key hash;
      lookups are lock-free dict reads (atomic under the GIL), so hot
      dispatch paths of concurrent tenants never contend.
    - **Budgeted**: a global byte ``budget`` bounds the sum of installed
      code across all tenants; per-tenant byte quotas bound each
      tenant's share. Exceeding either evicts victims.
    - **Victim selection**: ``policy="lru"`` evicts the
      least-recently-dispatched entry; ``policy="hotness"`` evicts the
      entry whose method currently has the lowest profile hotness (via
      the ``hotness_fn(tenant, method)`` callback — the PR 1/4
      telemetry signal). Evicting a whole-method entry also drops its
      OSR side-table entries: a continuation without its root method is
      dead weight.
    - **Reinstall accounting**: evicted methods that later recompile
      count into ``reinstalls_after_evict`` — the thrash signal a
      too-small budget produces.

    An entry larger than its tenant's quota (or the global budget) is
    rejected outright (``install`` returns False) — the engine marks
    the method compile-failed rather than thrash the cache.
    """

    def __init__(self, budget=None, shards=8, policy="lru",
                 tenant_quota=None, hotness_fn=None, obs=None):
        if policy not in ("lru", "hotness"):
            raise ValueError("unknown eviction policy %r" % (policy,))
        self.budget = budget
        self.policy = policy
        self.default_quota = tenant_quota
        self.hotness_fn = hotness_fn
        self._shard_count = max(1, int(shards))
        self._shards = [{} for _ in range(self._shard_count)]
        self._lock = threading.RLock()
        self._tick = 0
        self.total_size = 0
        self._tenant_bytes = {}
        self._quotas = {}
        self._install_counts = {}
        self._reinstalls = {}
        self._evictions = {}
        self._reinstalls_after_evict = {}
        self._evicted_methods = set()  # (tenant, method) pairs
        self.eviction_count = 0
        self.quota_rejections = 0
        obs = obs if obs is not None else NULL_OBS
        self._obs = obs
        if obs.enabled:
            metrics = obs.metrics
            self._m_hits = metrics.counter("codecache.hits")
            self._m_misses = metrics.counter("codecache.misses")
            self._m_installs = metrics.counter("codecache.installs")
            self._m_evictions = metrics.counter("codecache.shared.evictions")
            self._m_rejections = metrics.counter(
                "codecache.shared.quota_rejections"
            )
            self._m_bytes = metrics.gauge("codecache.installed_bytes")
        else:
            self._m_hits = self._m_misses = None
            self._m_installs = self._m_evictions = None
            self._m_rejections = self._m_bytes = None

    # ------------------------------------------------------------------
    # Tenant administration
    # ------------------------------------------------------------------

    def view(self, tenant, quota=None):
        """The per-tenant :class:`CodeCache`-shaped facade."""
        if quota is not None:
            self._quotas[tenant] = quota
        return TenantCacheView(self, tenant)

    def set_quota(self, tenant, quota):
        self._quotas[tenant] = quota

    def quota_of(self, tenant):
        return self._quotas.get(tenant, self.default_quota)

    def drop_tenant(self, tenant):
        """Evict every entry of *tenant* (tenant eviction); returns the
        number of bytes reclaimed."""
        with self._lock:
            reclaimed = 0
            for shard in self._shards:
                for key in [k for k in shard if k[0] == tenant]:
                    entry = shard.pop(key)
                    reclaimed += entry.size
            self.total_size -= reclaimed
            self._tenant_bytes.pop(tenant, None)
            if self._m_bytes is not None:
                self._m_bytes.set(self.total_size)
            return reclaimed

    # ------------------------------------------------------------------
    # Lookup / install / evict (tenant-scoped)
    # ------------------------------------------------------------------

    def _shard_of(self, key):
        return self._shards[hash(key) % self._shard_count]

    def _get(self, key):
        entry = self._shard_of(key).get(key)
        if entry is not None:
            self._tick += 1
            entry.tick = self._tick
            if self._m_hits is not None:
                self._m_hits.inc()
            return entry.code
        if self._m_misses is not None:
            self._m_misses.inc()
        return None

    def get(self, tenant, method):
        return self._get((tenant, method))

    def get_osr(self, tenant, method, bci):
        return self._get((tenant, method, bci))

    def contains(self, tenant, method):
        return (tenant, method) in self._shard_of((tenant, method))

    def size_of(self, tenant, method):
        """Entry size without touching its recency (introspection)."""
        entry = self._shard_of((tenant, method)).get((tenant, method))
        return entry.size if entry is not None else 0

    def _install(self, tenant, key, entry):
        quota = self.quota_of(tenant)
        if quota is not None and entry.size > quota:
            self.quota_rejections += 1
            if self._m_rejections is not None:
                self._m_rejections.inc()
            return False
        if self.budget is not None and entry.size > self.budget:
            self.quota_rejections += 1
            if self._m_rejections is not None:
                self._m_rejections.inc()
            return False
        shard = self._shard_of(key)
        previous = shard.get(key)
        if previous is not None:
            self._account_removal(previous)
            self._reinstalls[tenant] = self._reinstalls.get(tenant, 0) + 1
        shard[key] = entry
        self.total_size += entry.size
        self._tenant_bytes[tenant] = (
            self._tenant_bytes.get(tenant, 0) + entry.size
        )
        self._install_counts[tenant] = (
            self._install_counts.get(tenant, 0) + 1
        )
        if not entry.is_osr and (tenant, entry.method) in self._evicted_methods:
            self._evicted_methods.discard((tenant, entry.method))
            self._reinstalls_after_evict[tenant] = (
                self._reinstalls_after_evict.get(tenant, 0) + 1
            )
        self._enforce(entry)
        if self._m_installs is not None:
            self._m_installs.inc()
            self._m_bytes.set(self.total_size)
        return True

    def install(self, tenant, method, code):
        with self._lock:
            self._tick += 1
            entry = _Entry(code, self._tick, tenant, method)
            return self._install(tenant, (tenant, method), entry)

    def install_osr(self, tenant, method, bci, code):
        with self._lock:
            self._tick += 1
            entry = _Entry(code, self._tick, tenant, method, osr_bci=bci)
            return self._install(tenant, (tenant, method, bci), entry)

    def _account_removal(self, entry):
        self.total_size -= entry.size
        tenant = entry.tenant
        remaining = self._tenant_bytes.get(tenant, 0) - entry.size
        self._tenant_bytes[tenant] = remaining

    def _remove(self, key):
        entry = self._shard_of(key).pop(key, None)
        if entry is None:
            return None
        self._account_removal(entry)
        return entry

    def evict(self, tenant, method):
        """Engine-driven invalidation (deopt): drop just this entry."""
        with self._lock:
            entry = self._remove((tenant, method))
            if entry is None:
                return False
            if self._m_bytes is not None:
                self._m_bytes.set(self.total_size)
            return True

    def evict_osr(self, tenant, method, bci):
        with self._lock:
            entry = self._remove((tenant, method, bci))
            if entry is None:
                return False
            if self._m_bytes is not None:
                self._m_bytes.set(self.total_size)
            return True

    # ------------------------------------------------------------------
    # Policy-driven eviction
    # ------------------------------------------------------------------

    def _score(self, entry):
        """Victim ordering key: evict the smallest score first."""
        if self.policy == "hotness" and self.hotness_fn is not None:
            hotness = self.hotness_fn(entry.tenant, entry.method)
            # Ties (same hotness) fall back to LRU order.
            return (hotness, entry.tick)
        return (entry.tick,)

    def _candidates(self, protect, tenant=None):
        for shard in self._shards:
            for entry in shard.values():
                if entry is protect:
                    continue
                if tenant is not None and entry.tenant != tenant:
                    continue
                yield entry

    def _evict_entry(self, victim):
        """Remove *victim* and — for whole-method entries — its OSR
        side-table entries (a continuation without its root is dead)."""
        tenant = victim.tenant
        if victim.is_osr:
            keys = [(tenant, victim.method, victim.osr_bci)]
        else:
            keys = [(tenant, victim.method)]
            for shard in self._shards:
                keys.extend(
                    key
                    for key, entry in shard.items()
                    if (
                        entry.is_osr
                        and entry.tenant == tenant
                        and entry.method is victim.method
                    )
                )
        for key in keys:
            entry = self._remove(key)
            if entry is None:
                continue
            self.eviction_count += 1
            self._evictions[tenant] = self._evictions.get(tenant, 0) + 1
            if not entry.is_osr:
                self._evicted_methods.add((tenant, entry.method))
            if self._m_evictions is not None:
                self._m_evictions.inc()
            obs = self._obs
            if obs.enabled:
                obs.events.emit(
                    "codecache.evict",
                    tenant=str(tenant),
                    method=entry.method.qualified_name,
                    osr_bci=entry.osr_bci,
                    policy=self.policy,
                    size=entry.size,
                )
            if obs.flight.enabled:
                obs.flight.record(
                    "codecache.evict",
                    tenant=str(tenant),
                    method=entry.method.qualified_name,
                    osr_bci=entry.osr_bci,
                    policy=self.policy,
                    size=entry.size,
                )

    def _enforce(self, protect):
        """Evict until the installing tenant is under quota and the
        process is under the global budget. *protect* (the entry just
        installed) is never a victim."""
        tenant = protect.tenant
        quota = self.quota_of(tenant)
        while (
            quota is not None
            and self._tenant_bytes.get(tenant, 0) > quota
        ):
            victims = sorted(
                self._candidates(protect, tenant=tenant), key=self._score
            )
            if not victims:
                break
            self._evict_entry(victims[0])
        while self.budget is not None and self.total_size > self.budget:
            victims = sorted(self._candidates(protect), key=self._score)
            if not victims:
                break
            self._evict_entry(victims[0])
        if self._m_bytes is not None:
            self._m_bytes.set(self.total_size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def tenant_size(self, tenant):
        return self._tenant_bytes.get(tenant, 0)

    def method_count(self, tenant):
        # Under the lock: other tenants' threads install/evict while we
        # walk the shards (their dispatch checks max_compiled_methods).
        with self._lock:
            count = 0
            for shard in self._shards:
                for entry in shard.values():
                    if entry.tenant == tenant and not entry.is_osr:
                        count += 1
            return count

    def osr_count(self, tenant=None):
        with self._lock:
            count = 0
            for shard in self._shards:
                for entry in shard.values():
                    if entry.is_osr and (
                        tenant is None or entry.tenant == tenant
                    ):
                        count += 1
            return count

    def installed_methods(self, tenant):
        with self._lock:
            return [
                entry.method
                for shard in self._shards
                for entry in shard.values()
                if entry.tenant == tenant and not entry.is_osr
            ]

    def install_count_of(self, tenant):
        return self._install_counts.get(tenant, 0)

    def reinstalls_of(self, tenant):
        return self._reinstalls.get(tenant, 0)

    def evictions_of(self, tenant):
        return self._evictions.get(tenant, 0)

    def reinstalls_after_evict(self, tenant):
        return self._reinstalls_after_evict.get(tenant, 0)

    def __len__(self):
        return sum(len(shard) for shard in self._shards)


class TenantCacheView:
    """One tenant's :class:`CodeCache`-shaped window onto the shared
    cache. ``total_size`` is deliberately the *global* installed size:
    instruction-cache pressure is a property of the process, not of one
    tenant — sharing the icache penalty across tenants is the point of
    a shared cache."""

    __slots__ = ("_shared", "tenant")

    def __init__(self, shared, tenant):
        self._shared = shared
        self.tenant = tenant

    @property
    def total_size(self):
        return self._shared.total_size

    @property
    def tenant_size(self):
        return self._shared.tenant_size(self.tenant)

    @property
    def install_count(self):
        return self._shared.install_count_of(self.tenant)

    @property
    def reinstalls(self):
        return self._shared.reinstalls_of(self.tenant)

    @property
    def evictions(self):
        return self._shared.evictions_of(self.tenant)

    @property
    def reinstalls_after_evict(self):
        return self._shared.reinstalls_after_evict(self.tenant)

    def get(self, method):
        return self._shared.get(self.tenant, method)

    def __contains__(self, method):
        return self._shared.contains(self.tenant, method)

    def install(self, method, code):
        return self._shared.install(self.tenant, method, code)

    def evict(self, method):
        return self._shared.evict(self.tenant, method)

    def get_osr(self, method, bci):
        return self._shared.get_osr(self.tenant, method, bci)

    def install_osr(self, method, bci, code):
        return self._shared.install_osr(self.tenant, method, bci, code)

    def evict_osr(self, method, bci):
        return self._shared.evict_osr(self.tenant, method, bci)

    def osr_count(self):
        return self._shared.osr_count(self.tenant)

    def installed_methods(self):
        return self._shared.installed_methods(self.tenant)

    def size_of(self, method):
        return self._shared.size_of(self.tenant, method)

    def __len__(self):
        return self._shared.method_count(self.tenant)
