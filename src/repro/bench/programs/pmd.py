"""pmd — static program analysis.

pmd walks Java ASTs with visitors. We model the visitor pattern over a
synthetic AST: a double-dispatch ``accept``/``visit`` structure with
two concrete visitors (a complexity metric and a rule checker), the
classic OO-abstraction workload. The paper reports ≈5.5% over C2 and
notes pmd is the one benchmark where open-source Graal edges out the
new inliner.
"""

DESCRIPTION = "double-dispatch visitors over a synthetic AST"
ITERATIONS = 12

SOURCE = """
trait AstNode {
  def accept(v: Visitor): int;
}

trait Visitor {
  def visitLiteral(n: Literal): int;
  def visitBinary(n: Binary): int;
  def visitCall(n: CallNode): int;
  def visitBranch(n: Branch): int;
}

class Literal implements AstNode {
  var value: int;
  def init(v: int): void { this.value = v; }
  def accept(v: Visitor): int { return v.visitLiteral(this); }
}

class Binary implements AstNode {
  var left: AstNode;
  var right: AstNode;
  def init(l: AstNode, r: AstNode): void { this.left = l; this.right = r; }
  def accept(v: Visitor): int { return v.visitBinary(this); }
}

class CallNode implements AstNode {
  var target: AstNode;
  var argc: int;
  def init(t: AstNode, argc: int): void { this.target = t; this.argc = argc; }
  def accept(v: Visitor): int { return v.visitCall(this); }
}

class Branch implements AstNode {
  var cond: AstNode;
  var thenB: AstNode;
  var elseB: AstNode;
  def init(c: AstNode, t: AstNode, e: AstNode): void {
    this.cond = c; this.thenB = t; this.elseB = e;
  }
  def accept(v: Visitor): int { return v.visitBranch(this); }
}

class Complexity implements Visitor {
  def visitLiteral(n: Literal): int { return 0; }
  def visitBinary(n: Binary): int {
    return n.left.accept(this) + n.right.accept(this);
  }
  def visitCall(n: CallNode): int { return 1 + n.target.accept(this); }
  def visitBranch(n: Branch): int {
    return 1 + n.cond.accept(this) + n.thenB.accept(this) + n.elseB.accept(this);
  }
}

class MagicNumberRule implements Visitor {
  def visitLiteral(n: Literal): int {
    if (n.value > 99 || n.value < 0 - 99) { return 1; }
    return 0;
  }
  def visitBinary(n: Binary): int {
    return n.left.accept(this) + n.right.accept(this);
  }
  def visitCall(n: CallNode): int { return n.target.accept(this); }
  def visitBranch(n: Branch): int {
    return n.cond.accept(this) + n.thenB.accept(this) + n.elseB.accept(this);
  }
}

object Main {
  static var tree: AstNode;

  def build(depth: int, seed: int): AstNode {
    if (depth == 0) { return new Literal(seed * 37 % 400 - 100); }
    var kind: int = seed % 4;
    if (kind == 0 || kind == 1) {
      return new Binary(Main.build(depth - 1, seed * 3 + 1),
                        Main.build(depth - 1, seed * 5 + 2));
    }
    if (kind == 3) {
      return new CallNode(Main.build(depth - 1, seed * 7 + 3), seed % 4);
    }
    return new Branch(Main.build(depth - 1, seed * 11 + 4),
                      Main.build(depth - 1, seed * 13 + 5),
                      Main.build(depth - 1, seed * 17 + 6));
  }

  def run(): int {
    if (Main.tree == null) { Main.tree = Main.build(8, 7); }
    var cx: Visitor = new Complexity();
    var rule: Visitor = new MagicNumberRule();
    var acc: int = 0;
    var pass: int = 0;
    while (pass < 2) {
      acc = acc + Main.tree.accept(cx) + Main.tree.accept(rule);
      pass = pass + 1;
    }
    return acc;
  }
}
"""
