"""The tiered virtual machine: interpret, profile, compile, execute.

This package realizes the paper's *online inlining problem* setting
(§II): methods execute in the profiling interpreter until hot, at which
point a compilation request is issued; the compiler — with whichever
inlining policy is installed — sees only the method it was asked to
compile plus profiles, never the future request stream.
"""

from repro.jit.config import JitConfig
from repro.jit.codecache import CodeCache
from repro.jit.compiler import JitCompiler, CompileContext
from repro.jit.engine import Engine, IterationResult

__all__ = [
    "JitConfig",
    "CodeCache",
    "JitCompiler",
    "CompileContext",
    "Engine",
    "IterationResult",
]
