"""Relative block and callsite frequency annotation.

The paper's local benefit (Eq. 4) multiplies by the callsite's
execution frequency f(n) relative to the compilation root. Graal derives
those frequencies from profiled branch probabilities and loop counts;
this module does the same over our IR:

1. natural loops get a *loop frequency* — the expected trip count
   implied by the profiled probability mass flowing around backedges;
2. each block gets a relative frequency — probability-weighted flow
   from the entry, with loop headers scaled by their loop frequency;
3. each invoke inherits its block's frequency.

Loop frequencies are capped so that a profile claiming a never-exiting
loop cannot produce infinities (Graal caps similarly).
"""

from repro.ir.dominators import compute_dominators, compute_loops
from repro.ir import nodes as n

#: Maximum trip-count estimate for a single loop.
MAX_LOOP_FREQUENCY = 10_000.0

#: Cap on a block's total relative frequency (product over loop nests).
MAX_BLOCK_FREQUENCY = 1e9


def annotate_frequencies(graph):
    """Set ``block.frequency`` for every block and ``invoke.frequency``
    for every call in *graph*; returns the computed loops list."""
    order = graph.reverse_postorder()
    if not order:
        return []
    idom = compute_dominators(graph)
    loops = compute_loops(graph, idom)
    backedges = set()
    header_of = {}
    for loop in loops:
        for pred in loop.backedge_preds:
            backedges.add((pred, loop.header))
    for loop in loops:  # innermost-first
        loop.frequency = _local_loop_frequency(loop, loops, backedges)
        header_of[loop.header] = loop

    freq = {block: 0.0 for block in order}
    freq[order[0]] = 1.0
    for block in order:
        if block is not order[0]:
            total = 0.0
            for pred in block.preds:
                if (pred, block) in backedges or pred not in freq:
                    continue
                total += freq.get(pred, 0.0) * _edge_probability(pred, block)
            freq[block] = total
        loop = header_of.get(block)
        if loop is not None:
            freq[block] *= loop.frequency
        if freq[block] > MAX_BLOCK_FREQUENCY:
            freq[block] = MAX_BLOCK_FREQUENCY

    for block in order:
        block.frequency = freq[block]
        for node in block.instrs:
            if isinstance(node, n.InvokeNode):
                node.frequency = block.frequency
    # Unreachable blocks keep frequency 0 so nothing downstream counts them.
    reachable = set(order)
    for block in graph.blocks:
        if block not in reachable:
            block.frequency = 0.0
            for node in block.instrs:
                if isinstance(node, n.InvokeNode):
                    node.frequency = 0.0
    return loops


def _edge_probability(pred, succ):
    """Probability that control leaving *pred* goes to *succ*."""
    term = pred.terminator
    if isinstance(term, n.IfNode):
        probability = 0.0
        if term.true_block is succ:
            probability += term.probability
        if term.false_block is succ:
            probability += 1.0 - term.probability
        return probability
    return 1.0


def _local_loop_frequency(loop, loops, backedges):
    """Expected trip count of *loop* from the backedge probability mass.

    Runs an acyclic probability propagation inside the loop body with
    the header seeded to 1; inner loops (already solved, since we go
    innermost-first) contribute their own frequency multiplicatively.
    """
    body = loop.blocks
    order = _loop_rpo(loop, backedges)
    local = {block: 0.0 for block in order}
    local[loop.header] = 1.0
    inner_headers = {
        other.header: other
        for other in loops
        if other is not loop and other.header in body and other.blocks <= body
    }
    for block in order:
        if block is not loop.header:
            total = 0.0
            for pred in block.preds:
                if pred not in local or (pred, block) in backedges:
                    continue
                total += local[pred] * _edge_probability(pred, block)
            local[block] = total
            inner = inner_headers.get(block)
            if inner is not None:
                local[block] *= inner.frequency
    mass = 0.0
    for pred in loop.backedge_preds:
        if pred in local:
            mass += local[pred] * _edge_probability(pred, loop.header)
    if mass >= 1.0:
        return MAX_LOOP_FREQUENCY
    frequency = 1.0 / (1.0 - mass)
    return min(frequency, MAX_LOOP_FREQUENCY)


def _loop_rpo(loop, backedges):
    """Reverse postorder restricted to the loop body, backedges cut."""
    seen = set()
    postorder = []

    def visit(start):
        stack = [(start, iter(_succs(start)))]
        seen.add(start)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(_succs(succ))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    def _succs(block):
        return [
            succ
            for succ in block.successors()
            if succ in loop.blocks and (block, succ) not in backedges
        ]

    visit(loop.header)
    return list(reversed(postorder))
