"""Wall-clock performance harness for the fast execution paths.

The cycle model (:mod:`repro.bench`) answers the paper's questions —
it is deterministic and host-independent. This tool answers the other
question a JIT writer has: how much *host* time the VM itself burns,
and how much the fast paths recover. It runs a pinned workload matrix:

- **interpreter-bound**: pure interpretation (compilation disabled),
  classic dispatch loop vs the pre-decoded threaded-code tier
  (``Interpreter(..., predecode=True)``).
- **compile-bound**: a low threshold and the tuned incremental inliner
  so compilation dominates, reference ``Graph.copy`` + no trial memo
  vs the slot-based fast copy + trial memo. Times the ``compile``
  phase timer, not the whole process.
- **mixed**: the default tiered configuration, everything-classic vs
  everything-fast, timing whole iterations.

Every variant pair is checked for semantic equivalence (iteration
values, per-iteration cycle sequences, and interpreted op counts must
be bit-identical); the exit status reflects *only* that check, never
timing, so CI can run this as a smoke test without flaking on noisy
hosts. Timings use interleaved repeats and report the median.

Examples::

    python -m repro.tools.perf                  # full matrix
    python -m repro.tools.perf --quick          # CI smoke (~seconds)
    python -m repro.tools.perf -o BENCH_wall.json
"""

import argparse
import json
import statistics
import sys
import time

import repro.core.priorities as priorities_mod
import repro.ir.graph as graph_mod
from repro.baselines import tuned_inliner
from repro.bench.suite import get_benchmark
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.obs import Observability

ENTRY = ("Main", "run")
SEED = 0x5EED


# ----------------------------------------------------------------------
# Measurement primitives
# ----------------------------------------------------------------------


class _RunResult:
    __slots__ = (
        "wall", "compile_seconds", "values", "cycles", "ops", "output",
    )

    def __init__(self, wall, compile_seconds, values, cycles, ops, output):
        self.wall = wall
        self.compile_seconds = compile_seconds
        self.values = values
        self.cycles = cycles
        self.ops = ops
        self.output = output

    def semantics(self):
        """The parts that must match between variants."""
        return (self.values, self.cycles, self.ops)

    def observable(self):
        """Values + printed output only — the cross-*tier* contract.

        Used when baseline and fast variant legitimately run different
        tiers (interpreter vs compiled code), so per-iteration cycles
        and interpreted op counts are expected to differ.
        """
        return (self.values, self.output)


def _run_once(program, config_factory, inliner_factory, iterations,
              fast_copy, time_compile, priority_cache=True, warmup=0):
    """One fresh VM instance; returns a :class:`_RunResult`.

    *warmup* iterations run before the clock starts (steady-state
    timing: compilation settles outside the measured window). Their
    values and cycles still join the semantic comparison — both
    variants warm up identically, only the clock ignores them.
    """
    saved = graph_mod.FAST_COPY
    saved_cache = priorities_mod.CACHE_ENABLED
    graph_mod.FAST_COPY = fast_copy
    priorities_mod.CACHE_ENABLED = priority_cache
    try:
        obs = Observability() if time_compile else None
        engine = Engine(
            program,
            config_factory(),
            inliner=inliner_factory() if inliner_factory is not None else None,
            seed=SEED,
            obs=obs,
        )
        values = []
        cycles = []
        for _ in range(warmup):
            result = engine.run_iteration(*ENTRY)
            values.append(result.value)
            cycles.append(result.total_cycles)
        start = time.perf_counter()
        for _ in range(iterations):
            result = engine.run_iteration(*ENTRY)
            values.append(result.value)
            cycles.append(result.total_cycles)
        wall = time.perf_counter() - start
        compile_seconds = (
            obs.timers.seconds("compile") if obs is not None else 0.0
        )
        return _RunResult(
            wall, compile_seconds, values, cycles,
            engine.interpreter.ops_executed,
            list(engine.vm.output),
        )
    finally:
        graph_mod.FAST_COPY = saved
        priorities_mod.CACHE_ENABLED = saved_cache


def _measure_pair(program, iterations, repeats, base, fast, progress):
    """Interleave *repeats* runs of each variant; returns a result dict.

    ``base`` and ``fast`` are dicts with keys ``name``, ``config``,
    ``inliner``, ``fast_copy`` (plus optional ``priority_cache``);
    ``time_compile`` selects which clock the comparison uses.
    ``observable_only`` on the base dict relaxes the equivalence check
    to values + printed output, for pairs whose variants run different
    tiers and therefore legitimately differ in cycles and op counts.
    """
    time_compile = base.get("time_compile", False)
    observable_only = base.get("observable_only", False)
    warmup = base.get("warmup", 0)
    base_runs, fast_runs = [], []
    semantics_identical = True
    for repeat in range(repeats):
        b = _run_once(program, base["config"], base["inliner"], iterations,
                      base["fast_copy"], time_compile,
                      base.get("priority_cache", True), warmup)
        f = _run_once(program, fast["config"], fast["inliner"], iterations,
                      fast["fast_copy"], time_compile,
                      fast.get("priority_cache", True), warmup)
        base_runs.append(b)
        fast_runs.append(f)
        if observable_only:
            if b.observable() != f.observable():
                semantics_identical = False
        elif b.semantics() != f.semantics():
            semantics_identical = False
        if progress:
            sys.stderr.write(".")
            sys.stderr.flush()
    clock = (
        (lambda r: r.compile_seconds) if time_compile else (lambda r: r.wall)
    )
    base_t = statistics.median(clock(r) for r in base_runs)
    fast_t = statistics.median(clock(r) for r in fast_runs)
    return {
        "baseline": {"name": base["name"], "seconds": round(base_t, 6)},
        "fast": {"name": fast["name"], "seconds": round(fast_t, 6)},
        "clock": "compile_phase" if time_compile else "wall",
        "speedup": round(base_t / fast_t, 3) if fast_t > 0 else None,
        "reduction_percent": (
            round(100.0 * (1.0 - fast_t / base_t), 1) if base_t > 0 else None
        ),
        "semantics_identical": semantics_identical,
        "repeats": repeats,
        "iterations": iterations,
        "warmup": warmup,
    }


# ----------------------------------------------------------------------
# The pinned workload matrix
# ----------------------------------------------------------------------


def _interp_workload(benchmark, iterations, repeats, progress):
    """Pure interpretation: classic loop vs pre-decoded tier."""
    program = get_benchmark(benchmark).load()
    pair = _measure_pair(
        program, iterations, repeats,
        base={
            "name": "interp-classic",
            "config": lambda: JitConfig(
                compile_enabled=False, interp_predecode=False
            ),
            "inliner": None,
            "fast_copy": True,
        },
        fast={
            "name": "interp-predecode",
            "config": lambda: JitConfig(
                compile_enabled=False, interp_predecode=True
            ),
            "inliner": None,
            "fast_copy": True,
        },
        progress=progress,
    )
    pair.update(workload="interpreter-bound", benchmark=benchmark)
    return pair


def _compile_workload(benchmark, iterations, repeats, progress):
    """Compilation-dominated: all classic compile paths (reference
    graph copy, no trial memo, uncached priorities) vs all fast paths
    (slot copy, trial memo, priority cache).

    The clock is the ``compile`` phase timer, so interpreter and
    executor time are excluded from the comparison.
    """
    program = get_benchmark(benchmark).load()

    def config(memo):
        return lambda: JitConfig(
            hot_threshold=2,
            interp_predecode=False,
            enable_trial_memo=memo,
        )

    pair = _measure_pair(
        program, iterations, repeats,
        base={
            "name": "compile-classic",
            "config": config(False),
            "inliner": lambda: tuned_inliner(0.1),
            "fast_copy": False,
            "priority_cache": False,
            "time_compile": True,
        },
        fast={
            "name": "compile-fast",
            "config": config(True),
            "inliner": lambda: tuned_inliner(0.1),
            "fast_copy": True,
            "priority_cache": True,
            "time_compile": True,
        },
        progress=progress,
    )
    pair.update(workload="compile-bound", benchmark=benchmark)
    return pair


def _mixed_workload(benchmark, iterations, repeats, progress):
    """The default tiered stack: everything classic vs everything fast."""
    program = get_benchmark(benchmark).load()
    pair = _measure_pair(
        program, iterations, repeats,
        base={
            "name": "all-classic",
            "config": lambda: JitConfig(
                interp_predecode=False, enable_trial_memo=False
            ),
            "inliner": lambda: tuned_inliner(0.1),
            "fast_copy": False,
            "priority_cache": False,
        },
        fast={
            "name": "all-fast",
            "config": lambda: JitConfig(
                interp_predecode=True, enable_trial_memo=True
            ),
            "inliner": lambda: tuned_inliner(0.1),
            "fast_copy": True,
        },
        progress=progress,
    )
    pair.update(workload="mixed", benchmark=benchmark)
    return pair


def _pybackend_workload(benchmark, iterations, repeats, progress):
    """The Python-codegen top tier against the fastest interpreter.

    Baseline is the pre-decoded interpreter alone (the previous raw
    host-speed ceiling); fast is the tiered JIT with ``backend="py"``
    so hot roots run as generated Python closures
    (:mod:`repro.backend.pycodegen`). The variants run different tiers
    by design, so the equivalence check is the cross-tier contract —
    iteration values and printed output — rather than cycle sequences;
    two warmup iterations keep compilation outside the timed window
    (steady-state timing, the standard JIT protocol — warmup iterations
    still join the semantic comparison).
    """
    program = get_benchmark(benchmark).load()
    pair = _measure_pair(
        program, iterations, repeats,
        base={
            "name": "interp-predecode",
            "config": lambda: JitConfig(
                compile_enabled=False, interp_predecode=True
            ),
            "inliner": None,
            "fast_copy": True,
            "observable_only": True,
            "warmup": 2,
        },
        fast={
            "name": "jit-py",
            "config": lambda: JitConfig(
                hot_threshold=10, interp_predecode=True, backend="py",
            ),
            "inliner": lambda: tuned_inliner(0.1),
            "fast_copy": True,
        },
        progress=progress,
    )
    pair.update(workload="py-backend", benchmark=benchmark)
    return pair


#: fleet size of the serving workload — ≥4 tenants so the fairness
#: index and queue contention are meaningful.
SERVE_TENANTS = 6


def _serve_once(mode, iterations):
    """One mixed-traffic fleet run; returns (report, per-tenant state)."""
    from repro.serve import ServiceConfig, VMService
    from repro.tools.serve import mixed_specs

    config = ServiceConfig(
        max_tenants=SERVE_TENANTS,
        compile_workers=2,
        compile_mode=mode,
        hot_threshold=10,
    )
    with VMService(config) as service:
        for spec in mixed_specs(SERVE_TENANTS, iterations):
            service.admit(spec)
        report = service.run(concurrent=True)
        state = {
            tenant.name: (list(tenant.outcomes), tenant.output)
            for tenant in service.tenants.values()
        }
    return report, state


def _serve_workload(benchmark, iterations, repeats, progress):
    """Multi-tenant serving: synchronous compilation (tenants stall on
    their own compiles) vs the background pipeline (compiles overlap
    interpretation across the whole fleet).

    Semantics here is per-tenant outcomes + printed output — *not*
    cycles, whose attribution legitimately differs across modes (async
    charges compile cycles to ``background_compile_cycles``). The
    result carries the serving-specific measurements on top of the
    usual pair shape: fleet throughput, Jain fairness, queue stats.
    """
    sync_runs, async_runs = [], []
    semantics_identical = True
    for _ in range(repeats):
        sync_report, sync_state = _serve_once("sync", iterations)
        async_report, async_state = _serve_once("async", iterations)
        sync_runs.append(sync_report)
        async_runs.append(async_report)
        if sync_state != async_state:
            semantics_identical = False
        if progress:
            sys.stderr.write(".")
            sys.stderr.flush()
    sync_t = statistics.median(r.wall_seconds for r in sync_runs)
    async_t = statistics.median(r.wall_seconds for r in async_runs)
    median_async = sorted(
        async_runs, key=lambda r: r.wall_seconds
    )[len(async_runs) // 2]
    return {
        "workload": "serve-mixed",
        "benchmark": benchmark,
        "baseline": {"name": "serve-sync", "seconds": round(sync_t, 6)},
        "fast": {"name": "serve-async", "seconds": round(async_t, 6)},
        "clock": "wall",
        "speedup": round(sync_t / async_t, 3) if async_t > 0 else None,
        "reduction_percent": (
            round(100.0 * (1.0 - async_t / sync_t), 1) if sync_t > 0 else None
        ),
        "semantics_identical": semantics_identical,
        "repeats": repeats,
        "iterations": iterations,
        "tenants": SERVE_TENANTS,
        "throughput": round(median_async.throughput, 3),
        "fairness": round(median_async.fairness, 4),
        "queue": median_async.queue_stats,
    }


# Pinned matrix: (builder, benchmark, full-(iterations, repeats),
# quick-(iterations, repeats) or None to skip in quick mode).
# Benchmarks chosen so each workload is actually bound by the phase it
# claims to measure; scaladoc's expansion-heavy compiles are the
# priority-cache showcase but too slow for the CI smoke.
MATRIX = [
    (_interp_workload, "gauss-mix", (2, 5), (1, 1)),
    (_interp_workload, "stmbench7", (2, 5), (1, 1)),
    (_pybackend_workload, "gauss-mix", (2, 5), (1, 1)),
    (_pybackend_workload, "stmbench7", (2, 5), (1, 1)),
    (_compile_workload, "kiama", (6, 7), (6, 1)),
    (_compile_workload, "scaladoc", (6, 3), None),
    (_mixed_workload, "jython", (4, 5), (2, 1)),
    (_serve_workload, "mixed-fleet", (8, 3), (4, 1)),
]


def run_matrix(quick=False, progress=False):
    """Run the pinned workload matrix; returns a list of result dicts."""
    results = []
    for builder, benchmark, full, quick_params in MATRIX:
        if quick and quick_params is None:
            continue
        iterations, repeats = quick_params if quick else full
        if progress:
            sys.stderr.write(
                "%s/%s " % (builder.__name__.strip("_"), benchmark)
            )
        results.append(builder(benchmark, iterations, repeats, progress))
        if progress:
            sys.stderr.write("\n")
    return results


def render_results(results):
    lines = [
        "%-18s %-12s %-22s %10s %10s %8s %6s"
        % ("workload", "benchmark", "variants", "base(s)", "fast(s)",
           "speedup", "same"),
    ]
    for r in results:
        lines.append(
            "%-18s %-12s %-22s %10.4f %10.4f %7.2fx %6s"
            % (
                r["workload"],
                r["benchmark"],
                "%s->%s" % (r["baseline"]["name"], r["fast"]["name"]),
                r["baseline"]["seconds"],
                r["fast"]["seconds"],
                r["speedup"] or 0.0,
                "yes" if r["semantics_identical"] else "NO",
            )
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.perf", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small iteration/repeat counts (CI smoke; noisier timings, "
             "same semantic checks)",
    )
    parser.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write the result matrix as JSON (e.g. BENCH_wall.json)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print a progress dot per repeat to stderr",
    )
    args = parser.parse_args(argv)

    results = run_matrix(quick=args.quick, progress=args.progress)
    print(render_results(results))

    divergent = [r for r in results if not r["semantics_identical"]]
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(
                {
                    "tool": "repro.tools.perf",
                    "quick": args.quick,
                    "workloads": results,
                },
                handle,
                indent=2,
            )
            handle.write("\n")
        print("wrote %s" % args.output)

    if divergent:
        print(
            "SEMANTIC DIVERGENCE in: %s"
            % ", ".join(
                "%s/%s" % (r["workload"], r["benchmark"]) for r in divergent
            ),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
