"""Run benchmark × configuration sweeps from the command line.

Examples::

    python -m repro.tools.bench --list
    python -m repro.tools.bench --benchmarks factorie gauss-mix
    python -m repro.tools.bench --configs no-inline greedy c2 incremental \\
        --benchmarks stmbench7 --instances 3 --metric speedup --baseline c2
"""

import argparse

from repro.bench.configs import CONFIG_FACTORIES
from repro.bench.harness import print_table, run_matrix
from repro.bench.suite import all_benchmarks


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.tools.bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--list", action="store_true", help="list benchmarks and configs"
    )
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument(
        "--configs", nargs="*",
        default=["no-inline", "greedy", "c2", "incremental"],
    )
    parser.add_argument("--instances", type=int, default=2)
    parser.add_argument(
        "--metric", choices=["time", "speedup", "code"], default="time"
    )
    parser.add_argument("--baseline", default=None)
    parser.add_argument(
        "--metrics-dir", default=None, metavar="DIR",
        help="run under observability and write one JSON metrics "
             "artifact per (benchmark, config) into DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        print("benchmarks:")
        for spec in all_benchmarks():
            print("  %-14s (%s) %s" % (spec.name, spec.suite, spec.description))
        print("configs:")
        for name in sorted(CONFIG_FACTORIES):
            print("  %s" % name)
        return 0

    for config in args.configs:
        if config not in CONFIG_FACTORIES:
            parser.error("unknown config %r (see --list)" % config)

    def progress(bench, config, measurement):
        print("measured %-14s %-18s %12.0f cycles" % (
            bench, config, measurement.mean_cycles))

    results = run_matrix(
        args.configs,
        benchmarks=args.benchmarks,
        instances=args.instances,
        progress=progress,
        metrics_dir=args.metrics_dir,
    )
    print_table(
        results, args.configs, metric=args.metric, baseline=args.baseline,
        title="%s (%d instances)" % (args.metric, args.instances),
    )
    if args.metrics_dir:
        print("metrics artifacts written to %s/" % args.metrics_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
