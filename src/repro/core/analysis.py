"""The cost-benefit analysis phase with callsite clustering
(§III-C, Listing 6, Eq. 9–11).

Each call node carries a tuple ``b|c`` (benefit, cost). The two tuple
operations are merging (Eq. 9) and ratio comparison (Eq. 10)::

    b1|c1 ⊕ b2|c2  =  (b1 + b2) | (c1 + c2)
    b1|c1 ⊙ b2|c2  ⇔  b1/c1 ≥ b2/c2
    ⟨b|c⟩          =  b / c                       (Eq. 11)

``analyzeNode`` (Listing 6) initializes a node's benefit as its local
benefit *minus the local benefits of its children* — inlining a method
alone forfeits the optimizations that inlining its callees would have
produced — then greedily absorbs adjacent child clusters while doing so
raises the cluster's benefit-to-cost ratio. The absorbed children are
marked ``inlined`` (same cluster as parent) and the unabsorbed ones
form the cluster's *front*.

The 1-by-1 baseline (Figure 8) assigns every node its own cluster with
the classic ``B_L | size`` tuple and no merging.
"""

from repro.core.calltree import NodeKind
from repro.core.priorities import local_benefit

_INLINEABLE = (NodeKind.CUTOFF, NodeKind.EXPANDED, NodeKind.POLYMORPHIC)


def tuple_ratio(node):
    """⟨b|c⟩, Eq. 11."""
    return node.tuple_benefit / max(1e-9, node.tuple_cost)


def tuple_ge(a, b):
    """The ⊙ comparison (Eq. 10) by cross-multiplication."""
    return a.tuple_benefit * b.tuple_cost >= b.tuple_benefit * a.tuple_cost


class CostBenefitAnalysis:
    """Bottom-up analysis assigning tuples, clusters and fronts."""

    def __init__(self, params, clustering=True):
        self.params = params
        self.clustering = clustering

    def run(self, root, context):
        """Analyze every subtree hanging off the (possibly partially
        inlined) root; returns the list of top-level cluster roots."""
        tops = []
        self._collect_tops(root, tops)
        for node in tops:
            self._analyze(node)
        return tops

    def _collect_tops(self, node, tops):
        """Nodes whose callsites live directly in the root graph."""
        for child in node.children:
            if child.check_deleted():
                continue
            if child.kind == NodeKind.INLINED:
                self._collect_tops(child, tops)
            elif child.kind in _INLINEABLE:
                tops.append(child)

    # ------------------------------------------------------------------

    def _analyze(self, node):
        eligible = []
        for child in node.children:
            if child.check_deleted():
                continue
            if child.kind in _INLINEABLE:
                self._analyze(child)
                eligible.append(child)
        node.inlined_flag = False
        cost = float(max(1, node.ir_size()))
        if self.clustering:
            benefit = local_benefit(node) - sum(
                local_benefit(child) for child in eligible
            )
            node.tuple_benefit = benefit
            node.tuple_cost = cost
            front = list(eligible)
            while front:
                best = front[0]
                for candidate in front[1:]:
                    if tuple_ge(candidate, best):
                        best = candidate
                if not self._merge_improves(node, best):
                    break
                node.tuple_benefit += best.tuple_benefit
                node.tuple_cost += best.tuple_cost
                best.inlined_flag = True
                front.remove(best)
                front.extend(best.front)
            node.front = front
        else:
            # 1-by-1 baseline: classic per-method benefit|cost tuples.
            node.tuple_benefit = local_benefit(node)
            node.tuple_cost = cost
            node.front = list(eligible)

    def _merge_improves(self, node, child):
        """Would absorbing *child* raise the cluster's ratio (Listing 6)?"""
        merged_benefit = node.tuple_benefit + child.tuple_benefit
        merged_cost = node.tuple_cost + child.tuple_cost
        return (
            merged_benefit * node.tuple_cost
            >= node.tuple_benefit * merged_cost
        )
