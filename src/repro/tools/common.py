"""Shared plumbing for the CLI tools."""

import argparse
import sys

from repro.baselines import C2Inliner, GreedyInliner, shallow_trials_inliner, tuned_inliner
from repro.lang import compile_source

INLINERS = {
    "none": lambda: None,
    "incremental": lambda: tuned_inliner(0.1),
    "greedy": GreedyInliner,
    "c2": C2Inliner,
    "shallow": lambda: shallow_trials_inliner(0.1),
}


def load_source(path):
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def compile_file(path):
    return compile_source(load_source(path))


def add_inliner_argument(parser):
    parser.add_argument(
        "--inliner",
        choices=sorted(INLINERS),
        default="incremental",
        help="inlining policy for the second tier (default: incremental)",
    )


def make_inliner(name):
    return INLINERS[name]()


def method_argument(value):
    """Parse ``Class.method`` CLI arguments."""
    if "." not in value:
        raise argparse.ArgumentTypeError(
            "expected Class.method, got %r" % value
        )
    class_name, method_name = value.rsplit(".", 1)
    return class_name, method_name
