"""The IR graph: basic blocks, edges, and structural surgery.

Besides the container itself, this module implements the two structural
operations the inliner is built from:

- :meth:`Graph.copy` — a deep copy with fresh identity; the call tree
  attaches a *specialized copy* of the callee IR to every call node
  (paper §III-A: "callsite specialization ... is harder with a complete
  call graph, where each node represents the target of many callsites");
- :meth:`Graph.inline_call` — the inline substitution: splice a callee
  graph into this graph at an invoke, rewiring parameters to arguments
  and returns to a merge.
"""

import os

from repro.ir import nodes as n
from repro.ir import stamps as st
from repro.errors import IRError

#: Executor toggle for :meth:`Graph.copy`. The slot-based fast path is
#: the default; setting ``REPRO_GRAPH_COPY=reference`` re-enables the
#: constructor-based reference implementation (kept for differential
#: testing — the two must produce structurally identical clones).
FAST_COPY = (
    os.environ.get("REPRO_GRAPH_COPY", "").strip().lower() != "reference"
)


class Block:
    """A basic block: phis, ordered body nodes, one terminator.

    Predecessor order matters: phi input *i* corresponds to
    ``preds[i]``. All edge edits go through the helpers here so that
    invariant never breaks.
    """

    __slots__ = ("id", "preds", "phis", "instrs", "terminator", "frequency")

    def __init__(self, block_id):
        self.id = block_id
        self.preds = []
        self.phis = []
        self.instrs = []
        self.terminator = None
        self.frequency = 1.0

    def successors(self):
        if self.terminator is None:
            return []
        return self.terminator.successors()

    def add_phi(self, phi):
        phi.block = self
        self.phis.append(phi)
        return phi

    def append(self, node):
        node.block = self
        self.instrs.append(node)
        return node

    def insert(self, index, node):
        node.block = self
        self.instrs.insert(index, node)
        return node

    def set_terminator(self, node):
        node.block = self
        self.terminator = node
        return node

    def pred_index(self, pred):
        for index, existing in enumerate(self.preds):
            if existing is pred:
                return index
        raise IRError("block B%d is not a predecessor of B%d" % (pred.id, self.id))

    def add_pred(self, pred, phi_inputs=None):
        """Register *pred* as a new predecessor, extending phis."""
        self.preds.append(pred)
        for phi in self.phis:
            phi.add_input(phi_inputs.get(phi) if phi_inputs else None)

    def remove_pred_edge(self, pred):
        """Remove one incoming edge from *pred*, shrinking phis."""
        index = self.pred_index(pred)
        self.preds.pop(index)
        for phi in self.phis:
            phi.remove_input(index)

    def all_nodes(self):
        for phi in self.phis:
            yield phi
        for node in self.instrs:
            yield node
        if self.terminator is not None:
            yield self.terminator

    def __repr__(self):
        return "B%d" % self.id


class Graph:
    """An SSA graph for one (possibly already partially inlined) method."""

    def __init__(self, method, name=None):
        self.method = method
        self.name = name or (method.qualified_name if method else "<graph>")
        self.params = []
        self.blocks = []
        self._next_block_id = 0
        self._next_node_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def new_block(self):
        block = Block(self._next_block_id)
        self._next_block_id += 1
        self.blocks.append(block)
        return block

    def register(self, node):
        """Assign an id; every node must be registered exactly once."""
        if node.id != -1:
            raise IRError("node registered twice: %r" % (node,))
        node.id = self._next_node_id
        self._next_node_id += 1
        return node

    def add_param(self, stamp):
        param = self.register(n.ParamNode(len(self.params), stamp))
        self.params.append(param)
        return param

    @property
    def entry(self):
        return self.blocks[0]

    # ------------------------------------------------------------------
    # Iteration and metrics
    # ------------------------------------------------------------------

    def all_nodes(self):
        for param in self.params:
            yield param
        for block in self.blocks:
            yield from block.all_nodes()

    def node_count(self):
        """The paper's |ir| metric: number of nodes in the graph."""
        return sum(1 for _ in self.all_nodes())

    def invokes(self):
        """All call nodes, in block order."""
        result = []
        for block in self.blocks:
            for node in block.instrs:
                if isinstance(node, n.InvokeNode):
                    result.append(node)
        return result

    def reverse_postorder(self):
        """Blocks in reverse postorder from the entry."""
        seen = set()
        order = []

        def visit(block):
            stack = [(block, iter(block.successors()))]
            seen.add(block)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(succ.successors())))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def recompute_preds(self):
        """Rebuild predecessor lists from terminators.

        Only valid when no phis exist yet (the builder uses it); later
        passes must maintain edges incrementally to keep phi order.
        """
        for block in self.blocks:
            if block.phis:
                raise IRError("recompute_preds with phis present")
            block.preds = []
        for block in self.blocks:
            for succ in block.successors():
                succ.preds.append(block)

    # ------------------------------------------------------------------
    # Use rewiring
    # ------------------------------------------------------------------

    def replace_uses(self, old, new):
        """Point every use of *old* at *new*."""
        if old is new:
            return
        for user in list(old.uses):
            user.replace_input(old, new)

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def copy(self):
        """Deep-copy this graph. Returns ``(copy, node_map)``.

        Two implementations exist: the constructor-based reference copy
        and a slot-based fast path that skips node constructors (and
        with them stamp recomputation and incremental use-list upkeep).
        Both produce structurally identical clones — same node ids,
        block ids, stamps, frequencies and invoke metadata — which
        ``tests/test_ir_graph_copy.py`` checks differentially. The
        ``REPRO_GRAPH_COPY=reference`` environment knob pins the
        reference implementation.
        """
        if FAST_COPY:
            return self._copy_fast()
        return self._copy_reference()

    def _copy_fast(self):
        """Slot-based deep copy: no constructors, no re-verification.

        Mirrors the reference copy's numbering exactly: params first,
        then per block phis → instrs → terminator, with block ids
        renumbered sequentially.
        """
        clone = Graph(self.method, self.name)
        node_map = {}
        block_map = {}
        next_id = 0
        for param in self.params:
            new = n.ParamNode.__new__(n.ParamNode)
            new.id = next_id
            next_id += 1
            new.block = None
            new.inputs = []
            new.stamp = param.stamp
            new.uses = set()
            new.index = param.index
            clone.params.append(new)
            node_map[param] = new
        for index, block in enumerate(self.blocks):
            new_block = Block(index)
            new_block.frequency = block.frequency
            clone.blocks.append(new_block)
            block_map[block] = new_block
        # First pass: create nodes. Inputs usually dominate their uses
        # in block-list order, but inline_call appends imported callee
        # blocks *after* the split continuation block, so a node may
        # reference an input whose block comes later in the list; such
        # nodes get their inputs wired in the second pass.
        scalar_slots = _FAST_COPY_SLOTS
        deferred = []
        for block in self.blocks:
            new_block = block_map[block]
            for phi in block.phis:
                new = n.PhiNode.__new__(n.PhiNode)
                new.id = next_id
                next_id += 1
                new.block = new_block
                new.inputs = []  # resolved in the second pass
                new.stamp = phi.stamp
                new.uses = set()
                new_block.phis.append(new)
                node_map[phi] = new
            for node in block.instrs:
                cls = type(node)
                slots = scalar_slots.get(cls)
                if slots is None:
                    raise IRError("cannot copy node %r" % (node,))
                new = cls.__new__(cls)
                new.id = next_id
                next_id += 1
                new.block = new_block
                new.stamp = node.stamp
                new.uses = set()
                for name in slots:
                    setattr(new, name, getattr(node, name))
                if cls is n.InvokeNode:
                    new.receiver_types = list(node.receiver_types)
                    new.frames = list(node.frames)
                elif cls is n.GuardNode:
                    new.frames = list(node.frames)
                try:
                    inputs = [
                        node_map[x] if x is not None else None
                        for x in node.inputs
                    ]
                except KeyError:
                    new.inputs = []
                    deferred.append((node, new))
                else:
                    new.inputs = inputs
                    for x in inputs:
                        if x is not None:
                            x.uses.add(new)
                new_block.instrs.append(new)
                node_map[node] = new
            term = block.terminator
            if term is not None:
                cls = type(term)
                new = cls.__new__(cls)
                new.id = next_id
                next_id += 1
                new.block = new_block
                new.stamp = term.stamp
                new.uses = set()
                if cls is n.IfNode:
                    new.true_block = block_map[term.true_block]
                    new.false_block = block_map[term.false_block]
                    new.probability = term.probability
                elif cls is n.GotoNode:
                    new.target = block_map[term.target]
                elif cls is n.DeoptNode:
                    new.reason = term.reason
                    new.frames = list(term.frames)
                elif cls is not n.ReturnNode:
                    raise IRError("cannot copy terminator %r" % (term,))
                try:
                    inputs = [
                        node_map[x] if x is not None else None
                        for x in term.inputs
                    ]
                except KeyError:
                    new.inputs = []
                    deferred.append((term, new))
                else:
                    new.inputs = inputs
                    for x in inputs:
                        if x is not None:
                            x.uses.add(new)
                new_block.terminator = new
                node_map[term] = new
        # Second pass: phi inputs, forward-referencing inputs, preds.
        for node, new in deferred:
            inputs = [
                node_map[x] if x is not None else None for x in node.inputs
            ]
            new.inputs = inputs
            for x in inputs:
                if x is not None:
                    x.uses.add(new)
        for block in self.blocks:
            new_block = block_map[block]
            for phi, new_phi in zip(block.phis, new_block.phis):
                inputs = [
                    node_map[x] if x is not None else None
                    for x in phi.inputs
                ]
                new_phi.inputs = inputs
                for x in inputs:
                    if x is not None:
                        x.uses.add(new_phi)
            new_block.preds = [block_map[p] for p in block.preds]
        clone._next_node_id = next_id
        clone._next_block_id = len(self.blocks)
        return clone, node_map

    def _copy_reference(self):
        """The constructor-based reference copy implementation."""
        clone = Graph(self.method, self.name)
        node_map = {}
        block_map = {}
        for param in self.params:
            new_param = clone.add_param(param.stamp)
            node_map[param] = new_param
        for block in self.blocks:
            new_block = clone.new_block()
            new_block.frequency = block.frequency
            block_map[block] = new_block
        # First pass: create nodes without inputs resolved.
        for block in self.blocks:
            new_block = block_map[block]
            for phi in block.phis:
                new_phi = clone.register(
                    n.PhiNode([None] * len(phi.inputs), phi.stamp)
                )
                new_block.add_phi(new_phi)
                node_map[phi] = new_phi
            for node in block.instrs:
                copied = _copy_node(node, node_map, clone)
                new_block.append(copied)
                node_map[node] = copied
            if block.terminator is not None:
                copied = _copy_terminator(
                    block.terminator, node_map, block_map, clone
                )
                new_block.set_terminator(copied)
                node_map[block.terminator] = copied
        # Second pass: resolve phi inputs (may reference later nodes).
        for block in self.blocks:
            for phi in block.phis:
                new_phi = node_map[phi]
                for index, input_node in enumerate(phi.inputs):
                    if input_node is not None:
                        new_phi.set_input(index, node_map[input_node])
            new_block = block_map[block]
            new_block.preds = [block_map[p] for p in block.preds]
        return clone, node_map

    # ------------------------------------------------------------------
    # Inline substitution
    # ------------------------------------------------------------------

    def inline_call(self, invoke, callee_graph):
        """Replace *invoke* with the body of *callee_graph*.

        The callee graph is consumed (its blocks and nodes move into
        this graph with fresh ids); callers that need to keep it must
        copy it first. Returns the node now representing the call's
        value (or None for void calls).
        """
        block = invoke.block
        if block is None or block not in self.blocks:
            raise IRError("invoke is not in this graph")
        position = block.instrs.index(invoke)

        # Split the host block after the invoke.
        after = self.new_block()
        after.instrs = block.instrs[position + 1 :]
        for node in after.instrs:
            node.block = after
        after.terminator = block.terminator
        if after.terminator is not None:
            after.terminator.block = after
            for succ in after.terminator.successors():
                index = succ.pred_index(block)
                succ.preds[index] = after
        block.instrs = block.instrs[:position]
        block.terminator = None
        after.frequency = block.frequency

        # Import callee blocks and re-register the nodes.
        scale = getattr(invoke, "frequency", 1.0)
        entry_map = {}
        for callee_block in callee_graph.blocks:
            imported = self.new_block()
            imported.frequency = callee_block.frequency * scale
            entry_map[callee_block] = imported
            imported.preds = callee_block.preds  # fixed below
            imported.phis = callee_block.phis
            imported.instrs = callee_block.instrs
            imported.terminator = callee_block.terminator
            for node in imported.all_nodes():
                node.block = imported
                node.id = -1
                self.register(node)
        for callee_block in callee_graph.blocks:
            imported = entry_map[callee_block]
            imported.preds = [entry_map[p] for p in imported.preds]
            if imported.terminator is not None:
                for succ in list(imported.terminator.successors()):
                    imported.terminator.replace_successor(succ, entry_map[succ])

        callee_entry = entry_map[callee_graph.entry]

        # Thread the caller's frame state through the spliced body: any
        # state-carrying node from the callee (guards, deopts, invokes
        # captured for later speculation) gains the caller invoke's
        # frames as *outer* frames, so a deopt inside inlined code can
        # rebuild the whole virtual call stack. The caller state values
        # dominate `block` and therefore every imported block.
        outer_frames = list(invoke.frames)
        if outer_frames:
            outer_state = list(invoke.state_values)
            for callee_block in callee_graph.blocks:
                for node in entry_map[callee_block].all_nodes():
                    if isinstance(node, (n.GuardNode, n.DeoptNode)) or (
                        isinstance(node, n.InvokeNode) and node.frames
                    ):
                        node.append_frame_state(outer_state, outer_frames)

        # Wire arguments into parameters (frame-state inputs, if any,
        # sit after the arguments; zip truncates at the param count).
        for param, arg in zip(callee_graph.params, invoke.inputs):
            self.replace_uses(param, arg)

        # Collect returns and route them to the continuation block.
        returns = []
        for callee_block in callee_graph.blocks:
            imported = entry_map[callee_block]
            term = imported.terminator
            if isinstance(term, n.ReturnNode):
                returns.append((imported, term))

        result = None
        if not returns:
            # The callee never returns (infinite loop); the continuation
            # is unreachable but kept for structural simplicity.
            after.preds = []
        elif len(returns) == 1:
            ret_block, ret = returns[0]
            result = ret.value()
            ret.clear_inputs()
            goto = self.register(n.GotoNode(after))
            ret_block.set_terminator(goto)
            after.preds = [ret_block]
        else:
            value_inputs = []
            pred_blocks = []
            for ret_block, ret in returns:
                value_inputs.append(ret.value())
                pred_blocks.append(ret_block)
                ret.clear_inputs()
                goto = self.register(n.GotoNode(after))
                ret_block.set_terminator(goto)
            after.preds = pred_blocks
            if value_inputs and value_inputs[0] is not None:
                phi = self.register(n.PhiNode(value_inputs, invoke.stamp))
                after.add_phi(phi)
                phi.recompute_stamp()
                result = phi

        # Jump from the split point into the callee.
        goto = self.register(n.GotoNode(callee_entry))
        block.set_terminator(goto)
        callee_entry.preds = [block]

        # Replace the invoke's value and remove it.
        if result is not None:
            self.replace_uses(invoke, result)
        elif invoke.uses:
            raise IRError("void call has uses")
        invoke.clear_inputs()

        callee_graph.blocks = []
        callee_graph.params = []
        return result

    def __repr__(self):
        return "<Graph %s: %d blocks, %d nodes>" % (
            self.name,
            len(self.blocks),
            self.node_count(),
        )


#: Per-class scalar slots the fast copy transfers verbatim (inputs,
#: stamp, uses and InvokeNode.receiver_types are handled separately).
_FAST_COPY_SLOTS = {
    n.ConstIntNode: ("value",),
    n.ConstNullNode: (),
    n.BinOpNode: ("op",),
    n.NegNode: (),
    n.CompareNode: ("op",),
    n.NewNode: ("class_name",),
    n.NewArrayNode: ("elem_type",),
    n.ArrayLoadNode: (),
    n.ArrayStoreNode: (),
    n.ArrayLengthNode: (),
    n.LoadFieldNode: ("class_name", "field_name"),
    n.StoreFieldNode: ("class_name", "field_name"),
    n.LoadStaticNode: ("class_name", "field_name"),
    n.StoreStaticNode: ("class_name", "field_name"),
    n.InstanceOfNode: ("type_name", "exact"),
    n.CheckCastNode: ("type_name",),
    n.PiNode: (),
    n.InvokeNode: (
        "kind",
        "declared_class",
        "method_name",
        "target",
        "megamorphic",
        "bci",
        "frequency",
        "n_args",
    ),
    n.GuardNode: ("reason",),
}


def _copy_node(node, node_map, clone):
    """Copy a non-phi, non-terminator node, resolving inputs."""

    def get(i):
        return node_map[node.inputs[i]]

    t = type(node)
    if t is n.ConstIntNode:
        copied = n.ConstIntNode(node.value)
    elif t is n.ConstNullNode:
        copied = n.ConstNullNode()
    elif t is n.BinOpNode:
        copied = n.BinOpNode(node.op, get(0), get(1))
    elif t is n.NegNode:
        copied = n.NegNode(get(0))
    elif t is n.CompareNode:
        copied = n.CompareNode(node.op, get(0), get(1))
    elif t is n.NewNode:
        copied = n.NewNode(node.class_name)
    elif t is n.NewArrayNode:
        copied = n.NewArrayNode(node.elem_type, get(0))
    elif t is n.ArrayLoadNode:
        copied = n.ArrayLoadNode(get(0), get(1), node.stamp)
    elif t is n.ArrayStoreNode:
        copied = n.ArrayStoreNode(get(0), get(1), get(2))
    elif t is n.ArrayLengthNode:
        copied = n.ArrayLengthNode(get(0))
    elif t is n.LoadFieldNode:
        copied = n.LoadFieldNode(get(0), node.class_name, node.field_name, node.stamp)
    elif t is n.StoreFieldNode:
        copied = n.StoreFieldNode(get(0), node.class_name, node.field_name, get(1))
    elif t is n.LoadStaticNode:
        copied = n.LoadStaticNode(node.class_name, node.field_name, node.stamp)
    elif t is n.StoreStaticNode:
        copied = n.StoreStaticNode(node.class_name, node.field_name, get(0))
    elif t is n.InstanceOfNode:
        copied = n.InstanceOfNode(get(0), node.type_name, node.exact)
    elif t is n.CheckCastNode:
        copied = n.CheckCastNode(get(0), node.type_name)
        copied.stamp = node.stamp
    elif t is n.PiNode:
        copied = n.PiNode(get(0), node.stamp)
    elif t is n.InvokeNode:
        copied = n.InvokeNode(
            node.kind,
            node.declared_class,
            node.method_name,
            [
                node_map[arg] if arg is not None else None
                for arg in node.inputs
            ],
            node.stamp,
            target=node.target,
            receiver_types=node.receiver_types,
            megamorphic=node.megamorphic,
            bci=node.bci,
        )
        copied.frequency = node.frequency
        copied.n_args = node.n_args
        copied.frames = list(node.frames)
    elif t is n.GuardNode:
        copied = n.GuardNode(
            get(0),
            node.reason,
            frames=node.frames,
            state=[
                node_map[x] if x is not None else None
                for x in node.inputs[1:]
            ],
        )
    else:
        raise IRError("cannot copy node %r" % (node,))
    copied.stamp = node.stamp
    return clone.register(copied)


def _copy_terminator(node, node_map, block_map, clone):
    t = type(node)
    if t is n.IfNode:
        copied = n.IfNode(
            node_map[node.inputs[0]],
            block_map[node.true_block],
            block_map[node.false_block],
            node.probability,
        )
    elif t is n.GotoNode:
        copied = n.GotoNode(block_map[node.target])
    elif t is n.ReturnNode:
        value = node.value()
        copied = n.ReturnNode(node_map[value] if value is not None else None)
    elif t is n.DeoptNode:
        copied = n.DeoptNode(
            node.reason,
            frames=node.frames,
            state=[
                node_map[x] if x is not None else None
                for x in node.inputs
            ],
        )
    else:
        raise IRError("cannot copy terminator %r" % (node,))
    return clone.register(copied)
