"""The multi-tenant serving layer: queue, scheduler, service.

Concurrency-sensitive behaviour (cancellation ordering, install-after-
evict) is tested deterministically with ``compile_workers=0``: requests
queue up but nothing compiles until the test drains the queue itself
via :meth:`~repro.serve.scheduler.BackgroundCompiler.run_queued` — so
"the compile finished after the tenant was evicted" is a statement the
test *constructs*, not a race it hopes to win.
"""

import pytest

from repro.baselines import tuned_inliner
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.obs import Observability
from repro.serve import (
    AdmissionDenied,
    BackgroundCompiler,
    CompileQueue,
    CompileRequest,
    ServiceConfig,
    TenantSpec,
    VMService,
)
from repro.serve.profiles import SharedProfileAggregator, share_by_class_prefix

from tests.helpers import shapes_program


def _request(method_name="f"):
    """A dummy request; never executed, only queued/cancelled."""

    class _Method:
        qualified_name = "T.%s" % method_name

    return CompileRequest(engine=None, method=_Method())


# ----------------------------------------------------------------------
# Queue mechanics
# ----------------------------------------------------------------------


class TestCompileQueue:
    def test_fifo_order(self):
        queue = CompileQueue(capacity=4)
        first, second = _request("a"), _request("b")
        assert queue.submit(first)
        assert queue.submit(second)
        assert queue.pop(timeout=0) is first
        assert queue.pop(timeout=0) is second
        assert queue.pop(timeout=0) is None

    def test_bounded_submit_rejects_when_full(self):
        queue = CompileQueue(capacity=2)
        assert queue.submit(_request())
        assert queue.submit(_request())
        assert not queue.submit(_request())
        assert len(queue) == 2

    def test_close_drains_and_cancels(self):
        queue = CompileQueue(capacity=4)
        pending = [_request("a"), _request("b")]
        for request in pending:
            queue.submit(request)
        drained = queue.close()
        assert drained == pending
        assert all(request.cancelled for request in drained)
        assert not queue.submit(_request())  # closed queue rejects
        assert queue.pop(timeout=0) is None

    def test_scheduler_counts_backpressure(self):
        compiler = BackgroundCompiler(workers=0, queue_capacity=1)
        assert compiler.submit(_request())
        overflow = _request()
        assert not compiler.submit(overflow)
        assert compiler.rejected == 1
        assert overflow.outcome == "rejected"
        assert overflow.done.is_set()


# ----------------------------------------------------------------------
# Engine + scheduler, deterministic (workers=0)
# ----------------------------------------------------------------------


def _async_engine(service, **jit):
    jit.setdefault("hot_threshold", 2)
    return Engine(
        shapes_program(),
        JitConfig(compile_mode="async", **jit),
        tuned_inliner(0.5),
        compile_service=service,
    )


class TestBackgroundCompilation:
    def test_async_values_equal_sync(self):
        sync = Engine(
            shapes_program(), JitConfig(hot_threshold=2), tuned_inliner(0.5)
        )
        expected = [sync.run_iteration("Main", "run").value for _ in range(6)]

        with BackgroundCompiler(workers=0) as service:
            engine = _async_engine(service)
            values = []
            for _ in range(6):
                values.append(engine.run_iteration("Main", "run").value)
                service.run_queued()
        assert values == expected
        assert engine.async_installs > 0
        # Every compilation flowed through the queue: nothing compiled
        # synchronously on the application thread.
        assert engine.compilation_count == engine.async_installs
        assert service.completed == engine.async_installs

    def test_interpretation_continues_while_queued(self):
        # Nothing drains the queue, so the engine never sees compiled
        # code — and must keep producing correct values interpreted.
        sync = Engine(shapes_program(), JitConfig(compile_enabled=False))
        expected = [sync.run_iteration("Main", "run").value for _ in range(4)]
        with BackgroundCompiler(workers=0) as service:
            engine = _async_engine(service)
            values = [
                engine.run_iteration("Main", "run").value for _ in range(4)
            ]
            assert values == expected
            assert engine.compilation_count == 0
            assert service.depth > 0
            assert len(engine.pending_compiles()) == service.depth

    def test_duplicate_requests_are_deduped(self):
        with BackgroundCompiler(workers=0) as service:
            engine = _async_engine(service)
            for _ in range(5):
                engine.run_iteration("Main", "run")
            # Every hot dispatch past the threshold re-triggers, but the
            # pending marker keeps one request per method in flight.
            methods = [r.describe() for r in engine.pending_compiles()]
            assert len(methods) == len(set(methods))

    def test_cancelled_before_drain_never_installs(self):
        with BackgroundCompiler(workers=0) as service:
            engine = _async_engine(service)
            for _ in range(3):
                engine.run_iteration("Main", "run")
            pending = engine.pending_compiles()
            assert pending
            for request in pending:
                request.cancel()
            service.run_queued()
            assert engine.compilation_count == 0
            assert engine.async_cancelled == len(pending)
            assert service.cancelled == len(pending)
            assert all(r.outcome == "cancelled" for r in pending)

    def test_background_cycles_never_charge_iterations(self):
        def async_run():
            with BackgroundCompiler(workers=0) as service:
                engine = _async_engine(service)
                cycles = []
                for _ in range(6):
                    cycles.append(
                        engine.run_iteration("Main", "run").total_cycles
                    )
                    service.run_queued()
            return engine, cycles

        engine, cycles = async_run()
        # Compile cycles land in the background ledger, never in an
        # iteration: once warm, iterations cost exactly the same even
        # though compilations happened in between.
        assert engine.background_compile_cycles > 0
        assert cycles[-1] == cycles[-2]
        sync = Engine(
            shapes_program(), JitConfig(hot_threshold=2), tuned_inliner(0.5)
        )
        for _ in range(6):
            sync.run_iteration("Main", "run")
        assert sync.background_compile_cycles == 0
        # Deterministic: the whole cycle trace replays exactly.
        _, replay = async_run()
        assert replay == cycles

    def test_real_worker_thread_end_to_end(self):
        sync = Engine(
            shapes_program(), JitConfig(hot_threshold=2), tuned_inliner(0.5)
        )
        expected = [sync.run_iteration("Main", "run").value for _ in range(6)]
        with BackgroundCompiler(workers=1) as service:
            engine = _async_engine(service)
            values = []
            for _ in range(6):
                values.append(engine.run_iteration("Main", "run").value)
                assert engine.drain_compiles(timeout=10.0)
            assert values == expected
            assert engine.async_installs > 0


# ----------------------------------------------------------------------
# Admission and service lifecycle
# ----------------------------------------------------------------------


def _spec(name, **kw):
    kw.setdefault("benchmark", "avrora")
    kw.setdefault("iterations", 3)
    kw.setdefault("inliner", lambda: tuned_inliner(0.1))
    return TenantSpec(name, **kw)


class TestAdmission:
    def test_service_full(self):
        config = ServiceConfig(max_tenants=1, compile_workers=0)
        with VMService(config) as service:
            service.admit(_spec("a"))
            with pytest.raises(AdmissionDenied, match="full"):
                service.admit(_spec("b"))
            assert service.admission.denied == 1

    def test_duplicate_name(self):
        with VMService(ServiceConfig(compile_workers=0)) as service:
            service.admit(_spec("a"))
            with pytest.raises(AdmissionDenied, match="already admitted"):
                service.admit(_spec("a"))

    def test_quota_exceeding_budget(self):
        config = ServiceConfig(compile_workers=0, cache_budget=1000)
        with VMService(config) as service:
            with pytest.raises(AdmissionDenied, match="exceeds"):
                service.admit(_spec("a", quota=2000))

    def test_bad_merge_policy(self):
        with VMService(ServiceConfig(compile_workers=0)) as service:
            with pytest.raises(AdmissionDenied, match="merge"):
                service.admit(_spec("a", merge="majority"))

    def test_spec_requires_exactly_one_program_source(self):
        with pytest.raises(ValueError):
            TenantSpec("a")
        with pytest.raises(ValueError):
            TenantSpec("a", program=object(), benchmark="avrora")


class TestService:
    def test_sync_and_async_fleets_bit_identical(self):
        def fleet(mode):
            config = ServiceConfig(
                compile_workers=2, compile_mode=mode, hot_threshold=5
            )
            with VMService(config) as service:
                for index, benchmark in enumerate(
                    ["avrora", "scalap", "fop", "kiama"]
                ):
                    service.admit(_spec(
                        "t%d" % index, benchmark=benchmark, iterations=4,
                    ))
                report = service.run(concurrent=(mode == "async"))
                state = {
                    tenant.name: (list(tenant.outcomes), tenant.output)
                    for tenant in service.tenants.values()
                }
            return report, state

        sync_report, sync_state = fleet("sync")
        async_report, async_state = fleet("async")
        assert async_state == sync_state
        assert async_report.total_iterations == 16
        assert 0.0 < async_report.fairness <= 1.0
        assert async_report.queue_stats["submitted"] > 0

    def test_eviction_cancels_pending_and_drops_cache(self):
        config = ServiceConfig(
            compile_workers=0, compile_mode="async", hot_threshold=2
        )
        with VMService(config) as service:
            tenant = service.admit(_spec("victim", iterations=4))
            other = service.admit(_spec("bystander", iterations=4))
            service.run(concurrent=False)
            assert tenant.state == "done"
            # Warm both tenants again so requests re-queue, then evict
            # one before anything compiles.
            # (run() drained the queue at the end; force fresh work.)
            queued = service.scheduler.submitted
            assert queued > 0

        # Deterministic replay of the eviction race: queue requests
        # with workers=0, evict, then drain — the dequeued requests
        # must come out cancelled, and the cache must hold no bytes
        # for the evicted tenant.
        config = ServiceConfig(
            compile_workers=0, compile_mode="async", hot_threshold=2
        )
        with VMService(config) as service:
            tenant = service.admit(_spec("victim", iterations=3))
            tenant.run_workload()  # queues compiles, nothing drains
            pending = tenant.engine.pending_compiles()
            assert pending
            service.evict("victim")
            assert tenant.state in ("evicted", "done")
            assert tenant.evicted
            service.scheduler.run_queued()
            assert all(r.outcome == "cancelled" for r in pending)
            assert tenant.engine.compilation_count == 0
            assert service.cache.tenant_size(tenant.tenant_id) == 0

    def test_report_shape(self):
        config = ServiceConfig(compile_workers=0, compile_mode="sync")
        with VMService(config) as service:
            service.admit(_spec("only", iterations=2))
            report = service.run(concurrent=False)
        data = report.as_dict()
        assert data["mode"] == "sync"
        assert data["total_iterations"] == 2
        assert data["queue"] == {"mode": "sync"}
        assert data["tenants"][0]["name"] == "only"
        assert data["tenants"][0]["state"] == "done"

    def test_serve_metrics_flow(self):
        obs = Observability()
        config = ServiceConfig(
            compile_workers=0, compile_mode="async", hot_threshold=2
        )
        with VMService(config, obs=obs) as service:
            service.admit(_spec("a", iterations=4))
            service.run(concurrent=False)
        metrics = obs.metrics
        assert metrics.value("serve.tenants.admitted") == 1
        assert metrics.value("compile.queue.submitted") > 0
        assert metrics.value("compile.queue.completed") > 0
        assert metrics.get("compile.queue.wait_ms") is not None
        assert obs.flight.of_kind("serve.admit")


# ----------------------------------------------------------------------
# Profile pooling
# ----------------------------------------------------------------------


class TestProfilePooling:
    def test_shared_tenants_pool_isolated_tenants_dont(self):
        aggregator = SharedProfileAggregator()
        sharing = aggregator.store_for_tenant(merge="shared")
        private = aggregator.store_for_tenant(merge="isolated")
        program = shapes_program()
        method = program.lookup_method("Main", "total")

        sharing.of(method).invocations += 5
        assert aggregator.global_profile(method.qualified_name).invocations == 5
        private.of(method).invocations += 7
        # The isolated tenant's writes never reached the pool...
        assert aggregator.global_profile(method.qualified_name).invocations == 5
        # ...and its reads never see it.
        assert private.maybe_of(method).invocations == 7
        # The sharing tenant's compiler reads the pooled count.
        assert sharing.maybe_of(method).invocations == 5

    def test_share_predicate_restricts_pooling(self):
        aggregator = SharedProfileAggregator(
            share=share_by_class_prefix("Lib")
        )
        store = aggregator.store_for_tenant(merge="shared")
        program = shapes_program()
        main = program.lookup_method("Main", "total")
        store.of(main).invocations += 3
        assert aggregator.global_profile(main.qualified_name).invocations == 0

    def test_hotness_stays_tenant_local(self):
        # Compile triggers must reflect one tenant's own traffic: the
        # pooled invocation count must not leak into hotness.
        aggregator = SharedProfileAggregator()
        busy = aggregator.store_for_tenant(merge="shared")
        idle = aggregator.store_for_tenant(merge="shared")
        program = shapes_program()
        method = program.lookup_method("Main", "total")
        busy.of(method).invocations += 100
        idle.of(method)  # materialize, no traffic
        assert busy.hotness(method) == 100
        assert idle.hotness(method) == 0

    def test_snapshot_overlays_pooled_profiles(self):
        aggregator = SharedProfileAggregator()
        a = aggregator.store_for_tenant(merge="shared")
        b = aggregator.store_for_tenant(merge="shared")
        program = shapes_program()
        method = program.lookup_method("Main", "total")
        a.of(method).invocations += 4
        b.of(method).invocations += 9
        snap = a.snapshot()
        # The snapshot sees the fleet's pooled total, frozen.
        assert snap.maybe_of(method).invocations == 13
        a.of(method).invocations += 1
        assert snap.maybe_of(method).invocations == 13


# ----------------------------------------------------------------------
# CLI smoke (in-process)
# ----------------------------------------------------------------------


class TestServeCli:
    def test_smoke_exits_zero(self, capsys):
        from repro.tools.serve import main

        assert main([
            "--smoke", "--tenants", "4", "--iterations", "3",
            "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "async == sync" in out

    def test_plain_run_reports_fleet(self, capsys):
        from repro.tools.serve import main

        assert main([
            "--tenants", "3", "--iterations", "2", "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "tenants=3" in out
