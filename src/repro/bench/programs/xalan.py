"""xalan — XSLT transformation.

xalan walks XML trees applying templates. We model the transform: a
node tree (elements, text, attributes), template matching by node kind
through a handler interface, and an output-size accumulator standing in
for the serializer.
"""

DESCRIPTION = "template dispatch over an XML-like node tree"
ITERATIONS = 12

SOURCE = """
class XmlNode {
  var kind: int;       // 0 element, 1 text, 2 attribute
  var tag: int;
  var children: ArraySeq;
  var textLen: int;
  def init(kind: int, tag: int, textLen: int): void {
    this.kind = kind;
    this.tag = tag;
    this.textLen = textLen;
    this.children = new ArraySeq(2);
  }
  def add(child: XmlNode): void { this.children.add(child); }
}

trait Template {
  def matches(n: XmlNode): bool;
  def emit(n: XmlNode, t: Transformer): int;
}

class ElementTemplate implements Template {
  def matches(n: XmlNode): bool { return n.kind == 0; }
  def emit(n: XmlNode, t: Transformer): int {
    var out: int = 2 + (n.tag & 15);
    var i: int = 0;
    while (i < n.children.length()) {
      out = out + t.transform(n.children.get(i) as XmlNode);
      i = i + 1;
    }
    return out;
  }
}

class TextTemplate implements Template {
  def matches(n: XmlNode): bool { return n.kind == 1; }
  def emit(n: XmlNode, t: Transformer): int { return n.textLen; }
}

class AttrTemplate implements Template {
  def matches(n: XmlNode): bool { return n.kind == 2; }
  def emit(n: XmlNode, t: Transformer): int { return 3 + (n.tag & 7); }
}

class Transformer {
  var templates: ArraySeq;
  def init(): void { this.templates = new ArraySeq(4); }
  def transform(n: XmlNode): int {
    var i: int = 0;
    while (i < this.templates.length()) {
      var tpl: Template = this.templates.get(i) as Template;
      if (tpl.matches(n)) { return tpl.emit(n, this); }
      i = i + 1;
    }
    return 0;
  }
}

object Main {
  static var doc: XmlNode;
  static var xform: Transformer;

  def build(depth: int, seed: int): XmlNode {
    var node: XmlNode = new XmlNode(0, seed & 31, 0);
    node.add(new XmlNode(2, seed & 7, 0));
    if (depth == 0) {
      node.add(new XmlNode(1, 0, 5 + seed % 40));
      return node;
    }
    var i: int = 0;
    while (i < 3) {
      node.add(Main.build(depth - 1, seed * 5 + i));
      i = i + 1;
    }
    node.add(new XmlNode(1, 0, seed % 17));
    return node;
  }

  def run(): int {
    if (Main.doc == null) {
      Main.doc = Main.build(4, 11);
      var t: Transformer = new Transformer();
      t.templates.add(new ElementTemplate());
      t.templates.add(new TextTemplate());
      t.templates.add(new AttrTemplate());
      Main.xform = t;
    }
    var total: int = 0;
    var pass: int = 0;
    while (pass < 2) {
      total = total + Main.xform.transform(Main.doc);
      pass = pass + 1;
    }
    return total;
  }
}
"""
