"""SSA intermediate representation.

The IR is a control-flow graph of basic blocks holding ordered SSA
nodes — closer to a classic scheduled SSA IR than Graal's sea of nodes,
which keeps every transformation explicit and testable while providing
what the paper's algorithm needs:

- a node count per graph (the paper's ``|ir(n)|`` cost metric),
- typed values via :mod:`stamps <repro.ir.stamps>` (argument-type
  propagation for deep inlining trials),
- profiled branch probabilities on ``If`` terminators and receiver
  profiles on ``Invoke`` nodes (the inputs to f(n) and polymorphic
  inlining),
- straightforward callsite replacement (the inline substitution itself).
"""

from repro.ir.stamps import Stamp, int_stamp, ref_stamp, constant_int, null_stamp
from repro.ir import nodes
from repro.ir.graph import Graph, Block
from repro.ir.builder import build_graph
from repro.ir.printer import format_graph
from repro.ir.checker import check_graph
from repro.ir.dominators import compute_dominators, compute_loops
from repro.ir.frequency import annotate_frequencies

__all__ = [
    "Stamp",
    "int_stamp",
    "ref_stamp",
    "constant_int",
    "null_stamp",
    "nodes",
    "Graph",
    "Block",
    "build_graph",
    "format_graph",
    "check_graph",
    "compute_dominators",
    "compute_loops",
    "annotate_frequencies",
]
