"""Dominators, natural loops and frequency annotation."""

from repro.ir import annotate_frequencies, build_graph, compute_dominators, compute_loops
from repro.ir.dominators import dominates
from repro.ir import nodes as n
from tests.helpers import run_static, shapes_program, single_method_program


def _loop_graph(trip_count=10):
    def build(b):
        loop = b.new_label()
        done = b.new_label()
        i = b.alloc_local()
        acc = b.alloc_local()
        b.const(0).store(i).const(0).store(acc)
        b.place(loop).load(i).const(trip_count).ge().if_true(done)
        b.load(acc).load(i).add().store(acc)
        b.load(i).const(1).add().store(i)
        b.goto(loop)
        b.place(done).load(acc).retv()

    program = single_method_program(build, params=())
    _, _, interp = run_static(program, "T", "f")
    method = program.lookup_method("T", "f")
    return build_graph(method, program, interp.profiles), program


class TestDominators:
    def test_entry_dominates_everything(self):
        graph, _ = _loop_graph()
        idom = compute_dominators(graph)
        for block in graph.reverse_postorder():
            assert dominates(idom, graph.entry, block)

    def test_diamond_idoms(self):
        def build(b):
            other = b.new_label()
            join = b.new_label()
            b.load(0).if_true(other)
            b.const(1).store(1).goto(join)
            b.place(other).const(2).store(1)
            b.place(join).load(1).retv()

        program = single_method_program(build)
        graph = build_graph(program.lookup_method("T", "f"), program)
        idom = compute_dominators(graph)
        join_block = [b for b in graph.blocks if len(b.preds) == 2][0]
        assert idom[join_block] is graph.entry


class TestLoops:
    def test_natural_loop_detected(self):
        graph, _ = _loop_graph()
        loops = compute_loops(graph)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header in loop.blocks
        assert loop.backedge_preds

    def test_nested_loops_ordered_innermost_first(self):
        def build(b):
            outer = b.new_label()
            outer_done = b.new_label()
            inner = b.new_label()
            inner_done = b.new_label()
            i = b.alloc_local()
            j = b.alloc_local()
            b.const(0).store(i)
            b.place(outer).load(i).const(3).ge().if_true(outer_done)
            b.const(0).store(j)
            b.place(inner).load(j).const(4).ge().if_true(inner_done)
            b.load(j).const(1).add().store(j).goto(inner)
            b.place(inner_done)
            b.load(i).const(1).add().store(i).goto(outer)
            b.place(outer_done).const(0).retv()

        program = single_method_program(build, params=())
        graph = build_graph(program.lookup_method("T", "f"), program)
        loops = compute_loops(graph)
        assert len(loops) == 2
        inner, outer = loops
        assert inner.depth == 2 and outer.depth == 1
        assert inner.parent is outer
        assert inner.blocks < outer.blocks


class TestFrequencies:
    def test_loop_frequency_matches_trip_count(self):
        graph, _ = _loop_graph(trip_count=25)
        loops = annotate_frequencies(graph)
        assert len(loops) == 1
        assert abs(loops[0].frequency - 26) < 1.0

    def test_invoke_frequency_scaled_by_loop(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        graph = build_graph(program.lookup_method("Main", "run"), program, interp.profiles)
        annotate_frequencies(graph)
        invokes = [i for i in graph.invokes() if i.method_name == "total"]
        total_frequency = sum(i.frequency for i in invokes)
        assert abs(total_frequency - 120) < 5

    def test_branch_split_frequencies(self):
        program = shapes_program()
        _, _, interp = run_static(program, "Main", "run")
        graph = build_graph(program.lookup_method("Main", "run"), program, interp.profiles)
        annotate_frequencies(graph)
        invokes = sorted(
            (i for i in graph.invokes() if i.method_name == "total"),
            key=lambda i: i.frequency,
        )
        # 25% circle path vs 75% square path.
        assert invokes[0].frequency < invokes[1].frequency
        ratio = invokes[1].frequency / invokes[0].frequency
        assert 2.0 < ratio < 4.0

    def test_entry_block_frequency_is_one(self):
        graph, _ = _loop_graph()
        annotate_frequencies(graph)
        assert graph.entry.frequency == 1.0

    def test_frequency_capped(self):
        from repro.ir.frequency import MAX_LOOP_FREQUENCY
        from repro.ir import nodes as n

        graph, _ = _loop_graph()
        # Force a profile claiming the loop never exits.
        for block in graph.blocks:
            term = block.terminator
            if isinstance(term, n.IfNode):
                term.probability = 0.0 if term.true_block.id > block.id else 1.0
        loops = annotate_frequencies(graph)
        assert loops[0].frequency <= MAX_LOOP_FREQUENCY
