"""Deep inlining trials and call-tree child discovery (§IV).

A *trial* specializes a call node's private IR copy with the argument
stamps observed at its callsite, then runs canonicalization and counts
what fired. The count feeds N_s in the local benefit (Eq. 4); the
simplified graph shrinks the node's cost; devirtualizations performed
during the trial expose further expandable callsites. "This process is
repeated recursively in the call tree" — :func:`propagate_deep_trials`
re-runs trials below a node whenever fresher argument stamps arrive
(after expansion of an ancestor, or after an inlining round improved
the root).
"""

from repro.bytecode import types as bt
from repro.core.calltree import CallNode, NodeKind
from repro.ir import stamps as st
from repro.ir.frequency import annotate_frequencies


class TrialMemo:
    """Per-compilation memo for inlining-trial results.

    Within one (synchronous) compilation the profiles are frozen, so
    building + specializing + simplifying a callee graph is a pure
    function of the method, the caller context (when profiles are
    context-sensitive) and the argument-stamp signature at the
    callsite. Repeated identical specializations — the common case when
    a hot callee is reachable through many sites with the same argument
    types — are answered with a :meth:`~repro.ir.graph.Graph.copy` of
    the memoized result instead of a rebuild + re-trial.

    Results are stored on the *second* occurrence of a key: a first
    occurrence only leaves a marker, so the defensive graph copy that
    a stored entry needs is never paid for the (majority of) keys that
    never repeat — the memo is close to free when there is nothing to
    share.

    Retrial results (:func:`propagate_deep_trials`) are memoized along
    a *lineage* chain: a node's graph state is identified by the memo
    key that produced it, extended by each argument signature applied
    since. Equal lineage ⇒ bit-identical graphs ⇒ the retrial outcome
    transplants. Nodes whose graphs did not come through the memo have
    no lineage and always retrial live.

    The memo is reset per compilation (profiles mutate between
    compilations — see :meth:`repro.jit.compiler.JitCompiler.compile`);
    ``hits`` / ``misses`` accumulate across compilations for reporting.
    Everything memoized is deterministic, so enabling the memo changes
    host wall-clock only — never compiled code or cycle counts.
    """

    __slots__ = (
        "context_sensitive",
        "hits",
        "misses",
        "_expansions",
        "_retrials",
        "_lineage",
    )

    def __init__(self, context_sensitive=False):
        self.context_sensitive = context_sensitive
        self.hits = 0
        self.misses = 0
        self._expansions = {}
        self._retrials = {}
        self._lineage = {}

    def reset(self):
        """Drop the per-compilation tables (counters persist)."""
        self._expansions.clear()
        self._retrials.clear()
        self._lineage.clear()

    def expansion_key(self, node, program, trialed):
        """The identity of an expansion result for *node*.

        Untrialed expansions (the shallow-trials baseline) do not apply
        argument stamps, so their key drops the signature and shares
        across all callsites of the method.
        """
        caller = caller_method(node)
        caller_key = (
            caller.qualified_name
            if (caller is not None and self.context_sensitive)
            else None
        )
        stamps = (
            tuple(argument_stamps(node, program)) if trialed else ()
        )
        return (node.method.qualified_name, caller_key, trialed, stamps)


#: Marker for "key seen once, result not captured yet" memo entries.
_SEEN_ONCE = object()


def declared_param_stamps(method):
    """The stamps a callee assumes with no callsite information."""
    stamps = []
    if not method.is_static:
        owner = method.klass.name if method.klass else bt.OBJECT
        stamps.append(st.ref_stamp(owner, non_null=True))
    for ptype in method.param_types:
        stamps.append(st.stamp_for_declared_type(ptype))
    return stamps


def argument_stamps(node, program):
    """Current argument stamps at the node's callsite, including the
    exact-receiver refinement for speculated polymorphic targets."""
    invoke = node.invoke
    stamps = [arg.stamp for arg in invoke.args]
    if node.receiver_type is not None and stamps:
        refined = stamps[0].join(
            st.ref_stamp(node.receiver_type, exact=True, non_null=True), program
        )
        if refined.kind != st.Stamp.BOTTOM:
            stamps[0] = refined
    return stamps


def count_concrete_args(node, program):
    """N_s for cutoff nodes (Eq. 4): arguments strictly more concrete
    than the formal parameters."""
    method = node.method
    if method is None or node.invoke is None:
        return 0
    declared = declared_param_stamps(method)
    args = argument_stamps(node, program)
    count = 0
    for arg_stamp, param_stamp in zip(args, declared):
        if st.is_strictly_more_precise(arg_stamp, param_stamp, program):
            count += 1
    return count


def apply_argument_stamps(node, program):
    """Inject callsite argument stamps into the node's graph params.

    Stamps only ever *narrow* (join with the declared stamp); returns
    True when at least one parameter actually improved.
    """
    graph = node.graph
    args = argument_stamps(node, program)
    improved = False
    for param, arg_stamp in zip(graph.params, args):
        joined = param.stamp.join(arg_stamp, program)
        if joined.kind == st.Stamp.BOTTOM:
            continue  # contradictory profile info: keep the declared stamp
        if joined != param.stamp:
            param.stamp = joined
            improved = True
    return improved


def run_trial(node, context, params):
    """Specialize and canonicalize the node's graph; update N_s.

    Returns the number of simple optimizations that fired (the increment
    is accumulated into ``node.trial_opt_count``).
    """
    apply_argument_stamps(node, context.program)
    stats = context.pipeline.simplify_only(node.graph)
    node.trial_opt_count += stats.simple()
    annotate_frequencies(node.graph)
    return stats


def discover_children(node, context, params):
    """Create child call nodes for every invoke in the node's graph.

    Kinds are assigned per §III-A/§IV: resolvable targets become C,
    uninlineable callsites become G, and dispatched callsites with a
    usable receiver profile become P with one speculated C child per
    profiled target (max 3 targets at ≥10% probability, §IV).
    """
    program = context.program
    node.children = []
    for invoke in node.graph.invokes():
        frequency = node.frequency * invoke.frequency
        if invoke.kind in ("static", "special", "direct"):
            target = invoke.target
            if target is None or target.is_abstract:
                child = CallNode(NodeKind.GENERIC, node, invoke, target, frequency)
            elif target.is_native or target.never_inline:
                child = CallNode(NodeKind.GENERIC, node, invoke, target, frequency)
            else:
                child = CallNode(NodeKind.CUTOFF, node, invoke, target, frequency)
                child.concrete_arg_count = count_concrete_args(child, program)
            node.add_child(child)
        else:
            node.add_child(_dispatched_child(node, invoke, frequency, context, params))
    return node.children


def _dispatched_child(node, invoke, frequency, context, params):
    program = context.program
    profile = [
        (type_name, probability)
        for type_name, probability in invoke.receiver_types
        if probability >= params.min_target_probability
    ][: params.max_typeswitch_targets]
    if not profile:
        return CallNode(NodeKind.GENERIC, node, invoke, None, frequency)
    poly = CallNode(NodeKind.POLYMORPHIC, node, invoke, None, frequency)
    for type_name, probability in profile:
        try:
            target = program.resolve_method(type_name, invoke.method_name)
        except Exception:
            continue
        if target.is_abstract:
            continue
        kind = (
            NodeKind.GENERIC
            if (target.is_native or target.never_inline)
            else NodeKind.CUTOFF
        )
        child = CallNode(
            kind, poly, invoke, target, frequency * probability, probability
        )
        child.receiver_type = type_name
        if kind == NodeKind.CUTOFF:
            child.concrete_arg_count = count_concrete_args(child, program)
        poly.add_child(child)
    if not poly.children:
        return CallNode(NodeKind.GENERIC, node, invoke, None, frequency)
    return poly


def caller_method(node):
    """The method containing this node's callsite (for context-sensitive
    profile lookups): the nearest ancestor that has a method."""
    ancestor = node.parent
    while ancestor is not None:
        if ancestor.method is not None:
            return ancestor.method
        ancestor = ancestor.parent
    return None


def expand_node(node, context, params, deep=True):
    """Turn a cutoff into an expanded node: attach IR, trial, discover.

    With ``deep=False`` (the shallow-trials baseline, Figure 9's
    "no deep trials" bars) argument stamps are only applied when the
    node is a direct child of the root — specialization does not travel
    down the tree.

    When the compile context carries a :class:`TrialMemo`, a repeated
    (method, caller context, argument signature) expansion is served as
    a copy of the memoized specialized graph, skipping the rebuild and
    the trial; the result is bit-identical by construction.
    """
    is_root_child = node.parent is not None and node.parent.is_root
    trialed = deep or is_root_child
    memo = getattr(context, "trial_memo", None)
    key = None
    entry = None
    if memo is not None:
        key = memo.expansion_key(node, context.program, trialed)
        entry = memo._expansions.get(key)
        if entry is not None and entry is not _SEEN_ONCE:
            memo.hits += 1
            stored_graph, opt_delta = entry
            node.graph = stored_graph.copy()[0]
            node.kind = NodeKind.EXPANDED
            node.trial_opt_count += opt_delta
            memo._lineage[node] = key
            discover_children(node, context, params)
            return node
        memo.misses += 1
    graph = context.build_callee_graph(node.method, caller=caller_method(node))
    node.graph = graph
    node.kind = NodeKind.EXPANDED
    if trialed:
        before = node.trial_opt_count
        run_trial(node, context, params)
        opt_delta = node.trial_opt_count - before
    else:
        annotate_frequencies(node.graph)
        opt_delta = 0
    if memo is not None:
        if entry is _SEEN_ONCE:
            # Second occurrence: the key repeats, capture the result.
            memo._expansions[key] = (node.graph.copy()[0], opt_delta)
        else:
            memo._expansions[key] = _SEEN_ONCE
        memo._lineage[node] = key
    discover_children(node, context, params)
    return node


def normalize_node(node, context, params):
    """Collapse a polymorphic node whose callsite was devirtualized.

    Canonicalization between rounds can turn a dispatched invoke into a
    direct call (stamp or CHA devirtualization) while the call tree
    still holds a P node for it. The P node then degenerates: if one of
    its speculated children targeted the now-proven method, that child's
    specialized graph and subtree are adopted; otherwise the node
    becomes a plain cutoff on the proven target.
    """
    if node.kind != NodeKind.POLYMORPHIC:
        return
    invoke = node.invoke
    if invoke is None or invoke.block is None or invoke.is_dispatched:
        return
    target = invoke.target
    node.probability = 1.0
    if target is None or target.is_abstract or target.is_native or target.never_inline:
        node.kind = NodeKind.GENERIC
        node.method = target
        node.children = []
        node.queue = []
        return
    adopted = None
    for child in node.children:
        if child.method is target and child.kind == NodeKind.EXPANDED:
            adopted = child
            break
    node.method = target
    node.receiver_type = None
    if adopted is not None:
        node.kind = NodeKind.EXPANDED
        node.graph = adopted.graph
        node.trial_opt_count = adopted.trial_opt_count
        node.children = adopted.children
        for child in node.children:
            child.parent = node
    else:
        node.kind = NodeKind.CUTOFF
        node.children = []
        node.queue = []
        node.concrete_arg_count = count_concrete_args(node, context.program)


def propagate_deep_trials(node, context, params, budget=64):
    """Re-run trials below *node* wherever argument stamps improved.

    The fixpoint loop of §IV: optimizations in one callee can improve
    the type precision at sibling/descendant callsites, so trials are
    repeated until nothing improves (bounded by *budget* re-trials).

    Childless nodes with a memo lineage answer repeated identical
    retrials from the :class:`TrialMemo` (a node with children cannot
    swap graphs — its children hold invoke references into the current
    one — so it always retrials live).
    """
    memo = getattr(context, "trial_memo", None)
    work = [c for c in node.children]
    retrials = 0
    while work and retrials < budget:
        child = work.pop()
        if child.check_deleted():
            continue
        if child.kind == NodeKind.POLYMORPHIC:
            work.extend(child.children)
            continue
        if child.kind == NodeKind.CUTOFF:
            child.concrete_arg_count = count_concrete_args(child, context.program)
            continue
        if child.kind not in (NodeKind.EXPANDED, NodeKind.INLINED):
            continue
        if child.kind == NodeKind.EXPANDED and child.graph is not None:
            lineage = (
                memo._lineage.get(child) if memo is not None else None
            )
            if lineage is not None and not child.children:
                args_sig = tuple(argument_stamps(child, context.program))
                key = (lineage, args_sig)
                entry = memo._retrials.get(key)
                if entry is not None and entry is not _SEEN_ONCE:
                    memo.hits += 1
                    stored_graph, opt_delta = entry
                    if stored_graph is not None:
                        child.graph = stored_graph.copy()[0]
                        child.trial_opt_count += opt_delta
                        retrials += 1
                    memo._lineage[child] = key
                    continue  # childless: nothing to push
                memo.misses += 1
                if apply_argument_stamps(child, context.program):
                    stats = context.pipeline.simplify_only(child.graph)
                    child.trial_opt_count += stats.simple()
                    annotate_frequencies(child.graph)
                    retrials += 1
                    _refresh_child_invokes(child)
                    memo._retrials[key] = (
                        (child.graph.copy()[0], stats.simple())
                        if entry is _SEEN_ONCE
                        else _SEEN_ONCE
                    )
                else:
                    # A no-improvement outcome carries no graph; it is
                    # safe (and free) to capture on first sight.
                    memo._retrials[key] = (None, 0)
                memo._lineage[child] = key
                continue
            if apply_argument_stamps(child, context.program):
                stats = context.pipeline.simplify_only(child.graph)
                child.trial_opt_count += stats.simple()
                annotate_frequencies(child.graph)
                retrials += 1
                _refresh_child_invokes(child)
                if memo is not None:
                    # The graph mutated outside memo bookkeeping; its
                    # lineage no longer identifies it.
                    memo._lineage.pop(child, None)
        work.extend(child.children)
    return retrials


def _refresh_child_invokes(node):
    """Drop children whose callsites were optimized away by a re-trial."""
    for child in node.children:
        child.check_deleted()
