"""First-iteration loop peeling keyed on phi stamp precision.

From the paper (§IV, Other optimizations): "At the end of every round,
we also apply peeling on a loop's first iteration if we detect that the
loop contains a φ-node (i.e. a variable) whose type is more specific in
that first iteration."

The transformation: the loop body is copied once ahead of the loop with
every header phi substituted by its loop-entry value. In the copy, the
precise entry stamps flow into the body, letting canonicalization
devirtualize and fold first-iteration code; the original loop then
starts from the peeled iteration's results.

Peeling is restricted to loops in *canonical shape* — the shape
structured minij loops compile to — and is skipped otherwise (it is an
opportunistic optimization, not a required one):

- exactly one entry edge into the header;
- no side entries into other body blocks;
- exactly one exit block, whose predecessors all lie inside the loop
  (this makes the exit block dominate every outside use of a
  loop-defined value, so the LCSSA-style proxy phis inserted there are
  sound).
"""

from repro.ir import nodes as n
from repro.ir import stamps as st
from repro.ir.dominators import compute_loops
from repro.ir.graph import _copy_node


def peel_loops(graph, program, max_peels=4):
    """Peel qualifying loops, one iteration each; returns count peeled."""
    peeled = 0
    for _ in range(max_peels):
        loops = compute_loops(graph)
        candidate = None
        for loop in loops:
            if _should_peel(loop, program) and _canonical_shape(loop):
                candidate = loop
                break
        if candidate is None:
            break
        _peel(graph, candidate)
        peeled += 1
    return peeled


def _should_peel(loop, program):
    """True if some header phi is strictly more precise on loop entry."""
    header = loop.header
    for index, pred in enumerate(header.preds):
        if pred in loop.blocks:
            continue
        for phi in header.phis:
            entry = phi.inputs[index]
            if entry is None:
                continue
            # The paper keys peeling on *type* precision, so only
            # reference stamps qualify (an int phi with a constant
            # initializer would otherwise peel every counted loop).
            if entry.stamp.kind != st.Stamp.REF:
                continue
            if st.is_strictly_more_precise(entry.stamp, phi.stamp, program):
                return True
    return False


def _canonical_shape(loop):
    header = loop.header
    body = loop.blocks
    entry_edges = [p for p in header.preds if p not in body]
    if len(entry_edges) != 1:
        return False
    exits = set()
    for block in body:
        for succ in block.successors():
            if succ not in body:
                exits.add(succ)
    if len(exits) != 1:
        return False
    exit_block = exits.pop()
    if any(p not in body for p in exit_block.preds):
        return False
    for block in body:
        if block is header:
            continue
        if any(p not in body for p in block.preds):
            return False
    return True


def _peel(graph, loop):
    header = loop.header
    body = sorted(loop.blocks, key=lambda b: b.id)
    entry_index = next(
        i for i, p in enumerate(header.preds) if p not in loop.blocks
    )
    entry_pred = header.preds[entry_index]
    exit_block = next(
        succ
        for block in body
        for succ in block.successors()
        if succ not in loop.blocks
    )

    # Seed the value map: header phis resolve to their entry values in
    # the peeled copy. Values defined outside the loop map to themselves
    # (they dominate the peeled copy just as they dominate the loop).
    node_map = _IdentityMap()
    for phi in header.phis:
        node_map[phi] = phi.inputs[entry_index]

    _insert_exit_proxies(graph, loop, exit_block)

    # --- copy the body -------------------------------------------------
    block_map = {}
    for block in body:
        copy = graph.new_block()
        copy.frequency = block.frequency
        block_map[block] = copy
    for block in body:
        copy = block_map[block]
        if block is not header:
            for phi in block.phis:
                new_phi = graph.register(
                    n.PhiNode([None] * len(phi.inputs), phi.stamp)
                )
                copy.add_phi(new_phi)
                node_map[phi] = new_phi
        for node in block.instrs:
            copied = _copy_node(node, node_map, graph)
            copy.append(copied)
            node_map[node] = copied
    for block in body:
        copy = block_map[block]
        if block is not header:
            for phi in block.phis:
                new_phi = node_map[phi]
                for i, value in enumerate(phi.inputs):
                    if value is not None:
                        new_phi.set_input(i, node_map.get(value, value))
            copy.preds = [block_map[p] for p in block.preds]
        copy.set_terminator(
            _copy_peel_terminator(graph, block.terminator, node_map, block_map, header)
        )

    header_copy = block_map[header]
    header_copy.preds = [entry_pred]

    # Entry edge targets the peeled copy now.
    entry_pred.terminator.replace_successor(header, header_copy)

    # The original header's entry slot is replaced by the copied
    # backedge edges (the loop continues after the peeled iteration).
    backedge_indices = [
        i for i, p in enumerate(header.preds) if p in loop.blocks
    ]
    copied_back_preds = [block_map[header.preds[i]] for i in backedge_indices]
    original_back_preds = [header.preds[i] for i in backedge_indices]
    for phi in header.phis:
        backedge_values = [phi.inputs[i] for i in backedge_indices]
        copied_values = [
            node_map.get(v, v) if v is not None else None
            for v in backedge_values
        ]
        phi.clear_inputs()
        for value in copied_values + backedge_values:
            phi.add_input(value)
    header.preds = copied_back_preds + original_back_preds

    # Exit block gains one pred per copied exit edge.
    original_exit_preds = list(exit_block.preds)
    for i, pred in enumerate(original_exit_preds):
        copied_pred = block_map[pred]
        exit_block.preds.append(copied_pred)
        for phi in exit_block.phis:
            value = phi.inputs[i]
            phi.add_input(
                node_map.get(value, value) if value is not None else None
            )
    for phi in exit_block.phis:
        phi.recompute_stamp()


class _IdentityMap(dict):
    """A node map that defaults to the identity for unmapped nodes."""

    def __missing__(self, key):
        return key


def _insert_exit_proxies(graph, loop, exit_block):
    """Funnel outside uses of loop-defined values through exit phis.

    After peeling, the original definition no longer dominates outside
    uses (the copied body provides a second version), so every such use
    must read a merge at the exit block. Pre-existing phis *in* the
    exit block already merge per-edge values and are left alone.
    """
    for block in sorted(loop.blocks, key=lambda b: b.id):
        for node in list(block.all_nodes()):
            if node.is_terminator:
                continue
            outside_uses = [
                user
                for user in node.uses
                if user.block is not None
                and user.block not in loop.blocks
                and not (isinstance(user, n.PhiNode) and user.block is exit_block)
            ]
            if not outside_uses:
                continue
            proxy = graph.register(
                n.PhiNode([node] * len(exit_block.preds), node.stamp)
            )
            exit_block.add_phi(proxy)
            for user in outside_uses:
                user.replace_input(node, proxy)


def _copy_peel_terminator(graph, term, node_map, block_map, header):
    def target(block):
        # Copied backedges re-enter the *original* loop.
        if block is header:
            return header
        return block_map.get(block, block)

    if isinstance(term, n.IfNode):
        copied = n.IfNode(
            node_map.get(term.inputs[0], term.inputs[0]),
            target(term.true_block),
            target(term.false_block),
            term.probability,
        )
    elif isinstance(term, n.GotoNode):
        copied = n.GotoNode(target(term.target))
    elif isinstance(term, n.ReturnNode):
        value = term.value()
        copied = n.ReturnNode(
            node_map.get(value, value) if value is not None else None
        )
    elif isinstance(term, n.DeoptNode):
        copied = n.DeoptNode(
            term.reason,
            frames=term.frames,
            state=[node_map.get(x, x) for x in term.inputs],
        )
    else:
        raise TypeError("unexpected terminator %r" % (term,))
    return graph.register(copied)
