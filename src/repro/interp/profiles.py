"""Profile data gathered by the interpreter and consumed by the compiler.

The profile model mirrors what HotSpot exposes to Graal:

- per-method invocation counters (hotness),
- per-branch taken/not-taken counters (→ branch probabilities),
- per-branch backedge counters (→ loop frequency estimates),
- per-callsite receiver-type histograms with megamorphic saturation
  (→ speculative devirtualization and polymorphic inlining, §IV),
- per-site operand-type histograms at INSTANCEOF/CHECKCAST
  (→ speculative type-check folding via guard/deopt).

Profiles are *measured*, never oracular: a callsite that was observed
with one receiver type may later see another (the paper's "noisy
estimates" difficulty, §II.1). Saturation at :data:`MAX_RECORDED_TYPES`
distinct types reproduces type-profile pollution: beyond the limit the
profile only says "megamorphic".
"""

MAX_RECORDED_TYPES = 8


class BranchProfile:
    """Taken / not-taken counters for one IF instruction."""

    __slots__ = ("taken", "not_taken")

    def __init__(self):
        self.taken = 0
        self.not_taken = 0

    @property
    def total(self):
        return self.taken + self.not_taken

    def probability(self, default=0.5):
        """Empirical probability that the branch is taken."""
        total = self.total
        if total == 0:
            return default
        return self.taken / total

    def record(self, taken):
        if taken:
            self.taken += 1
        else:
            self.not_taken += 1


class ReceiverProfile:
    """Receiver-type histogram for one virtual/interface callsite."""

    __slots__ = ("counts", "overflow", "total")

    def __init__(self):
        self.counts = {}
        self.overflow = 0
        self.total = 0

    def record(self, class_name):
        self.total += 1
        count = self.counts.get(class_name)
        if count is not None:
            self.counts[class_name] = count + 1
        elif len(self.counts) < MAX_RECORDED_TYPES:
            self.counts[class_name] = 1
        else:
            self.overflow += 1

    @property
    def is_megamorphic(self):
        return self.overflow > 0

    def observed_types(self):
        """``[(class_name, probability)]`` sorted by descending probability."""
        if self.total == 0:
            return []
        items = sorted(
            self.counts.items(), key=lambda item: (-item[1], item[0])
        )
        return [(name, count / self.total) for name, count in items]

    def monomorphic_type(self, min_probability=1.0):
        """The single observed type, if its probability reaches the bar."""
        types = self.observed_types()
        if len(types) == 1 and not self.is_megamorphic:
            name, prob = types[0]
            if prob >= min_probability:
                return name
        return None


class TypeCheckProfile:
    """Operand-type histogram for one INSTANCEOF/CHECKCAST site.

    Null operands are tracked separately (``nulls``) rather than as a
    pseudo-type: a speculated exact-type guard cannot cover null, so the
    compiler must know whether the site ever saw one.
    """

    __slots__ = ("counts", "overflow", "nulls", "total")

    def __init__(self):
        self.counts = {}
        self.overflow = 0
        self.nulls = 0
        self.total = 0

    def record(self, class_name):
        """Record one observed operand; ``None`` means a null operand."""
        self.total += 1
        if class_name is None:
            self.nulls += 1
            return
        count = self.counts.get(class_name)
        if count is not None:
            self.counts[class_name] = count + 1
        elif len(self.counts) < MAX_RECORDED_TYPES:
            self.counts[class_name] = 1
        else:
            self.overflow += 1

    @property
    def is_megamorphic(self):
        return self.overflow > 0

    def observed_types(self):
        """``[(class_name, probability)]`` sorted by descending probability.

        Probabilities are relative to *all* operands including nulls,
        so a half-null site never looks monomorphic.
        """
        if self.total == 0:
            return []
        items = sorted(
            self.counts.items(), key=lambda item: (-item[1], item[0])
        )
        return [(name, count / self.total) for name, count in items]

    def monomorphic_type(self):
        """The single observed non-null type, or None.

        Unlike :meth:`ReceiverProfile.monomorphic_type` there is no
        probability bar: any null or second type disqualifies the site
        outright, because a refuted type-check guard deopts the whole
        root rather than falling back to a slow path.
        """
        if (
            self.total > 0
            and self.nulls == 0
            and not self.is_megamorphic
            and len(self.counts) == 1
        ):
            return next(iter(self.counts))
        return None


class MethodProfile:
    """All profile data for one method."""

    __slots__ = (
        "invocations",
        "branches",
        "backedges",
        "callsites",
        "receivers",
        "typechecks",
    )

    def __init__(self):
        self.invocations = 0
        self.branches = {}  # instr index -> BranchProfile
        self.backedges = {}  # instr index -> int
        self.callsites = {}  # instr index -> execution count
        self.receivers = {}  # instr index -> ReceiverProfile
        self.typechecks = {}  # instr index -> TypeCheckProfile

    def branch(self, index):
        profile = self.branches.get(index)
        if profile is None:
            profile = self.branches[index] = BranchProfile()
        return profile

    def record_backedge(self, index):
        self.backedges[index] = self.backedges.get(index, 0) + 1

    def backedge_count(self, index):
        """Taken-backedge count at one branch pc (the OSR trigger)."""
        return self.backedges.get(index, 0)

    def record_callsite(self, index):
        self.callsites[index] = self.callsites.get(index, 0) + 1

    def receiver(self, index):
        profile = self.receivers.get(index)
        if profile is None:
            profile = self.receivers[index] = ReceiverProfile()
        return profile

    def typecheck(self, index):
        profile = self.typechecks.get(index)
        if profile is None:
            profile = self.typechecks[index] = TypeCheckProfile()
        return profile

    def backedge_total(self):
        return sum(self.backedges.values())

    def hotness(self):
        """Scalar hotness: invocations plus a backedge contribution.

        Mirrors HotSpot's combined invocation+backedge threshold so
        that a method with one long-running loop still gets hot. The
        single definition of the formula — :meth:`ProfileStore.hotness`
        and :meth:`ProfileStore.hottest` both delegate here so the
        dispatch trigger and the reporting path can never drift.
        """
        return self.invocations + self.backedge_total() // 8

    def callsite_frequency(self, index):
        """Executions of the callsite per invocation of the method.

        This is the per-method factor of the paper's relative call
        frequency f(n): multiplying these factors down a call-tree path
        yields the frequency of a node relative to the compilation root.
        """
        if self.invocations == 0:
            return 1.0
        return self.callsites.get(index, 0) / self.invocations


class ProfileStore:
    """Profiles for every method, keyed by qualified method name.

    With ``context_sensitive=True`` the store additionally keeps a
    one-level-context profile per ``(caller, method)`` pair. HotSpot's
    profiles are context-insensitive, and the paper names
    context-sensitive profiles as a possible improvement it could not
    evaluate (§VI, citing Hazelwood & Grove); this flag implements that
    extension: the interpreter feeds both tables, and the inliner can
    request the profile *as seen from a specific caller* when
    specializing a call-tree node (see
    :meth:`~repro.jit.compiler.CompileContext.build_callee_graph`).
    """

    def __init__(self, context_sensitive=False, obs=None):
        self._methods = {}
        self._contexts = {}
        self.context_sensitive = context_sensitive
        self._obs = obs
        #: Bumped on :meth:`clear` so interpreters holding memoized
        #: profile objects (and pre-decoded handler tables bound to
        #: them) know to re-fetch.
        self.generation = 0

    def of(self, method, caller=None):
        key = method.qualified_name
        profile = self._methods.get(key)
        if profile is None:
            profile = self._methods[key] = MethodProfile()
            if self._obs is not None and self._obs.enabled:
                self._obs.metrics.gauge("profile.methods").set(
                    len(self._methods)
                )
        if self.context_sensitive and caller is not None:
            context_key = (caller.qualified_name, key)
            context_profile = self._contexts.get(context_key)
            if context_profile is None:
                context_profile = self._contexts[context_key] = MethodProfile()
            return _FanoutProfile(profile, context_profile)
        return profile

    def maybe_of(self, method):
        """Like :meth:`of` but returns None instead of creating."""
        return self._methods.get(method.qualified_name)

    def context_profile(self, method, caller):
        """The profile of *method* as observed when called from
        *caller*, or None when unavailable."""
        if caller is None:
            return None
        return self._contexts.get(
            (caller.qualified_name, method.qualified_name)
        )

    def view_for_caller(self, caller):
        """A read view preferring context profiles from *caller*."""
        return _ContextView(self, caller)

    def clear(self):
        self._methods.clear()
        self._contexts.clear()
        self.generation += 1

    def snapshot(self):
        """A deep copy safe to hand to another thread.

        Background compilation (:mod:`repro.serve`) reads profiles off
        the application thread; handing the compiler a snapshot taken
        on the *submitting* thread means it never iterates a dict the
        interpreter is concurrently growing. Writers in other tenant
        threads can still race the copy (shared aggregate profiles), so
        a copy that observes a mid-iteration size change is simply
        retried.
        """
        import copy

        for _ in range(8):
            try:
                clone = ProfileStore(
                    context_sensitive=self.context_sensitive
                )
                clone._methods = copy.deepcopy(self._methods)
                clone._contexts = copy.deepcopy(self._contexts)
                clone.generation = self.generation
                return clone
            except RuntimeError:
                continue
        # Pathological contention: fall back to an empty store — the
        # compiler degrades to default profiles, never to a crash.
        return ProfileStore(context_sensitive=self.context_sensitive)

    def hotness(self, method):
        """Scalar hotness of *method* (see :meth:`MethodProfile.hotness`)."""
        profile = self._methods.get(method.qualified_name)
        if profile is None:
            return 0
        return profile.hotness()

    def hottest(self, limit=10):
        """The *limit* hottest profiled methods as ``[(name, hotness)]``."""
        scores = [
            (name, profile.hotness())
            for name, profile in self._methods.items()
        ]
        scores.sort(key=lambda item: (-item[1], item[0]))
        return scores[:limit]

    def __len__(self):
        return len(self._methods)


class _FanoutProfile:
    """Write proxy that records into the aggregate profile *and* into
    one context profile (what the interpreter holds while a method runs
    in context-sensitive mode)."""

    __slots__ = ("aggregate", "context")

    def __init__(self, aggregate, context):
        self.aggregate = aggregate
        self.context = context

    # The interpreter's write surface:

    @property
    def invocations(self):
        return self.aggregate.invocations

    @invocations.setter
    def invocations(self, value):
        delta = value - self.aggregate.invocations
        self.aggregate.invocations = value
        self.context.invocations += delta

    def branch(self, index):
        return _FanoutBranch(
            self.aggregate.branch(index), self.context.branch(index)
        )

    def record_backedge(self, index):
        self.aggregate.record_backedge(index)
        self.context.record_backedge(index)

    def backedge_count(self, index):
        # The OSR trigger reads the aggregate counter: context profiles
        # partition the same executions, so gating on the aggregate
        # keeps the transfer point independent of the caller context.
        return self.aggregate.backedge_count(index)

    def record_callsite(self, index):
        self.aggregate.record_callsite(index)
        self.context.record_callsite(index)

    def receiver(self, index):
        return _FanoutReceiver(
            self.aggregate.receiver(index), self.context.receiver(index)
        )

    def typecheck(self, index):
        return _FanoutTypeCheck(
            self.aggregate.typecheck(index), self.context.typecheck(index)
        )


class _FanoutBranch:
    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b

    def record(self, taken):
        self.a.record(taken)
        self.b.record(taken)


class _FanoutReceiver:
    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b

    def record(self, class_name):
        self.a.record(class_name)
        self.b.record(class_name)


class _FanoutTypeCheck:
    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b

    def record(self, class_name):
        self.a.record(class_name)
        self.b.record(class_name)


class _ContextView:
    """Read view over a ProfileStore that prefers the profiles observed
    from one specific caller, falling back to the aggregate."""

    __slots__ = ("store", "caller")

    def __init__(self, store, caller):
        self.store = store
        self.caller = caller

    def maybe_of(self, method):
        profile = self.store.context_profile(method, self.caller)
        if profile is not None and profile.invocations > 0:
            return profile
        return self.store.maybe_of(method)
