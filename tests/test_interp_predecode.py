"""Differential tests for the pre-decoded interpreter tier.

The fast tier's contract is *bit-identical observables*: for any
program, ``Interpreter(..., predecode=True)`` must produce the same
return values, the same printed output, the same ``ops_executed``
count, the same traps (kind and message), and — because the JIT feeds
on them — the same recorded profiles as the classic dispatch loop.
These tests drive both tiers over the shared helper programs, the
guest-integer edge-case table, trap shapes, and full tiered-engine
runs, comparing every observable.
"""

import pytest

from repro.bytecode import MethodBuilder
from repro.bytecode.opcodes import Op
from repro.errors import LinkError, TrapError, VMError
from repro.interp import Interpreter
from repro.interp.profiles import ProfileStore
from repro.jit.config import JitConfig
from repro.jit.engine import Engine
from repro.runtime import VMState
from repro.runtime.int64 import INT64_MAX, INT64_MIN
from tests.helpers import (
    SHAPES_RESULT,
    fresh_program,
    shapes_program,
    single_method_program,
)
from tests.test_semantics_differential import EDGE_CASES, _binop_program


def _method_dump(profile):
    return {
        "invocations": profile.invocations,
        "branches": {
            pc: (cell.taken, cell.not_taken)
            for pc, cell in profile.branches.items()
        },
        "backedges": dict(profile.backedges),
        "callsites": dict(profile.callsites),
        "receivers": {
            pc: (dict(cell.counts), cell.overflow, cell.total)
            for pc, cell in profile.receivers.items()
        },
        "typechecks": {
            pc: (dict(cell.counts), cell.overflow, cell.nulls, cell.total)
            for pc, cell in profile.typechecks.items()
        },
    }


def _profile_dump(store):
    """Every recorded profile datum (aggregate and per-context) as a
    comparable structure."""
    return (
        {name: _method_dump(p) for name, p in store._methods.items()},
        {key: _method_dump(p) for key, p in store._contexts.items()},
    )


def _run_both(program, class_name, method_name, args=()):
    """Execute under both tiers; assert observables match; return value."""
    method = program.lookup_method(class_name, method_name)
    vm_c = VMState(program)
    classic = Interpreter(vm_c, predecode=False)
    vm_p = VMState(program)
    fast = Interpreter(vm_p, predecode=True)

    value_c = classic.execute(method, list(args))
    value_p = fast.execute(method, list(args))

    assert value_p == value_c
    assert vm_p.output == vm_c.output
    assert fast.ops_executed == classic.ops_executed
    assert _profile_dump(fast.profiles) == _profile_dump(classic.profiles)
    return value_c


# ----------------------------------------------------------------------
# Value / profile equivalence
# ----------------------------------------------------------------------


def test_shapes_program_identical():
    assert (
        _run_both(shapes_program(), "Main", "run") == SHAPES_RESULT
    )


@pytest.mark.parametrize(
    "op,a,b,expected",
    EDGE_CASES,
    ids=["%s_%d_%d" % (op, a, b) for op, a, b, _ in EDGE_CASES],
)
def test_integer_edge_cases(op, a, b, expected):
    assert _run_both(_binop_program(op), "T", "f", [a, b]) == expected


def _typecheck_program():
    """Shapes plus ``Main.probe(k)``: INSTANCEOF/CHECKCAST over a
    null (k=0), ObjRef (k=1) or ArrayRef (k=2) operand."""
    program = shapes_program()
    b = MethodBuilder("probe", ["int"], "int", is_static=True)
    pick_obj = b.new_label()
    pick_arr = b.new_label()
    check = b.new_label()
    slot = b.alloc_local()
    b.null().store(slot)
    b.load(0).const(1).eq().if_true(pick_obj)
    b.load(0).const(2).eq().if_true(pick_arr)
    b.goto(check)
    b.place(pick_obj).new("Square").store(slot).goto(check)
    b.place(pick_arr).const(3).newarray("int").store(slot).goto(check)
    b.place(check)
    b.load(slot).instanceof("Shape")
    b.load(slot).instanceof("int[]").add()
    b.load(slot).checkcast("Object").store(slot)
    b.load(slot).instanceof("Square").add()
    b.retv()
    program.klass("Main").add_method(b.build())
    return program


def test_typecheck_profile_parity():
    """Classic pops-then-appends vs predecode in-place stack mutation:
    results and recorded type-check histograms must be bit-identical
    over null, object and array operands."""
    program = _typecheck_program()
    assert _run_both(program, "Main", "probe", [0]) == 0
    assert _run_both(program, "Main", "probe", [1]) == 2
    assert _run_both(program, "Main", "probe", [2]) == 1


def test_typecheck_profile_parity_accumulates():
    """One interpreter pair across a mixed operand sequence: the full
    type-check histograms (counts, nulls, totals) stay identical."""
    program = _typecheck_program()
    method = program.lookup_method("Main", "probe")
    vm_c = VMState(program)
    classic = Interpreter(vm_c, predecode=False)
    vm_p = VMState(program)
    fast = Interpreter(vm_p, predecode=True)
    for k in (0, 1, 2, 1, 0):
        assert fast.execute(method, [k]) == classic.execute(method, [k])
    assert _profile_dump(fast.profiles) == _profile_dump(classic.profiles)
    profile = classic.profiles.of(method)
    assert profile.typechecks, "no type-check cells recorded"
    merged = {}
    for cell in profile.typechecks.values():
        for name, count in cell.counts.items():
            merged[name] = merged.get(name, 0) + count
    assert merged.get("Square", 0) > 0
    assert merged.get("int[]", 0) > 0
    assert any(cell.nulls for cell in profile.typechecks.values())


def test_failing_cast_profile_parity():
    """A cast that always traps still records its operand type — in
    both tiers, identically, with the same trap kind."""
    program = shapes_program()
    b = MethodBuilder("bad", [], "int", is_static=True)
    b.new("Circle").checkcast("Square").instanceof("Square").retv()
    program.klass("Main").add_method(b.build())
    method = program.lookup_method("Main", "bad")
    vm_c = VMState(program)
    classic = Interpreter(vm_c, predecode=False)
    vm_p = VMState(program)
    fast = Interpreter(vm_p, predecode=True)
    with pytest.raises(TrapError) as trap_c:
        classic.execute(method, [])
    with pytest.raises(TrapError) as trap_p:
        fast.execute(method, [])
    assert trap_p.value.kind == trap_c.value.kind
    assert _profile_dump(fast.profiles) == _profile_dump(classic.profiles)
    cells = classic.profiles.of(method).typechecks
    assert any(cell.counts.get("Circle") for cell in cells.values())


def test_backedge_recording_parity():
    """Both tiers record the same backedge counters at the same pcs.

    The workload mixes every branch shape: a backward taken IF (the
    inner do-while backedge), a backward GOTO (the outer backedge), a
    forward exit IF and a forward always-taken skip IF — only the two
    backward branches may appear in ``profile.backedges``. OSR triggers
    off these counters, so a tier recording them differently would
    change where (or whether) frames transfer.
    """

    def build(b):
        acc = b.alloc_local()
        i = b.alloc_local()
        j = b.alloc_local()
        b.const(0).store(acc)
        b.const(0).store(i)
        outer = b.new_label()
        done = b.new_label()
        b.place(outer).load(i).load(0).ge().if_true(done)  # forward exit
        b.const(0).store(j)
        inner = b.new_label()
        b.place(inner)
        b.load(acc).const(1).add().store(acc)
        b.load(j).const(1).add().store(j)
        b.load(j).const(3).lt().if_true(inner)  # backward IF backedge
        skip = b.new_label()
        b.load(acc).const(0).ge().if_true(skip)  # forward, always taken
        b.load(acc).const(100).add().store(acc)  # dead
        b.place(skip)
        b.load(i).const(1).add().store(i)
        b.goto(outer)  # backward GOTO backedge
        b.place(done).load(acc).retv()

    program = single_method_program(build)
    # 7 outer iterations x 3 inner increments; the dead +100 never runs.
    assert _run_both(program, "T", "f", [7]) == 21

    # _run_both already pinned tier parity; now pin the *content*: the
    # inner IF backedge fires twice per outer iteration (j = 1, 2), the
    # outer GOTO once, and neither forward branch is counted.
    classic = Interpreter(VMState(program), predecode=False)
    classic.execute(program.lookup_method("T", "f"), [7])
    profile = classic.profiles._methods["T.f"]
    assert sorted(profile.backedges.values()) == [7, 14]
    assert profile.backedge_total() == 21
    for pc in profile.backedges:
        instr = program.lookup_method("T", "f").code[pc]
        assert instr.target <= pc  # truly backward


def test_repeated_calls_accumulate_identically():
    program = shapes_program()
    method = program.lookup_method("Main", "run")
    classic = Interpreter(VMState(program), predecode=False)
    fast = Interpreter(VMState(program), predecode=True)
    for _ in range(3):
        assert fast.execute(method, []) == classic.execute(method, [])
    assert fast.ops_executed == classic.ops_executed
    assert _profile_dump(fast.profiles) == _profile_dump(classic.profiles)


def test_context_sensitive_profiles_identical():
    program = shapes_program()
    method = program.lookup_method("Main", "run")
    dumps = []
    for predecode in (False, True):
        store = ProfileStore(context_sensitive=True)
        interp = Interpreter(
            VMState(program), profiles=store, predecode=predecode
        )
        interp.execute(method, [])
        dumps.append(_profile_dump(store))
    assert dumps[0] == dumps[1]


# ----------------------------------------------------------------------
# Traps
# ----------------------------------------------------------------------


def _trap_program(build_fn, params=("int",)):
    return single_method_program(build_fn, params=params)


TRAP_CASES = [
    (
        "div_by_zero",
        lambda b: b.load(0).const(0).div().retv(),
        [7],
    ),
    (
        "rem_by_zero",
        lambda b: b.load(0).const(0).rem().retv(),
        [7],
    ),
    (
        "null_getfield",
        lambda b: b.null().getfield("T", "x").retv(),
        [0],
    ),
    (
        "negative_array",
        lambda b: b.load(0).newarray("int").arraylen().retv(),
        [-3],
    ),
    (
        "array_oob",
        lambda b: b.const(2).newarray("int").const(5).aload().retv(),
        [0],
    ),
]


@pytest.mark.parametrize(
    "name,build,args", TRAP_CASES, ids=[c[0] for c in TRAP_CASES]
)
def test_traps_identical(name, build, args):
    if name == "null_getfield":
        # getfield needs the field to exist for the verifier; build a
        # class with one.
        from repro.bytecode.klass import FieldDef

        program = fresh_program()
        holder = program.define_class("T", is_abstract=True)
        holder.add_field(FieldDef("x", "int"))
        from repro.bytecode import MethodBuilder, verify_program

        builder = MethodBuilder("f", ["int"], "int", is_static=True)
        build(builder)
        holder.add_method(builder.build())
        verify_program(program)
    else:
        program = _trap_program(build)
    method = program.lookup_method("T", "f")

    outcomes = []
    for predecode in (False, True):
        interp = Interpreter(VMState(program), predecode=predecode)
        try:
            interp.execute(method, list(args))
            outcomes.append(("value", None))
        except VMError as exc:
            outcomes.append(("trap", str(exc)))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] == "trap"


def test_trap_abandons_frame_ops_identically():
    # ops_executed must match even when a trap unwinds mid-frame:
    # classic only adds a frame's ops at RET, and the predecode driver
    # mirrors that.
    def build(b):
        loop = b.new_label()
        i = b.alloc_local()
        b.const(0).store(i)
        b.place(loop)
        b.load(i).const(1).add().store(i)
        b.load(i).const(5).lt().if_true(loop)
        b.load(0).const(0).div().retv()

    program = _trap_program(build)
    method = program.lookup_method("T", "f")
    counts = []
    for predecode in (False, True):
        interp = Interpreter(VMState(program), predecode=predecode)
        with pytest.raises(VMError):
            interp.execute(method, [7])
        counts.append(interp.ops_executed)
    assert counts[0] == counts[1]


def test_unlinkable_invoke_in_dead_code_does_not_trap():
    # Classic resolves invoke targets lazily at execution; a decode-time
    # resolver must not turn dead unlinkable calls into eager errors.
    program = fresh_program()
    from repro.bytecode import MethodBuilder

    holder = program.define_class("T", is_abstract=True)
    builder = MethodBuilder("f", ["int"], "int", is_static=True)
    skip = builder.new_label()
    builder.const(1).if_true(skip)
    builder.load(0).invokestatic("Ghost", "missing").retv()
    builder.place(skip).load(0).retv()
    holder.add_method(builder.build())
    method = program.lookup_method("T", "f")

    for predecode in (False, True):
        interp = Interpreter(VMState(program), predecode=predecode)
        assert interp.execute(method, [42]) == 42

    # ... but executing the unlinkable path raises the same LinkError.
    messages = []
    for predecode in (False, True):
        builder = MethodBuilder("g", ["int"], "int", is_static=True)
        builder.load(0).invokestatic("Ghost", "missing").retv()
        prog = fresh_program()
        prog.define_class("T", is_abstract=True).add_method(builder.build())
        interp = Interpreter(VMState(prog), predecode=predecode)
        with pytest.raises(LinkError) as exc_info:
            interp.execute(prog.lookup_method("T", "g"), [1])
        messages.append(str(exc_info.value))
    assert messages[0] == messages[1]


# ----------------------------------------------------------------------
# Engine integration: cycle model must be bit-identical
# ----------------------------------------------------------------------


def _engine_cycles(program, predecode, inliner=None, iterations=8):
    engine = Engine(
        program,
        JitConfig(hot_threshold=10, interp_predecode=predecode),
        inliner=inliner,
        seed=0x5EED,
    )
    curve = []
    value = None
    for _ in range(iterations):
        result = engine.run_iteration("Main", "run")
        curve.append(result.total_cycles)
        value = result.value
    return value, curve


def test_engine_cycle_model_identical():
    program = shapes_program()
    value_c, curve_c = _engine_cycles(program, predecode=False)
    value_p, curve_p = _engine_cycles(program, predecode=True)
    assert value_p == value_c == SHAPES_RESULT
    assert curve_p == curve_c


def test_engine_cycle_model_identical_with_inliner():
    from repro.baselines import tuned_inliner

    program = shapes_program()
    value_c, curve_c = _engine_cycles(
        program, predecode=False, inliner=tuned_inliner(0.1)
    )
    value_p, curve_p = _engine_cycles(
        program, predecode=True, inliner=tuned_inliner(0.1)
    )
    assert value_p == value_c
    assert curve_p == curve_c


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------


def test_env_knob_selects_tier(monkeypatch):
    program = shapes_program()
    monkeypatch.setenv("REPRO_INTERP", "predecode")
    assert Interpreter(VMState(program)).predecode is True
    monkeypatch.setenv("REPRO_INTERP", "classic")
    assert Interpreter(VMState(program)).predecode is False
    monkeypatch.delenv("REPRO_INTERP")
    assert Interpreter(VMState(program)).predecode is False
    # An explicit flag always wins over the environment.
    monkeypatch.setenv("REPRO_INTERP", "predecode")
    assert Interpreter(VMState(program), predecode=False).predecode is False


def test_jit_config_threads_flag_to_interpreter():
    program = shapes_program()
    engine = Engine(program, JitConfig(interp_predecode=True))
    assert engine.interpreter.predecode is True
    engine = Engine(program, JitConfig(interp_predecode=False))
    assert engine.interpreter.predecode is False


def test_caches_invalidate_on_program_growth():
    # Adding a class bumps Program.generation; cached predecode tables
    # and profile memos must be discarded so new resolutions are seen.
    program = shapes_program()
    interp = Interpreter(VMState(program), predecode=True)
    method = program.lookup_method("Main", "run")
    interp.execute(method, [])
    assert interp._predecode_tables
    program.define_class("Late", is_abstract=True)
    interp.execute(method, [])
    # The table cache was rebuilt after the generation bump.
    assert interp._cache_generation == (
        interp.profiles, interp.profiles.generation, program.generation
    )


def test_caches_invalidate_on_profile_store_swap():
    # Replacing the ProfileStore object entirely (not just clearing it)
    # is the regression case: the new store starts at the same
    # generation number as the old one, so a generation-only check
    # would keep stale predecode tables and memoized profile handles
    # pointing at the orphaned store.  The cache key must include the
    # store's identity.
    program = shapes_program()
    interp = Interpreter(VMState(program), predecode=True)
    method = program.lookup_method("Main", "run")
    interp.execute(method, [])
    old_tables = dict(interp._predecode_tables)
    assert old_tables

    fresh = ProfileStore()
    assert fresh.generation == interp.profiles.generation
    interp.profiles = fresh
    interp.execute(method, [])

    # Tables were re-decoded (new objects, not the stale ones) and the
    # cache key now names the new store.
    assert interp._predecode_tables
    for key, table in interp._predecode_tables.items():
        assert old_tables.get(key) is not table
    assert interp._cache_generation == (
        fresh, fresh.generation, program.generation
    )
    # The run recorded into the *new* store, identically to a fresh run.
    classic = Interpreter(VMState(program), predecode=False)
    classic.execute(method, [])
    assert _profile_dump(fresh) == _profile_dump(classic.profiles)


def test_caches_invalidate_on_profile_clear():
    program = shapes_program()
    interp = Interpreter(VMState(program), predecode=True)
    method = program.lookup_method("Main", "run")
    interp.execute(method, [])
    interp.profiles.clear()
    interp.execute(method, [])
    dump = _profile_dump(interp.profiles)
    # After the clear, profiles must look like a single fresh run.
    classic = Interpreter(VMState(program), predecode=False)
    classic.execute(method, [])
    assert dump == _profile_dump(classic.profiles)
