"""dec-tree — decision tree training/prediction (Spark MLLib).

MLLib's tree code evaluates candidate splits over feature vectors
behind an impurity abstraction. We model: prediction sweeps through an
existing tree (polymorphic internal/leaf nodes), plus best-split
scanning with an ``Impurity`` strategy object per candidate threshold.
"""

DESCRIPTION = "split scanning with impurity strategies plus tree prediction"
ITERATIONS = 14

SOURCE = """
trait TreeNode {
  def predict(features: int[]): int;
}

class Leaf implements TreeNode {
  var label: int;
  def init(label: int): void { this.label = label; }
  def predict(features: int[]): int { return this.label; }
}

class Split implements TreeNode {
  var feature: int;
  var threshold: int;
  var left: TreeNode;
  var right: TreeNode;
  def init(feature: int, threshold: int, left: TreeNode, right: TreeNode): void {
    this.feature = feature; this.threshold = threshold;
    this.left = left; this.right = right;
  }
  def predict(features: int[]): int {
    if (features[this.feature] <= this.threshold) {
      return this.left.predict(features);
    }
    return this.right.predict(features);
  }
}

trait Impurity {
  def score(leftPos: int, leftTotal: int, rightPos: int, rightTotal: int): int;
}

class Gini implements Impurity {
  def score(leftPos: int, leftTotal: int, rightPos: int, rightTotal: int): int {
    if (leftTotal == 0 || rightTotal == 0) { return 0; }
    var lp: int = (leftPos << 8) / leftTotal;
    var rp: int = (rightPos << 8) / rightTotal;
    var lg: int = (lp * (256 - lp)) >> 8;
    var rg: int = (rp * (256 - rp)) >> 8;
    return 256 - (lg * leftTotal + rg * rightTotal) / (leftTotal + rightTotal);
  }
}

object Main {
  static var data: int[];     // rows of 4 features + label
  static var tree: TreeNode;

  def setup(): void {
    var n: int = 160;
    var data: int[] = new int[n * 5];
    var x: int = 3;
    var i: int = 0;
    while (i < n) {
      var f0: int = 0;
      x = (x * 29 + 7) % 511;  f0 = x;       data[i * 5] = x;
      x = (x * 29 + 7) % 511;  data[i * 5 + 1] = x;
      x = (x * 29 + 7) % 511;  data[i * 5 + 2] = x;
      x = (x * 29 + 7) % 511;  data[i * 5 + 3] = x;
      if (f0 > 255) { data[i * 5 + 4] = 1; } else { data[i * 5 + 4] = 0; }
      i = i + 1;
    }
    Main.data = data;
    Main.tree = new Split(0, 255,
        new Split(1, 128, new Leaf(0), new Leaf(0)),
        new Split(2, 300, new Leaf(1), new Leaf(1)));
  }

  def bestSplit(feature: int, imp: Impurity): int {
    var n: int = Main.data.length / 5;
    var best: int = 0;
    var bestScore: int = 0 - 1;
    var t: int = 32;
    while (t < 512) {
      var lp: int = 0; var lt: int = 0; var rp: int = 0; var rt: int = 0;
      var i: int = 0;
      while (i < n) {
        var v: int = Main.data[i * 5 + feature];
        var label: int = Main.data[i * 5 + 4];
        if (v <= t) { lt = lt + 1; lp = lp + label; }
        else { rt = rt + 1; rp = rp + label; }
        i = i + 1;
      }
      var s: int = imp.score(lp, lt, rp, rt);
      if (s > bestScore) { bestScore = s; best = t; }
      t = t + 96;
    }
    return best + bestScore;
  }

  def run(): int {
    if (Main.data == null) { Main.setup(); }
    var imp: Impurity = new Gini();
    var acc: int = 0;
    var f: int = 0;
    while (f < 4) {
      acc = acc + Main.bestSplit(f, imp);
      f = f + 1;
    }
    var n: int = Main.data.length / 5;
    var i: int = 0;
    var features: int[] = new int[4];
    while (i < n) {
      features[0] = Main.data[i * 5];
      features[1] = Main.data[i * 5 + 1];
      features[2] = Main.data[i * 5 + 2];
      features[3] = Main.data[i * 5 + 3];
      acc = acc + Main.tree.predict(features);
      i = i + 1;
    }
    return acc;
  }
}
"""
