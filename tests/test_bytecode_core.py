"""Unit tests for instructions, opcodes, methods and classes."""

import pytest

from repro.bytecode import Instr, Op, is_branch, is_invoke, stack_effect
from repro.bytecode.klass import ClassDef, FieldDef
from repro.bytecode.method import Method
from repro.bytecode.opcodes import is_terminator, has_receiver
from repro.errors import BytecodeError
from tests.helpers import fresh_program


class TestInstr:
    def test_equality_and_hash(self):
        assert Instr(Op.CONST, 5) == Instr(Op.CONST, 5)
        assert Instr(Op.CONST, 5) != Instr(Op.CONST, 6)
        assert hash(Instr(Op.ADD)) == hash(Instr(Op.ADD))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(BytecodeError):
            Instr("FROBNICATE")

    def test_with_target_retargets_branch(self):
        instr = Instr(Op.GOTO, 3)
        assert instr.with_target(7).target == 7
        assert instr.target == 3  # original unchanged

    def test_repr_contains_operands(self):
        assert "GETFIELD" in repr(Instr(Op.GETFIELD, "A", "x"))


class TestOpcodeMetadata:
    def test_branch_classification(self):
        assert is_branch(Op.IF)
        assert is_branch(Op.GOTO)
        assert not is_branch(Op.ADD)

    def test_terminators(self):
        for op in (Op.GOTO, Op.RET, Op.RETV):
            assert is_terminator(op)
        assert not is_terminator(Op.IF)  # IF falls through

    def test_receiver_invokes(self):
        assert has_receiver(Op.INVOKEVIRTUAL)
        assert has_receiver(Op.INVOKEINTERFACE)
        assert has_receiver(Op.INVOKESPECIAL)
        assert not has_receiver(Op.INVOKESTATIC)
        assert is_invoke(Op.INVOKESTATIC)

    def test_fixed_stack_effects(self):
        assert stack_effect(Op.ADD) == (2, 1)
        assert stack_effect(Op.CONST) == (0, 1)
        assert stack_effect(Op.ASTORE) == (3, 0)
        assert stack_effect(Op.DUP) == (1, 2)

    def test_invoke_stack_effect_uses_signature(self):
        program = fresh_program()
        holder = program.define_class("H", is_abstract=True)
        holder.add_method(
            Method("f", ["int", "int"], "int", code=[Instr(Op.CONST, 0), Instr(Op.RETV)], is_static=True)
        )
        holder.add_method(
            Method("g", ["int"], "void", code=[Instr(Op.RET)], is_static=True)
        )
        instr = Instr(Op.INVOKESTATIC, "H", "f")
        assert stack_effect(Op.INVOKESTATIC, instr, program) == (2, 1)
        instr = Instr(Op.INVOKESTATIC, "H", "g")
        assert stack_effect(Op.INVOKESTATIC, instr, program) == (1, 0)

    def test_invoke_effect_requires_context(self):
        with pytest.raises(ValueError):
            stack_effect(Op.INVOKESTATIC)


class TestMethod:
    def test_slots_and_arity(self):
        m = Method("f", ["int", "Foo"], "int", is_static=True)
        assert m.num_receiver_slots() == 0
        assert m.num_arg_slots() == 2
        m2 = Method("g", ["int"], "void")
        assert m2.num_receiver_slots() == 1
        assert m2.num_arg_slots() == 2
        assert not m2.returns_value()

    def test_abstract_with_code_rejected(self):
        with pytest.raises(BytecodeError):
            Method("f", [], "void", code=[Instr(Op.RET)], is_abstract=True)

    def test_native_is_never_inline(self):
        m = Method("f", [], "void", is_native=True)
        assert m.never_inline

    def test_qualified_name(self):
        program = fresh_program()
        holder = program.define_class("Holder", is_abstract=True)
        m = Method("f", [], "void", code=[Instr(Op.RET)], is_static=True)
        holder.add_method(m)
        assert m.qualified_name == "Holder.f"


class TestClassDef:
    def test_duplicate_field_rejected(self):
        klass = ClassDef("A")
        klass.add_field(FieldDef("x", "int"))
        with pytest.raises(BytecodeError):
            klass.add_field(FieldDef("x", "int"))

    def test_duplicate_method_rejected(self):
        klass = ClassDef("A")
        klass.add_method(Method("f", [], "void", code=[Instr(Op.RET)]))
        with pytest.raises(BytecodeError):
            klass.add_method(Method("f", [], "void", code=[Instr(Op.RET)]))

    def test_interface_is_abstract(self):
        assert ClassDef("I", is_interface=True).is_abstract

    def test_interfaces_have_no_superclass(self):
        assert ClassDef("I", is_interface=True).superclass is None
