"""The single definition of guest integer semantics (JVM ``long``).

Three independent executors evaluate guest arithmetic — the profiling
interpreter, the lowered register machine and the canonicalizer's
constant folder — and they must agree bit-for-bit on every input.  The
only way to guarantee that *by construction* is to give them one shared
implementation, which is this module: 64-bit two's-complement wrapping,
truncating division, JVM remainder.

Invariant: every guest integer value in the system is *wrapped*, i.e.
``wrap64(v) == v``.  Each executor re-establishes the invariant after
every arithmetic step (the bitwise ops and comparisons preserve it on
their own); ``tests/test_semantics_differential.py`` pins the edge
cases across all three executors.
"""

from repro.errors import DivisionByZeroTrap

_WRAP = 1 << 64
_SIGN = 1 << 63

#: The guest integer range, for tests and generators.
INT64_MIN = -_SIGN
INT64_MAX = _SIGN - 1


def wrap64(value):
    """Wrap a Python int to 64-bit two's-complement (JVM-style)."""
    value &= _WRAP - 1
    if value & _SIGN:
        value -= _WRAP
    return value


def is_wrapped(value):
    """True if *value* is already a valid guest integer."""
    return INT64_MIN <= value <= INT64_MAX


def int_div(a, b):
    """Division truncating toward zero, as on the JVM.

    The result is *not* wrapped: ``INT64_MIN / -1`` yields ``2**63``,
    which every caller must route through :func:`wrap64` (yielding
    ``INT64_MIN``, exactly as the JVM's ``ldiv`` overflows).
    """
    if b == 0:
        raise DivisionByZeroTrap()
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def int_rem(a, b):
    """Remainder with the sign of the dividend, as on the JVM.

    For wrapped operands the result is always representable
    (``|rem| < |b|`` and ``a % -1 == 0``), but callers wrap anyway so
    that all executors agree by construction.
    """
    if b == 0:
        raise DivisionByZeroTrap()
    return a - int_div(a, b) * b
