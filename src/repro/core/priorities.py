"""Benefit and priority formulas (§IV, Eq. 4–7 and 13–14).

Local benefit, Eq. 4 (N_s differs by kind)::

    B_L(n) = f(n) · (1 + N_s(n))
        N_s = #(more-concrete args)      for cutoff nodes
        N_s = #(trial optimizations)     for expanded nodes

Polymorphic nodes use the profile-weighted sum over speculated targets,
Eq. 13. Intrinsic exploration priority, Eq. 5::

    P_I(n) = B_L(n) / |ir(n)|                  kind = C
    P_I(n) = max over children of P_I(c)       kind = E

Final priority, Eq. 6–7: P(n) = P_I(n) − ψ(n), with the exploration
penalty ψ(n) = p1·S_irn(n) + p2·S_b(n) − b1·max(0, b2 − N_c(n)²).
Recursive callsites additionally pay ψ_r (Eq. 14) on their intrinsic
priority, which leaves shallow recursion untouched and suppresses deep
recursion exponentially.
"""

import os

from repro.core.calltree import NodeKind

#: When "off", expansion uses the uncached module functions — the A/B
#: baseline for the memoized :class:`PriorityCache` (results are
#: bit-identical either way; only wall time differs).
CACHE_ENABLED = (
    os.environ.get("REPRO_PRIORITY_CACHE", "").strip().lower() != "off"
)


def local_benefit(node):
    """B_L(n), Eq. 4 / Eq. 13."""
    kind = node.kind
    if kind == NodeKind.DELETED or kind == NodeKind.GENERIC:
        return 0.0
    if kind == NodeKind.POLYMORPHIC:
        return sum(
            child.probability * local_benefit(child) for child in node.children
        )
    if kind == NodeKind.CUTOFF:
        return node.frequency * (1.0 + node.concrete_arg_count)
    # Expanded.
    return node.frequency * (1.0 + node.trial_opt_count)


def intrinsic_priority(node, params):
    """P_I(n), Eq. 5, with the recursion penalty ψ_r applied to cutoffs."""
    kind = node.kind
    if kind == NodeKind.CUTOFF:
        size = max(1, node.ir_size())
        priority = local_benefit(node) / size
        return priority - recursion_penalty(node, params)
    if kind in (NodeKind.EXPANDED, NodeKind.POLYMORPHIC):
        best = float("-inf")
        for child in node.children:
            if child.kind == NodeKind.DELETED or child.kind == NodeKind.GENERIC:
                continue
            value = intrinsic_priority(child, params)
            if value > best:
                best = value
        return best if best != float("-inf") else 0.0
    return 0.0


def exploration_penalty(node, params):
    """ψ(n), Eq. 7."""
    n_c = node.n_c()
    return (
        params.p1 * node.s_irn()
        + params.p2 * node.s_b()
        - params.b1 * max(0.0, params.b2 - float(n_c * n_c))
    )


def priority(node, params):
    """P(n), Eq. 6."""
    return intrinsic_priority(node, params) - exploration_penalty(node, params)


def recursion_penalty(node, params):
    """ψ_r(n), Eq. 14: max(1, f(n)) · max(0, 2^d(n) − 2)."""
    depth = node.recursion_depth()
    if depth <= 0:
        return 0.0
    pressure = max(0.0, float(2 ** depth) - float(params.recursion_free_depth))
    if pressure == 0.0:
        return 0.0
    return max(1.0, node.frequency) * pressure


class PriorityCache:
    """Memoized subtree aggregates, valid between call-tree mutations.

    ``priority`` walks the whole subtree per call (s_irn / s_b / n_c,
    plus one ``Graph.node_count`` per expanded node), and the expansion
    phase evaluates it once per queue entry per descent — quadratic in
    tree size, and the dominant compile cost on expansion-heavy
    workloads. Between mutations of the tree (expansions, kind flips,
    observed deletions) every one of these values is constant, so the
    expansion phase keeps one cache and calls :meth:`invalidate` at
    each mutation point. All arithmetic matches the module functions
    operation-for-operation (integer subtree sums are order-free), so
    cached results are bit-identical to uncached ones.
    """

    __slots__ = ("params", "_aggregates", "_intrinsic", "_priority")

    def __init__(self, params):
        self.params = params
        self._aggregates = {}  # node -> (ir_size, s_irn, s_b, n_c)
        self._intrinsic = {}
        self._priority = {}

    def invalidate(self):
        self._aggregates.clear()
        self._intrinsic.clear()
        self._priority.clear()

    # -- subtree aggregates --------------------------------------------

    def aggregates(self, node):
        """``(ir_size, s_irn, s_b, n_c)`` for *node*, one post-order
        pass per epoch."""
        cache = self._aggregates
        hit = cache.get(node)
        if hit is not None:
            return hit
        stack = [(node, False)]
        while stack:
            current, ready = stack.pop()
            if current in cache:
                continue
            if ready:
                size = current.ir_size()
                is_cutoff = current.kind == NodeKind.CUTOFF
                s_irn = size
                s_b = size if is_cutoff else 0
                n_c = 1 if is_cutoff else 0
                for child in current.children:
                    _, child_irn, child_b, child_c = cache[child]
                    s_irn += child_irn
                    s_b += child_b
                    n_c += child_c
                cache[current] = (size, s_irn, s_b, n_c)
            else:
                stack.append((current, True))
                for child in current.children:
                    if child not in cache:
                        stack.append((child, False))
        return cache[node]

    def ir_size(self, node):
        return self.aggregates(node)[0]

    def s_irn(self, node):
        return self.aggregates(node)[1]

    # -- priorities ----------------------------------------------------

    def intrinsic_priority(self, node):
        """P_I(n), memoized; mirrors :func:`intrinsic_priority`."""
        memo = self._intrinsic
        value = memo.get(node)
        if value is not None:
            return value
        kind = node.kind
        if kind == NodeKind.CUTOFF:
            size = max(1, self.ir_size(node))
            value = local_benefit(node) / size
            value -= recursion_penalty(node, self.params)
        elif kind in (NodeKind.EXPANDED, NodeKind.POLYMORPHIC):
            best = float("-inf")
            for child in node.children:
                if (
                    child.kind == NodeKind.DELETED
                    or child.kind == NodeKind.GENERIC
                ):
                    continue
                child_value = self.intrinsic_priority(child)
                if child_value > best:
                    best = child_value
            value = best if best != float("-inf") else 0.0
        else:
            value = 0.0
        memo[node] = value
        return value

    def priority(self, node):
        """P(n), Eq. 6, memoized; mirrors :func:`priority`."""
        memo = self._priority
        value = memo.get(node)
        if value is not None:
            return value
        params = self.params
        _, s_irn, s_b, n_c = self.aggregates(node)
        penalty = (
            params.p1 * s_irn
            + params.p2 * s_b
            - params.b1 * max(0.0, params.b2 - float(n_c * n_c))
        )
        value = self.intrinsic_priority(node) - penalty
        memo[node] = value
        return value


class NullPriorityCache:
    """The uncached reference: every call recomputes via the module
    functions (the pre-cache behavior, selectable with
    ``REPRO_PRIORITY_CACHE=off``)."""

    __slots__ = ("params",)

    def __init__(self, params):
        self.params = params

    def invalidate(self):
        pass

    def ir_size(self, node):
        return node.ir_size()

    def s_irn(self, node):
        return node.s_irn()

    def intrinsic_priority(self, node):
        return intrinsic_priority(node, self.params)

    def priority(self, node):
        return priority(node, self.params)


def make_priority_cache(params):
    """A fresh cache honoring the runtime ``CACHE_ENABLED`` toggle."""
    if CACHE_ENABLED:
        return PriorityCache(params)
    return NullPriorityCache(params)
