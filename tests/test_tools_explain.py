"""The explain CLI: golden tree rendering, live/replay parity, and the
site-history answer to "why wasn't this inlined?"."""

import os

import pytest

from repro.tools import explain

EXAMPLE = os.path.join(
    os.path.dirname(__file__), "..", "examples", "figure1_foreach.minij"
)
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def golden(name):
    with open(os.path.join(GOLDEN_DIR, name)) as handle:
        return handle.read()


def run_cli(capsys, *argv):
    code = explain.main(list(argv))
    return code, capsys.readouterr().out


class TestGoldenRendering:
    def test_tree_matches_golden(self, capsys):
        """The full PrintInlining-style tree for the paper's Figure 1
        program is stable — it is derived from the deterministic cost
        model only (no wall-clock values are rendered)."""
        code, out = run_cli(capsys, EXAMPLE, "--iterations", "30")
        assert code == 0
        assert out == golden("explain_figure1_tree.txt")

    def test_site_history_matches_golden(self, capsys):
        code, out = run_cli(
            capsys, EXAMPLE, "--iterations", "30",
            "--root", "Main.run", "--site", "Box.get",
        )
        assert code == 0
        assert out == golden("explain_figure1_site.txt")


class TestLiveReplayParity:
    def test_saved_recording_replays_identically(self, tmp_path, capsys):
        """--save then replay must print the same report: the flight
        dump carries the full provenance, not a lossy summary."""
        saved = str(tmp_path / "flight.jsonl")
        _, live = run_cli(
            capsys, EXAMPLE, "--iterations", "30", "--save", saved
        )
        _, replayed = run_cli(capsys, saved)
        assert replayed == live

    def test_site_query_from_recording(self, tmp_path, capsys):
        saved = str(tmp_path / "flight.jsonl")
        run_cli(capsys, EXAMPLE, "--iterations", "30", "--save", saved)
        _, out = run_cli(
            capsys, saved, "--root", "Main.run", "--site", "Box.get"
        )
        assert out == golden("explain_figure1_site.txt")


class TestSiteAnswers:
    def test_unknown_site_lists_recorded_roots(self, capsys):
        _, out = run_cli(
            capsys, EXAMPLE, "--iterations", "30", "--site", "No.such"
        )
        assert "no recorded decision" in out
        assert "Main.run" in out  # the recorded roots are suggested

    def test_inlined_site_shows_numbers_and_verdict(self, capsys):
        _, out = run_cli(
            capsys, EXAMPLE, "--iterations", "30",
            "--root", "Main.run", "--site", "Main.log",
        )
        assert "Main.log" in out
        assert "verdict: inlined" in out
        assert "ratio=" in out and "thr=" in out

    def test_suffix_matching(self, capsys):
        _, full = run_cli(
            capsys, EXAMPLE, "--iterations", "30", "--site", "Main.log"
        )
        _, suffix = run_cli(
            capsys, EXAMPLE, "--iterations", "30", "--site", "log"
        )
        assert full == suffix
        assert "Main.log" in suffix


class TestNonTracingInliner:
    def test_baseline_inliner_explains_the_gap(self, capsys):
        code, out = run_cli(
            capsys, EXAMPLE, "--iterations", "30", "--inliner", "c2"
        )
        assert code == 0
        assert "no inlining provenance" in out
        assert "--inliner incremental" in out


class TestBadTarget:
    def test_unknown_target_errors(self, capsys):
        with pytest.raises(SystemExit):
            explain.main(["definitely-not-a-benchmark"])
