"""Dominator-scoped global value numbering.

Deduplicates computations with identical
:meth:`~repro.ir.nodes.Node.value_number_key` along dominator-tree
paths, the standard scoped-hash-table formulation. Only nodes that
expose a key participate (pure arithmetic, comparisons, type tests,
casts, array lengths); memory reads are handled by
:mod:`repro.opts.rwelim` instead, since their validity depends on kills.
"""

from repro.ir.dominators import compute_dominators


def global_value_numbering(graph):
    """Run GVN over *graph*; returns the number of nodes eliminated."""
    order = graph.reverse_postorder()
    if not order:
        return 0
    idom = compute_dominators(graph)
    children = {block: [] for block in order}
    for block in order:
        parent = idom.get(block)
        if parent is not None and parent is not block:
            children[parent].append(block)

    eliminated = 0
    scopes = [{}]

    def lookup(key):
        for scope in reversed(scopes):
            node = scope.get(key)
            if node is not None:
                return node
        return None

    def process(block):
        nonlocal eliminated
        scopes.append({})
        # Phis first: two phis in one block with identical inputs merge.
        seen_phis = {}
        for phi in list(block.phis):
            key = ("phi", tuple(id(i) for i in phi.inputs))
            existing = seen_phis.get(key)
            if existing is not None:
                graph.replace_uses(phi, existing)
                phi.clear_inputs()
                block.phis.remove(phi)
                phi.block = None
                eliminated += 1
            else:
                seen_phis[key] = phi
        for node in list(block.instrs):
            key = node.value_number_key()
            if key is None:
                continue
            existing = lookup(key)
            if existing is not None and existing.block is not None:
                graph.replace_uses(node, existing)
                node.clear_inputs()
                block.instrs.remove(node)
                node.block = None
                eliminated += 1
            else:
                scopes[-1][key] = node
        for child in children.get(block, ()):
            process(child)
        scopes.pop()

    process(order[0])
    return eliminated
