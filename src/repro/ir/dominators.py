"""Dominator tree and natural-loop discovery.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm on
the reverse postorder, and natural-loop detection from backedges. The
loop structure feeds the frequency annotation (loop trip counts scale
callsite frequencies f(n)) and the loop-peeling optimization.
"""


def compute_dominators(graph):
    """Return ``{block: immediate_dominator}``; the entry maps to itself."""
    order = graph.reverse_postorder()
    index_of = {block: i for i, block in enumerate(order)}
    idom = {order[0]: order[0]}

    def intersect(a, b):
        while a is not b:
            while index_of[a] > index_of[b]:
                a = idom[a]
            while index_of[b] > index_of[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            new_idom = None
            for pred in block.preds:
                if pred in idom and pred in index_of:
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = intersect(pred, new_idom)
            if new_idom is not None and idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True
    return idom


def dominates(idom, a, b):
    """True if *a* dominates *b* under the idom map (reflexive)."""
    while True:
        if a is b:
            return True
        parent = idom.get(b)
        if parent is None or parent is b:
            return a is b
        b = parent


class Loop:
    """One natural loop: header, member blocks, backedge predecessors."""

    __slots__ = ("header", "blocks", "backedge_preds", "parent", "frequency")

    def __init__(self, header):
        self.header = header
        self.blocks = {header}
        self.backedge_preds = []
        self.parent = None
        self.frequency = 1.0

    @property
    def depth(self):
        depth = 1
        loop = self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def __repr__(self):
        return "<Loop header=B%d, %d blocks>" % (self.header.id, len(self.blocks))


def compute_loops(graph, idom=None):
    """Find natural loops; returns them innermost-first.

    Two backedges to the same header merge into one loop. Nesting is
    recorded via :attr:`Loop.parent`.
    """
    if idom is None:
        idom = compute_dominators(graph)
    order = graph.reverse_postorder()
    reachable = set(order)
    loops_by_header = {}
    for block in order:
        for succ in block.successors():
            if succ in reachable and dominates(idom, succ, block):
                loop = loops_by_header.get(succ)
                if loop is None:
                    loop = loops_by_header[succ] = Loop(succ)
                loop.backedge_preds.append(block)
                _collect_loop_body(loop, block, reachable)
    loops = list(loops_by_header.values())
    # Establish nesting: a loop's parent is the smallest strictly
    # containing loop.
    for loop in loops:
        best = None
        for other in loops:
            if other is loop:
                continue
            if loop.header in other.blocks and loop.blocks <= other.blocks:
                if best is None or len(other.blocks) < len(best.blocks):
                    best = other
        loop.parent = best
    loops.sort(key=lambda l: -l.depth)
    return loops


def _collect_loop_body(loop, backedge_pred, reachable):
    """Blocks that reach the backedge without passing the header."""
    work = [backedge_pred]
    while work:
        block = work.pop()
        if block in loop.blocks or block not in reachable:
            continue
        loop.blocks.add(block)
        work.extend(block.preds)
