"""The tiered execution engine.

One :class:`Engine` is one "VM instance" in the paper's measurement
protocol: fresh statics, empty profiles, empty code cache. Methods
start in the profiling interpreter; when their hotness crosses the
threshold, a compilation request is served (synchronously — our stand-in
for the compile queue) and subsequent calls run compiled code.

Cycle accounting:

- interpreted bytecodes × ``INTERPRETED_OP``,
- compiled-block cycles accumulated by the machine executor,
- instruction-cache entry penalties,
- compilation cycles, charged to the iteration that compiled
  (modelling the compiler stealing cycles from the application as a
  single-threaded JIT does; this is what the warmup figure shows).

Observability: pass ``obs=Observability()`` to record tier
transitions, compile triggers/failures and per-iteration breakdowns
into the shared metrics registry and event stream (see
:mod:`repro.obs`). The default is the inert :data:`~repro.obs.NULL_OBS`
and leaves the cycle model bit-identical to an un-instrumented run.

Background compilation: with ``JitConfig(compile_mode="async")`` (or
``REPRO_COMPILE=async``) compile requests are enqueued on a
:class:`~repro.serve.scheduler.BackgroundCompiler` — either an
externally attached one (``compile_service=``, shared across tenants by
:class:`~repro.serve.service.VMService`) or an engine-private pipeline
created lazily — and interpretation continues until the code installs.
Observable semantics (values, trap kinds, printed output) are
bit-identical to sync mode; only cycle *attribution* changes:
background compile cycles accumulate in ``background_compile_cycles``
instead of being charged to the running iteration (the compiler no
longer steals application cycles — the point of the paper's online
setting). ``REPRO_COMPILE=sync`` is a hard pin back to the classic
synchronous engine.
"""

import threading
import time

from repro.backend.machine import MachineExecutor
from repro.deopt import DeoptSignal, SpeculationLog, resume_frames
from repro.errors import CompileError, IRError, VMError
from repro.interp.interpreter import Interpreter, OSR_MISS
from repro.interp.profiles import ProfileStore
from repro.jit.codecache import CodeCache
from repro.jit.config import JitConfig
from repro.obs import NULL_OBS
from repro.runtime.vmstate import VMState


class IterationResult:
    """Cycle breakdown for one benchmark iteration.

    All cycle fields and ``compilations`` are per-iteration deltas.
    ``installed_size`` is the exception: it is the *absolute* code-cache
    size after the iteration (the quantity Figure 10 / Table I report);
    ``installed_size_delta`` is its per-iteration growth, for warmup
    plots that chart code-cache growth alongside the cycle curve.
    """

    __slots__ = (
        "value",
        "total_cycles",
        "interpreted_cycles",
        "compiled_cycles",
        "compile_cycles",
        "icache_cycles",
        "compilations",
        "installed_size",
        "installed_size_delta",
    )

    def __init__(self, **kw):
        for name in self.__slots__:
            setattr(self, name, kw.get(name, 0))

    def as_dict(self):
        """The breakdown as a plain dict (metrics/JSON export)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (
            "<Iteration total=%d interp=%d compiled=%d jit=%d icache=%d "
            "compilations=%d installed=%d>"
            % (
                self.total_cycles,
                self.interpreted_cycles,
                self.compiled_cycles,
                self.compile_cycles,
                self.icache_cycles,
                self.compilations,
                self.installed_size,
            )
        )


class Engine:
    """A tiered VM instance."""

    def __init__(self, program, config=None, inliner=None, seed=0x5EED,
                 obs=None, code_cache=None, profiles=None,
                 compile_service=None):
        self.program = program
        self.config = config or JitConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.vm = VMState(program, seed=seed)
        self.profiles = (
            profiles
            if profiles is not None
            else ProfileStore(
                context_sensitive=self.config.context_sensitive_profiles,
                obs=self.obs,
            )
        )
        self.interpreter = Interpreter(
            self.vm, profiles=self.profiles, dispatch=self._dispatch,
            obs=self.obs, predecode=self.config.interp_predecode,
        )
        #: Installed-code bookkeeping. Per-engine by default; a
        #: multi-tenant service passes a per-tenant *view* of a shared
        #: sharded cache instead (same surface, global accounting).
        self.code_cache = (
            code_cache if code_cache is not None else CodeCache(obs=self.obs)
        )
        self.speculation_log = SpeculationLog()
        from repro.jit.compiler import JitCompiler

        self.compiler = JitCompiler(
            program, self.profiles, self.config, inliner, obs=self.obs,
            speculation_log=self.speculation_log,
        )
        self.executor = MachineExecutor(self.vm, self._dispatch, self)
        #: Which tier runs compiled roots: ``"machine"`` (the cycle
        #: model, the differential oracle) or ``"py"`` (generated
        #: Python closures, :mod:`repro.backend.pycodegen`). Resolved
        #: once at construction — mirrors ``compile_mode`` below.
        self.backend = self.config.backend_resolved()
        self._py = self.backend == "py"
        #: Bound Python-tier entries, keyed by code-object identity.
        #: The factory closes over the generated module; binding it to
        #: this engine's VM state/dispatch/cycle sink happens once per
        #: installed code object, on first execution.
        self._py_entries = {}
        #: Executions served by the Python tier (plain attribute so
        #: un-instrumented differential tests can assert the py tier
        #: actually ran).
        self.py_exec_count = 0
        self.compiled_cycles = 0
        self.compile_cycles = 0
        self.icache_cycles = 0
        self.compilation_count = 0
        self.deopt_count = 0
        self.invalidation_count = 0
        #: Frames transferred into compiled code mid-method and OSR
        #: continuations compiled (the ``osr.entries`` /
        #: ``osr.compilations`` counters, kept as plain attributes so
        #: un-instrumented tests can assert on them).
        self.osr_entry_count = 0
        self.osr_compilation_count = 0
        self._deopt_counts = {}  # method -> deopts taken in its code
        self._compile_failed = set()
        self._osr_failed = set()  # (method, bci) pairs
        self._dispatch_depth = 0
        # Background compilation (the online setting): resolved once at
        # construction so the dispatch fast path pays a single bool.
        self.compile_mode = self.config.compile_mode_resolved()
        self._async = self.compile_mode == "async"
        self.compile_service = compile_service
        self._owns_service = False
        #: Background-pipeline cycle/charge accounting, kept separate
        #: from ``compile_cycles`` — async compilation no longer steals
        #: application cycles, so iterations never see these.
        self.background_compile_cycles = 0
        self.async_installs = 0
        self.async_cancelled = 0
        self._pending = {}  # request key -> CompileRequest
        self._pending_lock = threading.Lock()
        self._compile_lock = threading.RLock()
        self._cache_lock = threading.RLock()
        # On-stack replacement: install the transfer hook on the
        # interpreter only when enabled, so the disabled configuration
        # pays exactly one None check per recorded backedge.
        if self.config.osr_enabled():
            self.interpreter.osr_hook = self._osr_enter
            self.interpreter.osr_threshold = max(
                1, int(self.config.osr_threshold)
            )
        # Flight recorder: bounded provenance ring (inert on NULL_OBS).
        self._flight = self.obs.flight
        self._flight_dump_path = self.config.flight_dump_path()
        # Pre-bound instrument for the hot dispatch path; None when
        # observability is off so the fast path pays one None check.
        self._icache_counter = (
            self.obs.metrics.counter("icache.penalty")
            if self.obs.enabled
            else None
        )

    # ------------------------------------------------------------------
    # Cycle sink interface (used by the machine executor)
    # ------------------------------------------------------------------

    def add_compiled_cycles(self, cycles):
        self.compiled_cycles += cycles

    def _execute(self, code, args):
        """Run installed *code* on the selected backend.

        The ``py`` tier runs the generated closure riding on the code
        object when present (bound to this engine's VM state, dispatch
        and cycle sink once, then cached per engine — code objects are
        shared across tenants, bindings are not); roots whose generator
        bailed out fall back to the machine executor, so a mixed cache
        is fine. Both tiers raise the same traps and
        :class:`~repro.deopt.DeoptSignal`; callers don't care which ran.
        """
        if self._py and code.py_factory is not None:
            entry = self._py_entries.get(code)
            if entry is None:
                entry = code.py_factory(
                    self.vm, self._dispatch, self.add_compiled_cycles
                )
                self._py_entries[code] = entry
            self.py_exec_count += 1
            return entry(args)
        return self.executor.execute(code, args)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, method, args):
        code = self.code_cache.get(method)
        if code is None and self._should_compile(method):
            if self._async:
                # Online mode: enqueue and keep interpreting this call;
                # a later dispatch picks up the installed code.
                self._request_compile(method)
            else:
                code = self._compile(method)
        if code is not None:
            penalty = self.config.icache.entry_penalty(self.code_cache.total_size)
            if penalty:
                self.icache_cycles += penalty
                if self._icache_counter is not None:
                    self._icache_counter.inc(penalty)
            try:
                return self._execute(code, args)
            except DeoptSignal as signal:
                # Caught at the deopting method's *own* dispatch
                # boundary, so compiled callers further up the stack
                # see an ordinary return value.
                return self._handle_deopt(method, signal)
        return self.interpreter.execute(method, args)

    def _handle_deopt(self, method, signal, osr_key=None):
        """A speculation guard failed inside *method*'s compiled code.

        Record the refuted speculation, invalidate the code (the next
        hot dispatch recompiles without it), and resume execution in
        the profiling interpreter from the materialized frame state.
        With *osr_key* set, the failing code is the OSR continuation
        entered at that backedge bci and only that cache entry is
        invalidated; the fallback resume path is identical.
        """
        self.deopt_count += 1
        count = self._deopt_counts.get(method, 0) + 1
        self._deopt_counts[method] = count
        self.speculation_log.record(signal.site, signal.reason)
        if self._flight.enabled:
            # Timeline entry linking back to the guard that fired: the
            # ``site`` key matches the compile-time ``inline.speculation``
            # record for the refuted guess.
            self._flight.record(
                "deopt",
                method=method.qualified_name,
                reason=signal.reason,
                site="%s@%d" % signal.site,
                count=count,
                frames=len(signal.frames),
            )
        if count >= self.config.speculation_deopt_limit:
            # Too much deopt/recompile churn in this root: stop
            # speculating in it entirely.
            self.speculation_log.disable(method.qualified_name)
        if self._async:
            # A queued compilation of this method speculated on the
            # site this deopt just refuted: keep it out of the cache.
            self._cancel_pending(method)
        with self._cache_lock:
            if osr_key is not None:
                stale = (
                    self.code_cache.get_osr(method, osr_key)
                    if self._py
                    else None
                )
                invalidated = self.code_cache.evict_osr(method, osr_key)
            else:
                stale = self.code_cache.get(method) if self._py else None
                invalidated = self.code_cache.evict(method)
        if stale is not None:
            # Drop the bound closure with the code: a recompile installs
            # a fresh code object, and the refuted binding must not pin
            # the old one in memory.
            self._py_entries.pop(stale, None)
        if invalidated:
            self.invalidation_count += 1
            if self._flight.enabled:
                self._flight.record(
                    "jit.invalidate",
                    method=method.qualified_name,
                    reason=signal.reason,
                )
        obs = self.obs
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("deopt.taken").inc()
            metrics.counter("deopt.reasons.%s" % signal.reason).inc()
            if invalidated:
                metrics.counter("jit.invalidations").inc()
            obs.events.emit(
                "deopt",
                method=method.qualified_name,
                reason=signal.reason,
                site="%s@%d" % signal.site,
            )
            if invalidated:
                obs.events.emit(
                    "jit.invalidate",
                    method=method.qualified_name,
                    reason=signal.reason,
                )
        # Evicted *before* resuming: nested dispatches during the
        # interpreted continuation must not re-enter the refuted code.
        return resume_frames(self.interpreter, signal.frames)

    def _should_compile(self, method):
        config = self.config
        if not config.compile_enabled:
            return False
        if method.is_native or method.is_abstract:
            return False
        if method in self._compile_failed:
            return False
        if len(self.code_cache) >= config.max_compiled_methods:
            return False
        return self.profiles.hotness(method) >= config.hot_threshold

    def _compile(self, method):
        obs = self.obs
        if obs.enabled:
            obs.events.emit(
                "jit.trigger",
                method=method.qualified_name,
                hotness=self.profiles.hotness(method),
            )
        # Flight recording is gated independently of the event log —
        # a ring-only configuration must still see trigger records,
        # matching the ``jit.compile_failed`` path below.
        if self._flight.enabled:
            self._flight.record(
                "jit.trigger",
                method=method.qualified_name,
                hotness=self.profiles.hotness(method),
            )
        try:
            record = self.compiler.compile(method)
        except CompileError as error:
            self._compile_failed.add(method)
            if obs.enabled:
                obs.metrics.counter("jit.compile.failures").inc()
                obs.events.emit(
                    "jit.compile_failed", method=method.qualified_name
                )
            if self._flight.enabled:
                self._flight.record(
                    "jit.compile_failed",
                    method=method.qualified_name,
                    error=repr(error),
                )
                self._dump_flight_on_crash("compile-error")
            return None
        if self._install_code(method, record.code) is False:
            return None
        self.compile_cycles += record.compile_cycles
        self.compilation_count += 1
        if self._flight.enabled:
            self._flight.record(
                "jit.install",
                method=method.qualified_name,
                code_size=record.code.size,
                total_size=self.code_cache.total_size,
                compile_cycles=record.compile_cycles,
                nodes=record.graph_nodes,
            )
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("jit.compile.count").inc()
            metrics.counter("jit.compile.cycles").inc(record.compile_cycles)
            metrics.histogram("jit.compile.nodes").record(record.graph_nodes)
            metrics.histogram("jit.compile.code_size").record(record.code.size)
            obs.events.emit(
                "jit.install",
                method=method.qualified_name,
                code_size=record.code.size,
                total_size=self.code_cache.total_size,
                compile_cycles=record.compile_cycles,
            )
        return record.code

    def _install_code(self, method, code, osr_bci=None):
        """Install compiled code, tolerating shared-cache rejection.

        A per-tenant quota can reject an entry outright (the code alone
        exceeds the quota); the method is then marked failed so hot
        dispatches stop re-requesting it. Returns False on rejection.
        """
        with self._cache_lock:
            if osr_bci is not None:
                accepted = self.code_cache.install_osr(method, osr_bci, code)
            else:
                accepted = self.code_cache.install(method, code)
        if accepted is False:
            if osr_bci is not None:
                self._osr_failed.add((method, osr_bci))
            else:
                self._compile_failed.add(method)
            if self.obs.enabled:
                self.obs.metrics.counter("codecache.quota_rejections").inc()
                self.obs.events.emit(
                    "jit.install_rejected",
                    method=method.qualified_name,
                    code_size=code.size,
                )
            if self._flight.enabled:
                self._flight.record(
                    "jit.install_rejected",
                    method=method.qualified_name,
                    code_size=code.size,
                )
            return False
        return True

    # ------------------------------------------------------------------
    # Background compilation (the online setting)
    # ------------------------------------------------------------------

    def _service(self):
        """The attached compile service, creating a private pipeline
        (one worker, bounded queue) on first use when none was given."""
        service = self.compile_service
        if service is None:
            from repro.serve.scheduler import BackgroundCompiler

            service = BackgroundCompiler(
                workers=self.config.compile_workers,
                queue_capacity=self.config.compile_queue_capacity,
                obs=self.obs,
            )
            self.compile_service = service
            self._owns_service = True
        return service

    def _request_compile(self, method, osr=None):
        """Enqueue a background compilation (dedup'd per cache key).

        *osr* is ``None`` for whole-method requests or an
        ``(backedge bci, target bci, stack depth)`` triple. The profile
        snapshot is taken here, on the submitting thread, so the worker
        never reads live profile dicts.
        """
        from repro.serve.queue import CompileRequest

        key = method if osr is None else (method, osr[0])
        with self._pending_lock:
            if key in self._pending:
                return
            if osr is None:
                request = CompileRequest(
                    self, method, profiles=self.profiles.snapshot()
                )
            else:
                bci, target, stack_depth = osr
                request = CompileRequest(
                    self, method, kind="osr", bci=bci, target=target,
                    stack_depth=stack_depth,
                    profiles=self.profiles.snapshot(),
                )
            self._pending[key] = request
        obs = self.obs
        if obs.enabled:
            obs.events.emit(
                "jit.trigger",
                method=method.qualified_name,
                hotness=self.profiles.hotness(method),
                mode="async",
            )
        if self._flight.enabled:
            self._flight.record(
                "compile.enqueue",
                method=request.describe(),
                hotness=self.profiles.hotness(method),
            )
        if not self._service().submit(request):
            # Backpressure: drop the marker so a later hot dispatch
            # retries once the queue has drained.
            with self._pending_lock:
                self._pending.pop(key, None)

    def background_compile_lock(self):
        """Serializes background compilations for this engine (the
        inliner and pipeline carry per-compilation state)."""
        return self._compile_lock

    def execute_compile_request(self, request):
        """Worker-thread entry: run one compilation against the
        request's profile snapshot. Caller holds the compile lock."""
        compiler = self.compiler
        saved = compiler.profiles
        compiler.profiles = request.profiles
        compiler.context.profiles = request.profiles
        try:
            if request.kind == "osr":
                return compiler.compile_osr(
                    request.method, request.bci, request.target,
                    request.stack_depth,
                )
            return compiler.compile(request.method)
        finally:
            compiler.profiles = saved
            compiler.context.profiles = saved

    def finish_background_compile(self, request, record, error):
        """Terminal step of a background request; returns its outcome.

        Runs on the worker thread (or on whichever thread cancels a
        never-run request). Cancellation is re-checked *here*, after
        the compilation and before the install, so a tenant eviction or
        a speculation refutation that raced the compile still keeps the
        code out of the cache.
        """
        method = request.method
        name = method.qualified_name
        with self._pending_lock:
            self._pending.pop(request.key, None)
        if request.cancelled or (record is None and error is None):
            self.async_cancelled += 1
            if self._flight.enabled:
                self._flight.record(
                    "compile.cancelled", method=request.describe()
                )
            if self.obs.enabled:
                self.obs.events.emit(
                    "compile.cancelled", method=request.describe()
                )
            return "cancelled"
        if error is not None:
            if not isinstance(error, (CompileError, IRError)):
                # A compiler bug must degrade the method to
                # interpretation, never kill the worker.
                error = CompileError(
                    "background compilation crashed: %r" % (error,)
                )
            if request.kind == "osr":
                self._osr_failed.add((method, request.bci))
            else:
                self._compile_failed.add(method)
            if self.obs.enabled:
                self.obs.metrics.counter("jit.compile.failures").inc()
                self.obs.events.emit(
                    "jit.compile_failed", method=name, mode="async"
                )
            if self._flight.enabled:
                self._flight.record(
                    "jit.compile_failed",
                    method=request.describe(),
                    error=repr(error),
                )
                self._dump_flight_on_crash("compile-error")
            return "failed"
        if self._install_code(
            method, record.code,
            osr_bci=request.bci if request.kind == "osr" else None,
        ) is False:
            return "failed"
        self.background_compile_cycles += record.compile_cycles
        self.compilation_count += 1
        self.async_installs += 1
        if request.kind == "osr":
            self.osr_compilation_count += 1
        obs = self.obs
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("jit.compile.count").inc()
            metrics.counter("jit.compile.cycles.background").inc(
                record.compile_cycles
            )
            metrics.histogram("jit.compile.nodes").record(record.graph_nodes)
            metrics.histogram("jit.compile.code_size").record(
                record.code.size
            )
            if request.kind == "osr":
                metrics.counter("osr.compilations").inc()
            obs.events.emit(
                "jit.install",
                method=request.describe(),
                code_size=record.code.size,
                total_size=self.code_cache.total_size,
                compile_cycles=record.compile_cycles,
                mode="async",
            )
        if self._flight.enabled:
            self._flight.record(
                "jit.install",
                method=request.describe(),
                code_size=record.code.size,
                total_size=self.code_cache.total_size,
                compile_cycles=record.compile_cycles,
                nodes=record.graph_nodes,
                mode="async",
            )
        return "installed"

    def _cancel_pending(self, method):
        """Cancel pending requests touching *method* (refuted before
        install) — whole-method and every OSR continuation."""
        with self._pending_lock:
            requests = [
                request
                for key, request in self._pending.items()
                if request.method is method
            ]
        for request in requests:
            request.cancel()

    def pending_compiles(self):
        """Snapshot of in-flight background requests (for tests/tools)."""
        with self._pending_lock:
            return list(self._pending.values())

    def drain_compiles(self, timeout=30.0):
        """Block until every pending background request reaches a
        terminal outcome; returns False on timeout. No-op in sync mode.

        With a worker-less pipeline attached (the deterministic test
        mode) the queue is drained on the calling thread instead.
        """
        if not self._async:
            return True
        service = self.compile_service
        deadline = time.monotonic() + timeout
        while True:
            pending = self.pending_compiles()
            if not pending:
                return True
            if service is not None and not service.has_workers:
                service.run_queued()
                continue
            for request in pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                request.done.wait(remaining)

    def shutdown(self, drain=False):
        """Tear down background compilation.

        Cancels pending requests (optionally draining them first) and
        closes the engine-private pipeline if this engine created one.
        Externally attached services are left running — the
        multi-tenant service owns those. Safe no-op in sync mode.
        """
        if drain:
            self.drain_compiles()
        for request in self.pending_compiles():
            request.cancel()
        if self._owns_service and self.compile_service is not None:
            self.compile_service.close()
            self.compile_service = None
            self._owns_service = False

    # ------------------------------------------------------------------
    # On-stack replacement
    # ------------------------------------------------------------------

    def _osr_enter(self, method, bci, target, locals_, stack):
        """Interpreter hook: transfer a live frame into compiled code.

        Called right after the interpreter recorded a backedge at *bci*
        (branching to the loop header *target*) whose counter reached
        the OSR threshold. Looks up or compiles the OSR continuation
        keyed ``(method, bci)`` and runs it with the interpreter frame
        — all local slots, then the live operand stack — as arguments;
        the return value finishes the interpreted frame. Returns
        :data:`~repro.interp.interpreter.OSR_MISS` to decline (failed
        or capped compilation), in which case the interpreter simply
        continues the loop.
        """
        if (method, bci) in self._osr_failed:
            return OSR_MISS
        code = self.code_cache.get_osr(method, bci)
        if code is None:
            if self._async:
                # Decline this transfer but queue the continuation; the
                # loop keeps interpreting and a later backedge (the
                # counter stays past the threshold) enters the
                # installed code.
                if (
                    len(self.code_cache) + self.code_cache.osr_count()
                    < self.config.max_compiled_methods
                ):
                    self._request_compile(
                        method, osr=(bci, target, len(stack))
                    )
                return OSR_MISS
            code = self._compile_osr(method, bci, target, len(stack))
            if code is None:
                return OSR_MISS
        self.osr_entry_count += 1
        penalty = self.config.icache.entry_penalty(
            self.code_cache.total_size
        )
        if penalty:
            self.icache_cycles += penalty
            if self._icache_counter is not None:
                self._icache_counter.inc(penalty)
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("osr.entries").inc()
            obs.events.emit(
                "osr.enter",
                method=method.qualified_name,
                bci=bci,
                stack_depth=len(stack),
            )
        if self._flight.enabled:
            self._flight.record(
                "osr.enter",
                method=method.qualified_name,
                bci=bci,
                stack_depth=len(stack),
            )
        args = list(locals_) + list(stack)
        try:
            return self._execute(code, args)
        except DeoptSignal as signal:
            # Same safety net as whole-method code: invalidate (just
            # the OSR continuation) and fall back through the
            # materialized frames into the profiling interpreter.
            return self._handle_deopt(method, signal, osr_key=bci)

    def _compile_osr(self, method, bci, target, stack_depth):
        obs = self.obs
        name = method.qualified_name
        if (
            len(self.code_cache) + self.code_cache.osr_count()
            >= self.config.max_compiled_methods
        ):
            self._osr_failed.add((method, bci))
            return None
        if obs.enabled:
            obs.events.emit(
                "osr.trigger",
                method=name,
                bci=bci,
                hotness=self.profiles.hotness(method),
            )
        if self._flight.enabled:
            self._flight.record(
                "osr.trigger",
                method=name,
                bci=bci,
                hotness=self.profiles.hotness(method),
            )
        try:
            record = self.compiler.compile_osr(method, bci, target, stack_depth)
        except (CompileError, IRError) as error:
            # IRError included: OSR graphs are built from mid-method
            # entry states the whole-method front end never sees, and a
            # builder failure must degrade to interpretation, not crash.
            self._osr_failed.add((method, bci))
            if obs.enabled:
                obs.metrics.counter("jit.compile.failures").inc()
                obs.events.emit("osr.compile_failed", method=name, bci=bci)
            if self._flight.enabled:
                self._flight.record(
                    "osr.compile_failed",
                    method=name,
                    bci=bci,
                    error=repr(error),
                )
                self._dump_flight_on_crash("compile-error")
            return None
        if self._install_code(method, record.code, osr_bci=bci) is False:
            return None
        self.compile_cycles += record.compile_cycles
        self.compilation_count += 1
        self.osr_compilation_count += 1
        if self._flight.enabled:
            self._flight.record(
                "osr.install",
                method=name,
                bci=bci,
                code_size=record.code.size,
                total_size=self.code_cache.total_size,
                compile_cycles=record.compile_cycles,
                nodes=record.graph_nodes,
            )
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("osr.compilations").inc()
            metrics.counter("jit.compile.count").inc()
            metrics.counter("jit.compile.cycles").inc(record.compile_cycles)
            metrics.histogram("jit.compile.nodes").record(record.graph_nodes)
            metrics.histogram("jit.compile.code_size").record(
                record.code.size
            )
            obs.events.emit(
                "osr.install",
                method=name,
                bci=bci,
                code_size=record.code.size,
                total_size=self.code_cache.total_size,
                compile_cycles=record.compile_cycles,
            )
        return record.code

    # ------------------------------------------------------------------
    # Flight recorder
    # ------------------------------------------------------------------

    def dump_flight(self, path):
        """Dump the flight-recorder ring to *path* as JSONL, on demand.

        Raises :class:`ValueError` when the engine runs without a live
        flight recorder (the ``NULL_OBS`` default).
        """
        self._flight.save(path)

    def _dump_flight_on_crash(self, trigger):
        """Dump the ring to the configured crash path, if any.

        Best-effort: a failing dump never masks the original error.
        """
        path = self._flight_dump_path
        if path is None or not self._flight.enabled:
            return
        self._flight.record("flight.dump", trigger=trigger, path=path)
        try:
            self._flight.save(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def call(self, class_name, method_name, args=()):
        method = self.program.lookup_method(class_name, method_name)
        if self._flight.enabled:
            try:
                return self._dispatch(method, list(args))
            except VMError as error:
                # Dump-on-crash: a trap escaping the dispatch is the
                # moment the recent compilation history matters most.
                self._flight.record(
                    "trap",
                    method=method.qualified_name,
                    error=type(error).__name__,
                    detail=str(error),
                )
                self._dump_flight_on_crash("trap")
                raise
        return self._dispatch(method, list(args))

    def run_iteration(self, class_name, method_name="run", args=()):
        """Run one benchmark iteration and return its cycle breakdown.

        Every cycle field of the result is a per-iteration delta;
        ``installed_size`` alone is the absolute code-cache size after
        the iteration (use ``installed_size_delta`` for per-iteration
        code-cache growth) — see :class:`IterationResult`.
        """
        interp_before = self.interpreter.ops_executed
        compiled_before = self.compiled_cycles
        compile_before = self.compile_cycles
        icache_before = self.icache_cycles
        compilations_before = self.compilation_count
        installed_before = self.code_cache.total_size

        with self.obs.timers.span("engine.iteration"):
            value = self.call(class_name, method_name, args)

        interp_ops = self.interpreter.ops_executed - interp_before
        interpreted = interp_ops * self.config.cost_model.INTERPRETED_OP
        compiled = self.compiled_cycles - compiled_before
        compile_time = self.compile_cycles - compile_before
        icache = self.icache_cycles - icache_before
        result = IterationResult(
            value=value,
            interpreted_cycles=interpreted,
            compiled_cycles=compiled,
            compile_cycles=compile_time,
            icache_cycles=icache,
            total_cycles=interpreted + compiled + compile_time + icache,
            compilations=self.compilation_count - compilations_before,
            installed_size=self.code_cache.total_size,
            installed_size_delta=self.code_cache.total_size - installed_before,
        )
        obs = self.obs
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("engine.iterations").inc()
            metrics.gauge("interp.ops").set(self.interpreter.ops_executed)
            metrics.counter("engine.cycles").inc(result.total_cycles)
            metrics.histogram("engine.iteration.cycles").record(
                result.total_cycles
            )
            obs.events.emit("iteration", **result.as_dict())
        return result
